"""Tree-network substrate.

The paper's network model: *"a finite set of nodes (i.e., machines) arranged
in a tree network T with reliable FIFO communication channels between
neighboring nodes"* (Section 2).  :class:`~repro.tree.topology.Tree` provides
the structural queries the mechanism and the analysis need — neighbor sets,
``subtree(u, v)`` (the component containing ``u`` after removing edge
``(u, v)``), the *u-parent* relation, and directed-edge enumeration — and
:mod:`repro.tree.generators` provides the topology families used across the
benchmarks (paths, stars, balanced k-ary trees, caterpillars, random trees).
"""

from repro.tree.topology import Tree
from repro.tree.generators import (
    balanced_kary_tree,
    binary_tree,
    caterpillar_tree,
    from_networkx,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
    two_node_tree,
)

__all__ = [
    "Tree",
    "path_tree",
    "star_tree",
    "binary_tree",
    "balanced_kary_tree",
    "caterpillar_tree",
    "spider_tree",
    "random_tree",
    "two_node_tree",
    "from_networkx",
]
