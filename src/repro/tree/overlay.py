"""DHT-derived aggregation trees (SDIMS/Plaxton-style overlay substrate).

The paper assumes the tree is given; in SDIMS — the system this paper
generalizes — each attribute key gets its own aggregation tree embedded in
a Plaxton-mesh DHT: every node routes toward the key by fixing one more
leading bit of its identifier per hop, and the union of those routes is a
tree rooted at the node whose id best matches the key.

:func:`plaxton_tree` reproduces that construction: given the member ids
and a key, each node's parent is the member that (1) matches the key in
strictly more leading bits and (2) among those, shares the longest prefix
with the node itself (PRR-style locality; ties broken by xor distance).
Different keys therefore yield different trees over the same membership —
exactly how SDIMS spreads aggregation load — which
:func:`key_tree_family` exposes directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.tree.topology import Tree


def common_prefix_length(a: int, b: int, bits: int) -> int:
    """Number of equal leading bits of two ``bits``-wide identifiers."""
    if not (0 <= a < (1 << bits) and 0 <= b < (1 << bits)):
        raise ValueError(f"ids must fit in {bits} bits")
    diff = a ^ b
    if diff == 0:
        return bits
    return bits - diff.bit_length()


@dataclass(frozen=True)
class OverlayTree:
    """A key's aggregation tree over a DHT membership.

    Attributes
    ----------
    tree:
        The topology, over dense indices ``0..n-1``.
    ids:
        ``ids[i]`` is the DHT identifier of tree node ``i``.
    key:
        The key this tree aggregates.
    root:
        Tree index of the root (the best-matching member).
    """

    tree: Tree
    ids: Tuple[int, ...]
    key: int
    root: int

    def node_of(self, dht_id: int) -> int:
        """Tree index of a member, by DHT id."""
        try:
            return self.ids.index(dht_id)
        except ValueError:
            raise KeyError(f"id {dht_id:#x} is not a member") from None


def plaxton_tree(ids: Sequence[int], key: int, bits: int = 32) -> OverlayTree:
    """Build the aggregation tree for ``key`` over the given member ids.

    Every member's parent is the member matching ``key`` in strictly more
    leading bits, chosen to share the longest prefix with the member
    itself (ties by xor distance, then id).  The member with the maximal
    key match is the root.  The result is always a tree: parents strictly
    increase key-match length, so the parent relation is acyclic and every
    chain ends at the root.
    """
    members = list(ids)
    if not members:
        raise ValueError("need at least one member id")
    if len(set(members)) != len(members):
        raise ValueError("member ids must be distinct")
    for x in members:
        if not (0 <= x < (1 << bits)):
            raise ValueError(f"id {x} does not fit in {bits} bits")
    if not (0 <= key < (1 << bits)):
        raise ValueError(f"key {key} does not fit in {bits} bits")

    n = len(members)
    cpl_key = {x: common_prefix_length(x, key, bits) for x in members}
    # Root: best key match; ties by xor distance to the key, then id.
    root_id = min(members, key=lambda x: (-cpl_key[x], x ^ key, x))
    index = {x: i for i, x in enumerate(members)}
    edges: List[Tuple[int, int]] = []
    for x in members:
        if x == root_id:
            continue
        candidates = [y for y in members if cpl_key[y] > cpl_key[x]]
        if not candidates:
            # x ties the root's match length but lost the tie-break; attach
            # to the root directly (the "surrogate routing" case).
            parent = root_id
        else:
            parent = min(
                candidates,
                key=lambda y: (-common_prefix_length(x, y, bits), x ^ y, y),
            )
        edges.append((index[x], index[parent]))
    tree = Tree(n, edges)
    return OverlayTree(tree=tree, ids=tuple(members), key=key, root=index[root_id])


def random_membership(n: int, bits: int = 32, seed: int = 0) -> List[int]:
    """``n`` distinct uniform ``bits``-wide identifiers."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if n > (1 << bits):
        raise ValueError(f"cannot draw {n} distinct {bits}-bit ids")
    rng = random.Random(seed)
    out: set = set()
    while len(out) < n:
        out.add(rng.getrandbits(bits))
    return sorted(out)


def key_tree_family(
    ids: Sequence[int], keys: Sequence[int], bits: int = 32
) -> Dict[int, OverlayTree]:
    """One aggregation tree per key over a fixed membership — SDIMS's
    load-spreading property: different attributes aggregate along
    different trees, rooted at different members."""
    return {key: plaxton_tree(ids, key, bits) for key in keys}
