"""The :class:`Tree` topology object.

A :class:`Tree` is an immutable undirected tree over integer node ids
``0..n-1``.  It validates treeness at construction (connected, acyclic,
``n - 1`` edges) and precomputes the adjacency structure.  The queries used
throughout the paper's analysis are provided directly:

* ``subtree(u, v)`` — Section 2: *"removal of (u, v) yields two trees;
  subtree(u, v) is defined to be one of the trees that contains u."*
* ``parent_towards(root, v)`` — the *root-parent* of ``v`` (Section 3.2:
  "for any two distinct nodes u and v, we define the u-parent of v as the
  parent of v in tree T rooted at u").
* ``directed_edges()`` — ordered neighbor pairs, the index set of the
  per-edge cost decomposition (Lemma 3.9).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

Edge = Tuple[int, int]


class Tree:
    """An immutable undirected tree over nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes (``n >= 1``).
    edges:
        Exactly ``n - 1`` undirected edges ``(a, b)`` forming a tree.

    Raises
    ------
    ValueError
        If the edge set is not a tree on ``0..n-1`` (wrong edge count,
        out-of-range endpoints, self-loops, duplicates, or disconnected).
    """

    __slots__ = ("_n", "_edges", "_adj", "_subtree_cache", "_edge_index")

    def __init__(self, n: int, edges: Iterable[Edge]) -> None:
        if n < 1:
            raise ValueError(f"a tree needs at least one node, got n={n}")
        edge_list: List[Edge] = []
        seen: set[FrozenSet[int]] = set()
        adj: List[List[int]] = [[] for _ in range(n)]
        for a, b in edges:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a}, {b}) out of range for n={n}")
            if a == b:
                raise ValueError(f"self-loop ({a}, {b}) is not allowed")
            key = frozenset((a, b))
            if key in seen:
                raise ValueError(f"duplicate edge ({a}, {b})")
            seen.add(key)
            edge_list.append((a, b))
            adj[a].append(b)
            adj[b].append(a)
        if len(edge_list) != n - 1:
            raise ValueError(f"a tree on {n} nodes needs {n - 1} edges, got {len(edge_list)}")
        self._n = n
        self._edges: Tuple[Edge, ...] = tuple(edge_list)
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(a)) for a in adj)
        self._assert_connected()
        self._subtree_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._edge_index = {frozenset(e): i for i, e in enumerate(self._edges)}

    # ------------------------------------------------------------------ basic
    def _assert_connected(self) -> None:
        seen = [False] * self._n
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for w in self._adj[u]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        if count != self._n:
            raise ValueError("edge set is disconnected: not a tree")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The undirected edges, in construction order."""
        return self._edges

    def nodes(self) -> range:
        """All node ids, ``0..n-1``."""
        return range(self._n)

    def neighbors(self, u: int) -> Tuple[int, ...]:
        """The sorted neighbor set ``nbrs()`` of ``u``."""
        self._check_node(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        return len(self.neighbors(u))

    def is_leaf(self, u: int) -> bool:
        """True when ``u`` has exactly one neighbor (or the tree is a single node)."""
        return len(self.neighbors(u)) <= 1

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``(u, v)`` is an edge of the tree."""
        self._check_node(u)
        self._check_node(v)
        return frozenset((u, v)) in self._edge_index

    def directed_edges(self) -> Iterator[Edge]:
        """Yield every ordered pair ``(u, v)`` of neighbors — ``2(n-1)`` pairs.

        This is the index set of the cost decomposition of Lemma 3.9: the
        total message count of a lease-based algorithm is the sum over
        ordered pairs of the directional per-edge costs.
        """
        for a, b in self._edges:
            yield (a, b)
            yield (b, a)

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise ValueError(f"node {u} out of range for n={self._n}")

    # ----------------------------------------------------------- tree queries
    def subtree(self, u: int, v: int) -> FrozenSet[int]:
        """Nodes of ``subtree(u, v)``: the component containing ``u`` after
        deleting edge ``(u, v)``.  Requires ``(u, v)`` to be an edge."""
        self._check_node(u)
        self._check_node(v)
        if not self.has_edge(u, v):
            raise ValueError(f"({u}, {v}) is not an edge of the tree")
        key = (u, v)
        cached = self._subtree_cache.get(key)
        if cached is not None:
            return cached
        members = {u}
        stack = [u]
        while stack:
            x = stack.pop()
            for w in self._adj[x]:
                if w == v and x == u:
                    continue
                if w not in members:
                    members.add(w)
                    stack.append(w)
        result = frozenset(members)
        self._subtree_cache[key] = result
        self._subtree_cache[(v, u)] = frozenset(self.nodes()) - result
        return result

    def parent_towards(self, root: int, v: int) -> int:
        """The *root-parent* of ``v``: ``v``'s parent when T is rooted at ``root``.

        Equivalently, the neighbor of ``v`` on the unique ``v -> root`` path.
        Requires ``v != root``.
        """
        self._check_node(root)
        self._check_node(v)
        if v == root:
            raise ValueError("the root has no parent")
        parents = self.bfs_parents(root)
        return parents[v]

    def bfs_parents(self, root: int) -> List[int]:
        """Parent array for T rooted at ``root`` (``parents[root] == root``)."""
        self._check_node(root)
        parents = [-1] * self._n
        parents[root] = root
        dq = deque([root])
        while dq:
            u = dq.popleft()
            for w in self._adj[u]:
                if parents[w] == -1:
                    parents[w] = u
                    dq.append(w)
        return parents

    def bfs_order(self, root: int) -> List[int]:
        """Nodes in BFS order from ``root``."""
        self._check_node(root)
        seen = [False] * self._n
        seen[root] = True
        order = [root]
        dq = deque([root])
        while dq:
            u = dq.popleft()
            for w in self._adj[u]:
                if not seen[w]:
                    seen[w] = True
                    order.append(w)
                    dq.append(w)
        return order

    def path(self, u: int, v: int) -> List[int]:
        """The unique simple path from ``u`` to ``v`` (inclusive)."""
        self._check_node(u)
        self._check_node(v)
        parents = self.bfs_parents(u)
        out = [v]
        while out[-1] != u:
            out.append(parents[out[-1]])
        out.reverse()
        return out

    def distance(self, u: int, v: int) -> int:
        """Hop count between ``u`` and ``v``."""
        return len(self.path(u, v)) - 1

    def depths(self, root: int) -> List[int]:
        """Depth of every node for T rooted at ``root``."""
        parents = self.bfs_parents(root)
        depths = [-1] * self._n
        depths[root] = 0
        for u in self.bfs_order(root):
            if u != root:
                depths[u] = depths[parents[u]] + 1
        return depths

    def diameter(self) -> int:
        """The tree's diameter in hops (0 for a single node)."""
        far = max(self.nodes(), key=lambda v: self.distance(0, v))
        return max(self.distance(far, v) for v in self.nodes())

    def eccentric_leaf_pair(self) -> Tuple[int, int]:
        """A pair of nodes realizing the diameter."""
        a = max(self.nodes(), key=lambda v: self.distance(0, v))
        b = max(self.nodes(), key=lambda v: self.distance(a, v))
        return (a, b)

    def centroid(self) -> int:
        """A centroid: a node minimizing the largest component after removal."""
        best, best_score = 0, self._n + 1
        for u in self.nodes():
            score = max(
                (len(self.subtree(w, u)) for w in self.neighbors(u)),
                default=0,
            )
            if score < best_score:
                best, best_score = u, score
        return best

    # ------------------------------------------------------------- conversion
    def to_networkx(self):
        """Return this tree as a ``networkx.Graph``."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self._edges)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._n == other._n and set(map(frozenset, self._edges)) == set(
            map(frozenset, other._edges)
        )

    def __hash__(self) -> int:
        return hash((self._n, frozenset(map(frozenset, self._edges))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tree(n={self._n}, edges={list(self._edges)!r})"
