"""Tree topology generators.

The benchmark suite sweeps over the classic topology families used by the
aggregation frameworks the paper cites: deep paths (worst-case propagation
distance), stars (single-hub SDIMS-style hierarchies), balanced k-ary trees
(DHT-derived aggregation trees), caterpillars and spiders (skewed mixes), and
seeded uniformly random trees (via Prüfer sequences).  All generators return
:class:`~repro.tree.topology.Tree` objects and are fully deterministic given
their arguments.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.tree.topology import Tree


def two_node_tree() -> Tree:
    """The 2-node tree used by the Theorem 3 adversary: edge ``(0, 1)``."""
    return Tree(2, [(0, 1)])


def path_tree(n: int) -> Tree:
    """A path ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return Tree(n, [(i, i + 1) for i in range(n - 1)])


def star_tree(n: int, center: int = 0) -> Tree:
    """A star with ``center`` adjacent to every other node."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not (0 <= center < n):
        raise ValueError(f"center {center} out of range for n={n}")
    return Tree(n, [(center, i) for i in range(n) if i != center])


def binary_tree(depth: int) -> Tree:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    return balanced_kary_tree(2, depth)


def balanced_kary_tree(k: int, depth: int) -> Tree:
    """A complete k-ary tree: node 0 is the root; node ``i`` has children
    ``k*i + 1 .. k*i + k`` while in range.  ``depth`` levels below the root."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if depth < 0:
        raise ValueError(f"need depth >= 0, got {depth}")
    n = sum(k**d for d in range(depth + 1))
    edges = []
    for i in range(n):
        for c in range(k * i + 1, k * i + k + 1):
            if c < n:
                edges.append((i, c))
    return Tree(n, edges)


def caterpillar_tree(spine: int, legs_per_node: int) -> Tree:
    """A caterpillar: a spine path with ``legs_per_node`` leaves per spine node.

    Spine nodes are ``0..spine-1``; leaves are appended after them.
    """
    if spine < 1:
        raise ValueError(f"need spine >= 1, got {spine}")
    if legs_per_node < 0:
        raise ValueError(f"need legs_per_node >= 0, got {legs_per_node}")
    edges: List[Tuple[int, int]] = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return Tree(nxt, edges)


def spider_tree(legs: int, leg_length: int) -> Tree:
    """A spider: ``legs`` paths of ``leg_length`` nodes joined at hub node 0."""
    if legs < 0:
        raise ValueError(f"need legs >= 0, got {legs}")
    if leg_length < 1 and legs > 0:
        raise ValueError(f"need leg_length >= 1, got {leg_length}")
    edges: List[Tuple[int, int]] = []
    nxt = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, nxt))
            prev = nxt
            nxt += 1
    return Tree(max(nxt, 1), edges)


def random_tree(n: int, seed: int) -> Tree:
    """A uniformly random labeled tree on ``n`` nodes via a Prüfer sequence."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if n == 1:
        return Tree(1, [])
    if n == 2:
        return two_node_tree()
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: Sequence[int]) -> Tree:
    """Decode a Prüfer sequence into the tree it encodes (n = len + 2)."""
    n = len(prufer) + 2
    degree = [1] * n
    for x in prufer:
        if not (0 <= x < n):
            raise ValueError(f"prufer entry {x} out of range for n={n}")
        degree[x] += 1
    edges: List[Tuple[int, int]] = []
    # Standard decode: repeatedly attach the smallest remaining leaf.
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    a = heapq.heappop(leaves)
    b = heapq.heappop(leaves)
    edges.append((a, b))
    return Tree(n, edges)


def from_networkx(graph) -> Tree:
    """Build a :class:`Tree` from a ``networkx`` tree graph.

    Node labels must already be ``0..n-1``; use ``networkx.convert_node_labels_
    to_integers`` first otherwise.
    """
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("graph nodes must be labeled 0..n-1")
    return Tree(n, list(graph.edges()))


#: Named topology families used by benches: name -> builder(n) (approximate n).
def standard_topologies(n: int, seed: int = 0):
    """Return a dict of representative topologies with about ``n`` nodes each.

    Used by the benchmark sweeps so every experiment sees a path, a star, a
    balanced binary tree, a caterpillar, and a random tree of comparable size.
    """
    import math

    depth = max(1, int(math.log2(max(n, 2))) - 1)
    spine = max(1, n // 3)
    return {
        "path": path_tree(n),
        "star": star_tree(n),
        "binary": binary_tree(depth),
        "caterpillar": caterpillar_tree(spine, 2),
        "random": random_tree(n, seed),
    }
