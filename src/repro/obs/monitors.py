"""Live lemma monitors: streaming checkers on the trace event bus.

Where ``tests/test_lemmas.py`` checks the paper's lemmas *post-hoc* on
finished runs, these monitors subscribe to the
:class:`~repro.sim.trace.TraceLog` and assert the same claims **online**,
while the run is still executing — the observability analogue of an
in-production invariant guard.  Each monitor maps to one paper statement:

* :class:`LeaseSymmetryMonitor` — Lemma 3.1: in every quiescent state,
  ``u.taken[v] == v.granted[u]`` on every edge.  The monitor mirrors lease
  state purely from ``lease_*`` events and cross-checks the mirror at each
  ``quiescent`` event, so a mechanism bug that desynchronizes the two ends
  of an edge is caught the moment the system next claims quiescence.
* :class:`ProbeFanoutMonitor` — Lemma 3.3: a combine initiated in a
  quiescent state sends exactly one probe along each edge of its
  **lease-free frontier** (the edges reached from the initiator by paths
  of non-taken leases).  The engine stamps the expected frontier into the
  ``combine_begin`` event; the monitor collects the probes actually sent
  during the span and compares sets at completion.
* :class:`DeliveryContractMonitor` — the reliability layer's
  goodput-equals-fault-free-cost claim: every *logical* message recorded as
  goodput is delivered exactly once, in order, despite channel faults.
  The monitor tallies logical sends against releases to the node automaton
  per directed edge and demands they match at quiescence (and that no
  segment ever exhausts its retry budget).

Violations raise a structured :class:`MonitorViolation` in strict mode
(the default, used by tests and CI) or are collected on
``monitor.violations`` for the CLI to print as warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.obs.export import is_logical_kind
from repro.sim.trace import TraceEvent, TraceLog

Edge = Tuple[int, int]


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach (the payload of MonitorViolation)."""

    monitor: str
    time: float
    message: str
    context: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        ctx = f" {dict(self.context)!r}" if self.context else ""
        return f"[{self.monitor} @ t={self.time}] {self.message}{ctx}"


class MonitorViolation(AssertionError):
    """A live monitor observed a lemma violation.

    Carries the structured :class:`Violation`; subclasses ``AssertionError``
    so existing invariant-checking test patterns catch it uniformly.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Monitor:
    """Base class: a named trace subscriber with strict/collect modes."""

    name = "monitor"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[Violation] = []
        self._trace: Optional[TraceLog] = None

    def attach(self, trace: TraceLog) -> "Monitor":
        """Subscribe to a trace log; returns self for chaining."""
        trace.subscribe(self.on_event)
        self._trace = trace
        return self

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(self.on_event)
            self._trace = None

    def _violate(self, time: float, message: str, **context: Any) -> None:
        v = Violation(monitor=self.name, time=time, message=message, context=context)
        self.violations.append(v)
        if self.strict:
            raise MonitorViolation(v)

    @property
    def ok(self) -> bool:
        return not self.violations

    def on_event(self, ev: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LeaseSymmetryMonitor(Monitor):
    """Lemma 3.1 online: mirrored ``taken``/``granted`` agree at quiescence."""

    name = "lease-symmetry"

    #: taken-side transitions: event kind -> new state of taken[(node, source)]
    _TAKEN = {"lease_acquired": True, "lease_released": False, "lease_voided": False}
    #: granted-side transitions: event kind -> new state of granted[(node, grantee)]
    _GRANTED = {"lease_granted": True, "lease_broken": False, "lease_revoked": False}

    def __init__(self, strict: bool = True) -> None:
        super().__init__(strict)
        self.taken: Dict[Edge, bool] = {}
        self.granted: Dict[Edge, bool] = {}
        #: Nodes currently crashed — their edges are exempt from the check
        #: (Lemma 3.1 is a statement about quiescent states of *live* nodes;
        #: a peer may legitimately expire a down node's lease one-sidedly).
        self.down: Set[int] = set()

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind in self._TAKEN:
            self.taken[(ev.node, ev.detail["source"])] = self._TAKEN[ev.kind]
        elif ev.kind in self._GRANTED:
            self.granted[(ev.node, ev.detail["grantee"])] = self._GRANTED[ev.kind]
        elif ev.kind == "node_crash":
            self.down.add(ev.node)
        elif ev.kind == "node_recover":
            self.down.discard(ev.node)
            # Recovery restores the node from a checkpoint (no lease events
            # are emitted for the rewind) and reconciliation then voids all
            # of its leases — resync the mirror to the post-reconcile
            # reality; re-establishment re-reports fresh leases as events.
            for key in list(self.taken):
                if key[0] == ev.node:
                    self.taken[key] = False
            for key in list(self.granted):
                if key[0] == ev.node:
                    self.granted[key] = False
        elif ev.kind == "quiescent":
            self._check(ev.time)

    def _check(self, time: float) -> None:
        edges: Set[Edge] = set(self.taken)
        edges.update((v, u) for (u, v) in self.granted)
        for u, v in sorted(edges):
            if u in self.down or v in self.down:
                continue
            t = self.taken.get((u, v), False)
            g = self.granted.get((v, u), False)
            if t != g:
                self._violate(
                    time,
                    f"Lemma 3.1: {u}.taken[{v}]={t} but {v}.granted[{u}]={g} at quiescence",
                    edge=[u, v], taken=t, granted=g,
                )


class ProbeFanoutMonitor(Monitor):
    """Lemma 3.3 online: per-combine probes == the lease-free frontier.

    Requires ``combine_begin`` events stamped with the expected frontier
    (the engines do this whenever tracing is enabled).  When combines
    overlap in time, probe attribution is ambiguous and the affected
    combines are skipped (counted in :attr:`skipped`) — the lemma is a
    sequential-execution statement.
    """

    name = "probe-fanout"

    def __init__(self, strict: bool = True) -> None:
        super().__init__(strict)
        self._open: Dict[int, Dict[str, Any]] = {}
        self.checked = 0
        self.skipped = 0

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "combine_begin":
            expected = ev.detail.get("expected_probes")
            entry: Dict[str, Any] = {
                "expected": None if expected is None else {tuple(e) for e in expected},
                "probes": set(),
                "tainted": ev.detail.get("scope") is not None or expected is None,
            }
            if self._open:
                entry["tainted"] = True
                for other in self._open.values():
                    other["tainted"] = True
            self._open[ev.detail["req"]] = entry
        elif ev.kind == "send" and ev.detail.get("msg") == "probe":
            for entry in self._open.values():
                entry["probes"].add((ev.node, ev.detail["dst"]))
        elif ev.kind in ("node_crash", "node_recover", "reprobe", "lease_expired"):
            # Crash: the probe wave (or part of it) died with the node.
            # Recover: the reconciliation round re-probes the whole tree.
            # Reprobe / expiry: the recovery sweep injects probes (and
            # releases that trigger healing re-probes) outside any stamped
            # frontier.  Either way attribution is gone for open combines.
            for entry in self._open.values():
                entry["tainted"] = True
        elif ev.kind == "span" and ev.detail.get("op") == "combine":
            done = self._open.pop(ev.detail["req"], None)
            if done is None:
                return
            if done["tainted"] or ev.detail.get("overlapped"):
                self.skipped += 1
                return
            self.checked += 1
            if done["probes"] != done["expected"]:
                self._violate(
                    ev.time,
                    "Lemma 3.3: combine probe fan-out differs from the "
                    f"lease-free frontier (sent {len(done['probes'])}, "
                    f"frontier {len(done['expected'])})",
                    req=ev.detail["req"],
                    sent=sorted(done["probes"]),
                    expected=sorted(done["expected"]),
                )


class DeliveryContractMonitor(Monitor):
    """Exactly-once, in-order delivery of every logical message.

    Under the reliability layer this is the load-bearing half of the
    goodput-equals-fault-free-cost claim: the goodput ledger records each
    logical message once at send time, so if every logical send is released
    to the automaton exactly once (``deliver`` events; plain networks emit
    ``recv``), the faulty run's goodput matches the fault-free run of the
    same schedule.

    Crash and partition faults black-hole messages *by design*, and every
    such casualty is announced as a ``delivery_failed`` event.  A declared
    loss on an edge that a crash or partition ever touched is accounted,
    not flagged; a ``delivery_failed`` with no crash/partition context is
    the historical immediate violation (the retry budget ran out on a
    merely lossy channel — the contract is permanently broken there).  At
    quiescence every logical send must be either delivered exactly once or
    declared lost: silent losses and duplicates still violate.
    """

    name = "delivery-contract"

    def __init__(self, strict: bool = True) -> None:
        super().__init__(strict)
        self.sent: Dict[Tuple[Edge, str], int] = {}
        self.completed: Dict[Tuple[Edge, str], int] = {}
        self.declared: Dict[Tuple[Edge, str], int] = {}
        self._ever_crashed: Set[int] = set()
        self._ever_cut: Set[Edge] = set()

    def _excused(self, edge: Edge) -> bool:
        u, v = edge
        return (
            u in self._ever_crashed
            or v in self._ever_crashed
            or (u, v) in self._ever_cut
            or (v, u) in self._ever_cut
        )

    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "send":
            msg = str(ev.detail.get("msg", ""))
            if is_logical_kind(msg):
                key = ((ev.node, ev.detail["dst"]), msg)
                self.sent[key] = self.sent.get(key, 0) + 1
        elif kind in ("recv", "deliver"):
            msg = str(ev.detail.get("msg", ""))
            if is_logical_kind(msg):
                key = ((ev.detail["src"], ev.node), msg)
                self.completed[key] = self.completed.get(key, 0) + 1
        elif kind == "node_crash":
            self._ever_crashed.add(ev.node)
        elif kind == "partition":
            for u, v in ev.detail.get("edges", ()):
                self._ever_cut.add((u, v))
        elif kind == "delivery_failed":
            msg = str(ev.detail.get("msg", ""))
            if not is_logical_kind(msg):
                return  # frame-level casualty; retransmission covers it
            edge = (ev.node, ev.detail["dst"])
            if self._excused(edge):
                key = (edge, msg)
                self.declared[key] = self.declared.get(key, 0) + 1
            else:
                self._violate(
                    ev.time,
                    "reliable-delivery retry budget exhausted: logical "
                    "message lost for good",
                    edge=[ev.node, ev.detail["dst"]],
                    msg=ev.detail.get("msg"),
                    attempts=ev.detail.get("attempts"),
                )
        elif kind == "quiescent":
            self._check(ev.time)

    def _check(self, time: float) -> None:
        for key in sorted(set(self.sent) | set(self.completed)):
            s = self.sent.get(key, 0)
            c = self.completed.get(key, 0)
            d = self.declared.get(key, 0)
            # A declaration can race a delivery that already happened (a
            # delivered-but-unACKed segment re-declared at a crash-time
            # reset), so d may over-count; only silent losses (c + d < s)
            # and duplicates (c > s) are violations.
            if c > s or c + d < s:
                (u, v), msg = key
                self._violate(
                    time,
                    f"delivery contract: {s} {msg!r} send(s) on ({u},{v}) "
                    f"but {c} delivered (+{d} declared lost) at quiescence",
                    edge=[u, v], msg=msg, sent=s, delivered=c, declared=d,
                )


def expected_probe_edges(nodes: Mapping[int, Any], origin: int) -> Set[Edge]:
    """The lease-free frontier of a combine at ``origin`` (Lemma 3.3).

    Directed edges a combine initiated at ``origin`` in the *current*
    (quiescent) state will probe: starting at the initiator, the probe wave
    crosses every edge ``(x, v)`` with ``not x.taken[v]``, fanning out away
    from the requestor.  ``nodes`` is the engine's ``id -> LeaseNode`` map.
    """
    edges: Set[Edge] = set()
    stack: List[Tuple[int, Optional[int]]] = [(origin, None)]
    while stack:
        x, parent = stack.pop()
        nx = nodes[x]
        for v in nx.nbrs:
            if v == parent or nx.taken[v]:
                continue
            edges.add((x, v))
            stack.append((v, x))
    return edges


def attach_standard_monitors(trace: TraceLog, strict: bool = True) -> List[Monitor]:
    """Attach the three lemma monitors to a trace; returns them.

    The trace must be enabled (monitors are event subscribers; a disabled
    log never fires them).
    """
    if not trace.enabled:
        raise ValueError("monitors need an enabled TraceLog (trace_enabled=True)")
    monitors: List[Monitor] = [
        LeaseSymmetryMonitor(strict=strict),
        ProbeFanoutMonitor(strict=strict),
        DeliveryContractMonitor(strict=strict),
    ]
    for m in monitors:
        m.attach(trace)
    return monitors


def all_violations(monitors: List[Monitor]) -> List[Violation]:
    """Flattened violations across monitors (empty = all lemmas held)."""
    out: List[Violation] = []
    for m in monitors:
        out.extend(m.violations)
    return out
