"""Request spans: one structured record per combine/write.

A :class:`RequestSpan` is the per-request unit of the telemetry layer — the
thing the paper's per-request cost statements (Lemma 3.3 for combines,
Lemma 3.5 for leased writes) are *about*.  The execution engines build one
span per initiated request, capturing:

* start/end **virtual time** (identical in the sequential engine, whose
  clock is pinned to 0.0; real durations in the concurrent engine);
* the **messages attributed** to the request — the goodput-ledger delta
  between initiation and completion.  In sequential executions this is an
  exact attribution (one request in flight at a time); in concurrent
  executions overlapping requests share the ledger, so spans whose window
  overlapped another open request are flagged ``overlapped`` and their
  message count is an upper bound;
* the **probe fan-out** — the directed edges that carried probes during the
  span (exact for non-overlapped combines; requires tracing);
* the **failure cause** (``"timeout"`` for watchdog kills, ``"hung"`` for
  combines a lossy run abandoned, ``None`` on success).

Spans land in ``ExecutionResult.spans``, feed the ``messages_per_request``
and ``combine_latency`` histograms, and are emitted as typed ``"span"``
events into the :class:`~repro.sim.trace.TraceLog` so exported JSONL traces
carry the full per-request story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

Edge = Tuple[int, int]


@dataclass
class RequestSpan:
    """Telemetry for one combine/write request.

    Attributes
    ----------
    req:
        Serial number of the request within its run (initiation order).
    node:
        Node where the request was initiated.
    op:
        ``"combine"`` or ``"write"``.
    start, end:
        Virtual times of initiation and completion.
    messages:
        Goodput messages attributed to the span (see module docstring).
    probe_fanout:
        Sorted directed edges ``(src, dst)`` that carried probe messages
        during the span (empty when tracing was off or for writes).
    scope:
        Scoped-combine target neighbor, or ``None`` for global combines
        and writes.
    value:
        The combine's retval / the write's argument.
    failure:
        ``None`` on success; ``"timeout"`` or ``"hung"`` otherwise.
    overlapped:
        True when another request was open during any part of the span
        (concurrent engine only) — message attribution is then inexact.
    """

    req: int
    node: int
    op: str
    start: float
    end: float
    messages: int
    probe_fanout: Tuple[Edge, ...] = ()
    scope: Optional[int] = None
    value: Any = None
    failure: Optional[str] = None
    overlapped: bool = False

    @property
    def duration(self) -> float:
        """Virtual-clock latency of the request."""
        return self.end - self.start

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (used by the trace exporter)."""
        out: Dict[str, Any] = {
            "req": self.req,
            "node": self.node,
            "op": self.op,
            "start": self.start,
            "end": self.end,
            "messages": self.messages,
        }
        if self.probe_fanout:
            out["probe_fanout"] = [list(e) for e in self.probe_fanout]
        if self.scope is not None:
            out["scope"] = self.scope
        if self.value is not None:
            out["value"] = self.value
        if self.failure is not None:
            out["failure"] = self.failure
        if self.overlapped:
            out["overlapped"] = True
        return out

    def to_event_detail(self) -> Dict[str, Any]:
        """The span as ``"span"``-event detail: :meth:`to_dict` minus the
        ``node`` key (the event's own ``node`` field carries it).

        Built fresh rather than popping from a :meth:`to_dict` result so
        callers holding that dict never see it mutated (the historical
        double-accounting risk when one rendering fed both the trace and
        an exporter).
        """
        return {k: v for k, v in self.to_dict().items() if k != "node"}


def probe_fanout_from_events(events: List[Any]) -> Tuple[Edge, ...]:
    """Directed edges that carried probes in a window of trace events.

    ``events`` is a slice of :class:`~repro.sim.trace.TraceEvent` records
    (e.g. ``trace.since(mark)``); logical probe sends are ``"send"`` events
    with ``msg == "probe"``.
    """
    edges = {
        (ev.node, ev.detail["dst"])
        for ev in events
        if ev.kind == "send" and ev.detail.get("msg") == "probe"
    }
    return tuple(sorted(edges))


def span_summary(spans: List[RequestSpan]) -> Dict[str, Any]:
    """Aggregate view of a run's spans (used by report/CLI)."""
    combines = [s for s in spans if s.op == "combine"]
    writes = [s for s in spans if s.op == "write"]
    failed = [s for s in spans if not s.ok]
    return {
        "spans": len(spans),
        "combines": len(combines),
        "writes": len(writes),
        "failed": len(failed),
        "overlapped": sum(1 for s in spans if s.overlapped),
        "messages_attributed": sum(s.messages for s in spans),
        "max_combine_latency": max((s.duration for s in combines), default=0.0),
    }
