"""Unified telemetry layer: metrics, request spans, trace export, monitors.

The paper's entire analysis is stated in observable quantities — per-edge
per-kind message counts (Lemma 3.9 / Figure 2), lease transitions
(Figure 4), per-combine probe fan-out (Lemma 3.3) — and this package makes
those quantities first-class at runtime:

``repro.obs.metrics``
    :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
    histograms scoped per-node / per-directed-edge, with deterministic
    JSON snapshots.
``repro.obs.spans``
    :class:`RequestSpan` — one record per combine/write: virtual-time
    window, attributed messages, probe fan-out, failure cause.
``repro.obs.export``
    JSONL trace export/import with bit-identical round-trips, plus
    :func:`trace_diff` / :func:`trace_summary` for the ``repro trace`` CLI.
``repro.obs.monitors``
    Streaming lemma checkers on the trace event bus; violations raise
    structured :class:`MonitorViolation` in tests/CI and print as warnings
    in the CLI.
``repro.obs.perf``
    :class:`PerfProfiler` — wall-clock phase timers and counters threaded
    through the hot paths, with a null-object disabled mode, collapsed
    (flamegraph) stacks and per-phase histograms.
``repro.obs.costmeter``
    :class:`CostMeter` — streaming per-edge DP accountant comparing the
    observed message cost against the offline OPT lower bound live.

The engines in :mod:`repro.core.engine` populate all of it: every run gets
a registry and spans for free; enabling tracing additionally feeds the
event bus (and therefore the monitors and the exporter).
"""

from repro.obs.costmeter import CostMeter, CostReport
from repro.obs.export import (
    dumps_events,
    event_from_dict,
    event_to_dict,
    export_jsonl,
    import_jsonl,
    loads_events,
    top_edges,
    trace_diff,
    trace_summary,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsBridge,
    MetricsRegistry,
)
from repro.obs.monitors import (
    DeliveryContractMonitor,
    LeaseSymmetryMonitor,
    Monitor,
    MonitorViolation,
    ProbeFanoutMonitor,
    Violation,
    all_violations,
    attach_standard_monitors,
    expected_probe_edges,
)
from repro.obs.perf import (
    NULL_PROFILER,
    NullProfiler,
    PerfProfiler,
    PHASE_SECONDS_BUCKETS,
    parse_collapsed,
)
from repro.obs.spans import RequestSpan, probe_fanout_from_events, span_summary

__all__ = [
    "CostMeter",
    "CostReport",
    "NULL_PROFILER",
    "NullProfiler",
    "PerfProfiler",
    "PHASE_SECONDS_BUCKETS",
    "parse_collapsed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsBridge",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "RequestSpan",
    "probe_fanout_from_events",
    "span_summary",
    "export_jsonl",
    "import_jsonl",
    "dumps_events",
    "loads_events",
    "event_to_dict",
    "event_from_dict",
    "trace_diff",
    "trace_summary",
    "top_edges",
    "Monitor",
    "MonitorViolation",
    "Violation",
    "LeaseSymmetryMonitor",
    "ProbeFanoutMonitor",
    "DeliveryContractMonitor",
    "attach_standard_monitors",
    "all_violations",
    "expected_probe_edges",
]
