"""JSONL trace export/import — record a run, ship it, re-inspect it.

One event per line, canonical JSON::

    {"t": 0.0, "kind": "send", "node": 0, "detail": {"dst": 1, "msg": "probe"}}

Canonicalization makes round-trips **lossless and bit-identical**: detail
values are JSON-sanitized once at export (sets/frozensets become sorted
lists, tuples become lists, non-string dict keys become strings, message
objects become their ``kind`` string), keys are serialized sorted, and
floats keep Python ``repr`` fidelity.  Therefore::

    dumps_events(import_jsonl(p)) == Path(p).read_text()

for any file this module wrote, and :func:`trace_diff` between a run's
live trace and its export→import round-trip reports zero differences.

The module is transport-free (stdlib ``json`` only) and is what the
``python -m repro trace`` CLI drives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.sim.trace import TraceEvent, TraceLog

PathLike = Union[str, Path]

#: Format tag written into error messages; bump on breaking schema change.
TRACE_FORMAT = "repro-trace/1"


def _jsonify(value: Any) -> Any:
    """Canonical JSON-safe form of one detail value (deterministic)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    kind = getattr(value, "kind", None)
    if kind is not None:
        return str(kind)
    return repr(value)


def event_to_dict(ev: TraceEvent) -> Dict[str, Any]:
    """Canonical JSON-safe dict for one event."""
    return {
        "t": float(ev.time),
        "kind": ev.kind,
        "node": ev.node,
        "detail": _jsonify(ev.detail),
    }


def event_from_dict(d: Dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict` (detail stays in canonical form)."""
    for key in ("t", "kind", "node"):
        if key not in d:
            raise ValueError(f"trace event missing {key!r}: {d!r}")
    return TraceEvent(
        time=float(d["t"]),
        kind=str(d["kind"]),
        node=int(d["node"]),
        detail=dict(d.get("detail") or {}),
    )


def _dump_line(ev: TraceEvent) -> str:
    return json.dumps(event_to_dict(ev), sort_keys=True, separators=(",", ":"))


def dumps_events(events: Iterable[TraceEvent]) -> str:
    """The JSONL text for an event stream."""
    return "".join(_dump_line(ev) + "\n" for ev in events)


def export_jsonl(trace: Union[TraceLog, Iterable[TraceEvent]], path: PathLike) -> int:
    """Write a trace as JSONL; returns the number of events written."""
    p = Path(path)
    n = 0
    with p.open("w") as fh:
        for ev in trace:
            fh.write(_dump_line(ev) + "\n")
            n += 1
    return n


def import_jsonl(path: PathLike, max_events: Optional[int] = None) -> TraceLog:
    """Read a JSONL trace file back into a :class:`TraceLog`.

    Imported events carry canonical (JSON-shaped) detail values; a
    re-export is bit-identical to the original file.
    """
    log = TraceLog(enabled=True, max_events=max_events)
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid {TRACE_FORMAT} JSON: {exc}"
                ) from exc
            ev = event_from_dict(record)
            log.emit(ev.time, ev.kind, ev.node, **ev.detail)
    return log


def loads_events(text: str) -> List[TraceEvent]:
    """Inverse of :func:`dumps_events` (in-memory)."""
    out: List[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        out.append(event_from_dict(json.loads(line)))
    return out


# ------------------------------------------------------------------- diff
def trace_diff(
    a: Union[TraceLog, Iterable[TraceEvent]],
    b: Union[TraceLog, Iterable[TraceEvent]],
    limit: int = 20,
) -> List[str]:
    """Structural differences between two event streams (empty = identical).

    Events are compared in canonical JSON form, position by position, so a
    live trace and its export→import round-trip compare equal.  At most
    ``limit`` difference lines are rendered (a final line reports the
    remainder when truncated).
    """
    ea = [event_to_dict(ev) for ev in a]
    eb = [event_to_dict(ev) for ev in b]
    diffs: List[str] = []
    total = 0

    def add(msg: str) -> None:
        nonlocal total
        total += 1
        if len(diffs) < limit:
            diffs.append(msg)

    for i, (da, db) in enumerate(zip(ea, eb)):
        if da == db:
            continue
        fields = [
            k for k in ("t", "kind", "node", "detail")
            if da.get(k) != db.get(k)
        ]
        add(
            f"event {i}: differs in {', '.join(fields)} "
            f"(a={json.dumps(da, sort_keys=True)} b={json.dumps(db, sort_keys=True)})"
        )
    if len(ea) != len(eb):
        add(f"length mismatch: a has {len(ea)} events, b has {len(eb)}")
    if total > len(diffs):
        diffs.append(f"... and {total - len(diffs)} more difference(s)")
    return diffs


# ---------------------------------------------------------------- summary
#: Frame-level kinds the reliable layer puts on the wire; excluded from
#: logical-traffic summaries.
def is_logical_kind(msg: str) -> bool:
    """True for protocol message kinds (probe/response/update/release/...),
    False for recovery frames (``seg:*``) and ACKs."""
    return not (msg.startswith("seg:") or msg == "ack")


def edge_sends(trace: Iterable[TraceEvent], logical_only: bool = True) -> Dict[Tuple[int, int], int]:
    """Per-directed-edge logical send counts from a trace."""
    out: Dict[Tuple[int, int], int] = {}
    for ev in trace:
        if ev.kind != "send":
            continue
        msg = str(ev.detail.get("msg", ""))
        if logical_only and not is_logical_kind(msg):
            continue
        edge = (ev.node, int(ev.detail["dst"]))
        out[edge] = out.get(edge, 0) + 1
    return out


def top_edges(trace: Iterable[TraceEvent], top: int = 5) -> List[Tuple[Tuple[int, int], int]]:
    """The ``top`` undirected edges by logical message volume in a trace."""
    directed = edge_sends(trace)
    undirected: Dict[Tuple[int, int], int] = {}
    for (u, v), n in directed.items():
        key = (min(u, v), max(u, v))
        undirected[key] = undirected.get(key, 0) + n
    ranked = sorted(undirected.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def trace_summary(trace: Union[TraceLog, Iterable[TraceEvent]]) -> Dict[str, Any]:
    """Machine-readable digest of a trace (what ``trace summarize`` prints).

    Includes event totals by kind, the virtual-time window, per-node event
    counts, logical message totals, the hottest edges, span/monitor rollups
    when present.
    """
    events = list(trace)
    by_kind: Dict[str, int] = {}
    by_node: Dict[int, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    spans = 0
    failures = 0
    for ev in events:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        by_node[ev.node] = by_node.get(ev.node, 0) + 1
        t_min = ev.time if t_min is None else min(t_min, ev.time)
        t_max = ev.time if t_max is None else max(t_max, ev.time)
        if ev.kind == "span":
            spans += 1
            if ev.detail.get("failure"):
                failures += 1
    sends = edge_sends(events)
    return {
        "format": TRACE_FORMAT,
        "events": len(events),
        "time_window": [t_min if t_min is not None else 0.0,
                        t_max if t_max is not None else 0.0],
        "by_kind": dict(sorted(by_kind.items())),
        "nodes": len(by_node),
        "logical_messages": sum(sends.values()),
        "top_edges": [[list(e), n] for e, n in top_edges(events, top=5)],
        "spans": spans,
        "failed_spans": failures,
    }
