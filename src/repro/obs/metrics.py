"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The paper's analysis is stated entirely in countable quantities — messages
per directed edge and per kind (Lemma 3.9 / Figure 2), probes per combine
(Lemma 3.3), lease transitions (Figure 4) — so the registry mirrors that
shape: every instrument is identified by a **name plus a label set**, and
the conventional labels are ``node=<id>`` (per-node scope), ``src=<id>,
dst=<id>`` (per-directed-edge scope) and ``op``/``kind`` discriminators.

Instruments are cheap plain-Python objects created on first touch::

    reg = MetricsRegistry()
    reg.counter("messages_total", src=0, dst=1, kind="probe").inc()
    reg.gauge("reorder_buffer_depth", src=0, dst=1).set(3)
    reg.histogram("combine_latency").observe(12.5)

:meth:`MetricsRegistry.snapshot` renders everything as a deterministic,
JSON-safe dict for ``summarize_run --json``, benchmark JSON artifacts and
the trace exporter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: A label set, canonicalized to a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, Any], ...]

#: Default histogram bucket upper bounds (messages-per-request scale);
#: the final +inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: Bucket presets for the standard instruments the engines populate.
LATENCY_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


def _canon_labels(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotone event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Point-in-time level with a high-water mark (e.g. reorder-buffer depth)."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0
        self.max: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max}


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets, like Prometheus).

    ``buckets`` is the ascending sequence of upper bounds; an implicit
    +inf bucket catches the overflow.  Tracks count/sum/min/max alongside
    the per-bucket tallies so averages survive the bucketing.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        b = tuple(buckets)
        if not b:
            raise ValueError("histogram needs at least one bucket bound")
        if list(b) != sorted(b):
            raise ValueError(f"bucket bounds must be ascending, got {b}")
        self.buckets = b
        self.counts = [0] * (len(b) + 1)  # last slot = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile: the smallest bucket bound covering a
        ``q`` fraction of observations (``None`` when empty; the +inf
        bucket reports the tracked max)."""
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        seen = 0
        for i, bound in enumerate(self.buckets):
            seen += self.counts[i]
            if seen >= target:
                return bound
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one run.

    One registry per engine instance; merged views across runs are just
    merged snapshots.  Lookup is ``O(1)`` per (name, labels) pair and the
    instruments are plain attribute-bumping objects, so recording on the
    hot path costs a dict probe plus an increment.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------ factories
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _canon_labels(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _canon_labels(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        key = (name, _canon_labels(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return inst

    # -------------------------------------------------------------- queries
    def counter_total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def counter_values(self, name: str) -> Dict[LabelKey, int]:
        """Per-label-set values of a counter family."""
        return {k: c.value for (n, k), c in self._counters.items() if n == name}

    def histogram_values(self, name: str) -> Dict[LabelKey, Histogram]:
        """Per-label-set histograms of a histogram family."""
        return {k: h for (n, k), h in self._histograms.items() if n == name}

    def has(self, name: str) -> bool:
        """Does any instrument family with this name exist?"""
        return any(
            n == name
            for family in (self._counters, self._gauges, self._histograms)
            for (n, _) in family
        )

    # --------------------------------------------------------------- export
    @staticmethod
    def _labels_dict(key: LabelKey) -> Dict[str, Any]:
        return {k: v for k, v in key}

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-safe dump of every instrument.

        Shape::

            {"counters":   {name: [{"labels": {...}, "value": n}, ...]},
             "gauges":     {name: [{"labels": {...}, "value": v, "max": m}, ...]},
             "histograms": {name: [{"labels": {...}, "buckets": [...], ...}, ...]}}
        """
        def render(family: Dict[Tuple[str, LabelKey], Any]) -> Dict[str, List[Dict[str, Any]]]:
            out: Dict[str, List[Dict[str, Any]]] = {}
            for (name, key), inst in sorted(family.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))):
                entry: Dict[str, Any] = {"labels": self._labels_dict(key)}
                entry.update(inst.to_dict())
                out.setdefault(name, []).append(entry)
            return out

        return {
            "counters": render(self._counters),
            "gauges": render(self._gauges),
            "histograms": render(self._histograms),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Alias of :meth:`snapshot` (export-layer convention)."""
        return self.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class MetricsBridge:
    """Trace subscriber populating event-derived instruments.

    Attached by the engines whenever tracing is enabled; turns the event
    stream into per-edge message counters, per-node lease-transition
    counters and lease-hold-duration histograms.  (Instruments that need
    state the trace cannot see — reorder-buffer depth, retransmit counts —
    are recorded directly by :class:`~repro.sim.reliability.ReliableNetwork`
    instead.)
    """

    _LEASE_KINDS = frozenset(
        {"lease_acquired", "lease_released", "lease_granted", "lease_broken",
         "lease_revoked", "lease_voided"}
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._grant_time: Dict[Tuple[int, int], float] = {}

    def __call__(self, ev: Any) -> None:
        kind = ev.kind
        if kind == "send":
            msg = str(ev.detail.get("msg", ""))
            # Frame-level traffic (reliability segments/ACKs) stays out of
            # the logical ledgers — same filter as repro.obs.export.
            if msg.startswith("seg:") or msg == "ack":
                return
            self.registry.counter(
                "messages_total", src=ev.node, dst=ev.detail["dst"], kind=msg
            ).inc()
        elif kind in self._LEASE_KINDS:
            self.registry.counter("lease_events_total", node=ev.node, kind=kind).inc()
            if kind == "lease_granted":
                self._grant_time[(ev.node, ev.detail["grantee"])] = ev.time
            elif kind in ("lease_broken", "lease_revoked"):
                t0 = self._grant_time.pop((ev.node, ev.detail["grantee"]), None)
                if t0 is not None:
                    self.registry.histogram(
                        "lease_hold_duration", buckets=LATENCY_BUCKETS, node=ev.node
                    ).observe(ev.time - t0)
