"""Wall-clock phase profiling with a near-zero-overhead disabled mode.

The virtual-time telemetry of PR 2 (:mod:`repro.obs.metrics`,
:mod:`repro.obs.spans`) answers *protocol* questions — how many messages,
which edges, what latency in simulated time.  It says nothing about where
the **wall clock** goes, which is the question the ROADMAP's flat-engine
work needs answered (the throughput collapse from ~26k req/s at n=7 to
~1k req/s at n=255 is a Python-execution problem, not a protocol one).

:class:`PerfProfiler` is an explicit phase profiler: the hot paths —
the :class:`~repro.sim.scheduler.Simulator` event loop, the
:class:`~repro.core.runtime.Router` dispatch into
``LeaseNode.on_message``, the reliable layer's retransmit path, the
recovery manager's checkpoint sweeps — push/pop named phases around their
work.  Per phase it accumulates call counts, inclusive seconds and *self*
seconds (inclusive minus time attributed to nested phases), and optionally

* a collapsed-stack table (``"a;b;c" -> self-seconds``) ready for any
  flamegraph renderer (:meth:`PerfProfiler.write_collapsed` emits the
  standard one-line-per-stack format, :func:`parse_collapsed` reads it
  back), and
* per-phase wall-clock histograms into an existing
  :class:`~repro.obs.metrics.MetricsRegistry` (instrument
  ``perf_phase_seconds`` labeled by ``phase``).

**Disabled mode is the null-object pattern**: hot paths hold an optional
profiler and guard with ``profiler is not None and profiler.enabled`` —
one attribute load and a branch, no allocation, no per-message attribute
on any node.  :data:`NULL_PROFILER` (a :class:`NullProfiler`) is a shared
do-nothing instance for call sites that prefer unconditional calls.

The profiler is deliberately *not* threaded into ``LeaseNode`` itself:
the automaton's ``on_message`` stays byte-identical, and per-message-kind
attribution happens one frame up, in the router (phase
``mechanism.<kind>``).
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PerfProfiler",
    "PHASE_SECONDS_BUCKETS",
    "parse_collapsed",
]

#: Histogram bucket bounds for ``perf_phase_seconds`` — log-spaced from a
#: microsecond (one dispatch) to a second (a whole benchmark phase).
PHASE_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)

#: Scale used when rendering collapsed stacks: flamegraph tooling expects
#: integer sample counts, so self-seconds are written as microseconds.
_COLLAPSED_SCALE = 1_000_000


class _Phase:
    """Context-manager view over one push/pop pair (``with prof.phase(n):``)."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "PerfProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        self._profiler.push(self._name)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._profiler.pop()


class PerfProfiler:
    """Explicit wall-clock phase profiler (push/pop named phases).

    Parameters
    ----------
    registry:
        Optional :class:`MetricsRegistry`; when given, every phase exit
        observes its inclusive duration into the ``perf_phase_seconds``
        histogram labeled ``phase=<name>``.
    collect_stacks:
        Accumulate the collapsed-stack table (sampling mode).  Off, the
        profiler keeps only the flat per-phase totals.
    clock:
        Injectable time source (defaults to :func:`time.perf_counter`);
        tests substitute a deterministic counter.

    Notes
    -----
    Phases nest: ``self`` seconds exclude time spent in nested phases, so
    ``sum(self_seconds) == total wall time inside root phases`` and the
    collapsed-stack table is exact (no sampling error — this is a tracing
    profiler that *emits* the sampling-profiler interchange format).
    """

    enabled: bool = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        collect_stacks: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry
        self.collect_stacks = collect_stacks
        self._clock = clock
        #: phase name -> number of completed push/pop pairs.
        self.phase_count: Dict[str, int] = {}
        #: phase name -> inclusive seconds (nested phases included).
        self.phase_total: Dict[str, float] = {}
        #: phase name -> self seconds (nested phases excluded).
        self.phase_self: Dict[str, float] = {}
        #: named event counters (``count``).
        self.counters: Dict[str, int] = {}
        #: ``"root;child;leaf" -> self seconds`` (collapsed-stack table).
        self.stacks: Dict[str, float] = {}
        self._names: List[str] = []
        self._starts: List[float] = []
        self._child: List[float] = []

    # ------------------------------------------------------------- recording
    def push(self, name: str) -> None:
        """Enter phase ``name`` (nested under the current phase, if any)."""
        self._names.append(name)
        self._starts.append(self._clock())
        self._child.append(0.0)

    def pop(self) -> float:
        """Exit the current phase; returns its inclusive duration."""
        end = self._clock()
        name = self._names.pop()
        elapsed = end - self._starts.pop()
        child = self._child.pop()
        self_time = elapsed - child
        if self_time < 0.0:  # clock granularity underflow
            self_time = 0.0
        self.phase_count[name] = self.phase_count.get(name, 0) + 1
        self.phase_total[name] = self.phase_total.get(name, 0.0) + elapsed
        self.phase_self[name] = self.phase_self.get(name, 0.0) + self_time
        if self._child:
            self._child[-1] += elapsed
        if self.collect_stacks:
            key = ";".join(self._names) + ";" + name if self._names else name
            self.stacks[key] = self.stacks.get(key, 0.0) + self_time
        if self.registry is not None:
            self.registry.histogram(
                "perf_phase_seconds", buckets=PHASE_SECONDS_BUCKETS, phase=name
            ).observe(elapsed)
        return elapsed

    def phase(self, name: str) -> _Phase:
        """``with profiler.phase("name"):`` convenience around push/pop."""
        return _Phase(self, name)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump the named event counter by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    @property
    def depth(self) -> int:
        """Current phase-stack depth (0 outside any phase)."""
        return len(self._names)

    # --------------------------------------------------------------- export
    def collapsed_lines(self) -> List[str]:
        """The collapsed-stack table as flamegraph-format lines.

        One ``frame;frame;frame <microseconds>`` line per distinct stack,
        sorted for determinism; zero-weight stacks are dropped (a renderer
        would ignore them anyway).
        """
        out = []
        for key in sorted(self.stacks):
            weight = int(round(self.stacks[key] * _COLLAPSED_SCALE))
            if weight > 0:
                out.append(f"{key} {weight}")
        return out

    def write_collapsed(self, path: str) -> int:
        """Write :meth:`collapsed_lines` to ``path``; returns the line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-safe dump of everything recorded so far."""
        phases = {
            name: {
                "count": self.phase_count[name],
                "total_s": self.phase_total[name],
                "self_s": self.phase_self[name],
            }
            for name in sorted(self.phase_count)
        }
        return {
            "enabled": self.enabled,
            "phases": phases,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "stacks": {k: self.stacks[k] for k in sorted(self.stacks)},
        }


class NullProfiler(PerfProfiler):
    """The disabled profiler: every operation is a no-op.

    ``enabled`` is ``False`` so guarded hot paths skip it entirely; call
    sites that invoke it unconditionally pay one no-op method call and
    allocate nothing (``phase`` hands back one shared, reusable context
    manager).
    """

    enabled: bool = False

    def __init__(self) -> None:
        super().__init__(registry=None, collect_stacks=False)
        self._null_phase = _Phase(self, "")

    def push(self, name: str) -> None:  # noqa: ARG002 - interface parity
        return None

    def pop(self) -> float:
        return 0.0

    def phase(self, name: str) -> _Phase:  # noqa: ARG002 - interface parity
        return self._null_phase

    def count(self, name: str, amount: int = 1) -> None:  # noqa: ARG002
        return None


#: Shared do-nothing profiler for unconditional call sites.
NULL_PROFILER = NullProfiler()


def parse_collapsed(lines: Iterable[str]) -> Dict[str, float]:
    """Parse flamegraph collapsed-stack lines back to ``stack -> seconds``.

    Inverse of :meth:`PerfProfiler.collapsed_lines` up to the integer
    microsecond rounding the format imposes.
    """
    out: Dict[str, float] = {}
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        key, _, weight = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed collapsed-stack line: {raw!r}")
        out[key] = out.get(key, 0.0) + int(weight) / _COLLAPSED_SCALE
    return out
