"""Online cost accounting against the per-edge DP lower bound.

The paper's competitive statements compare an algorithm's message cost
``C_A(σ)`` to the optimal offline lease-based algorithm, computed as the
sum over ordered edges of a two-state DP (Figure 2 / Lemma 3.9 —
:func:`repro.offline.edge_dp.edge_dp_cost`).  The offline harness
(:func:`repro.analysis.competitive.competitive_ratio`) does this after the
fact over a complete recorded sequence; :class:`CostMeter` does it
**while the run is happening**.

Per ordered edge it holds the DP frontier ``[dp0, dp1]`` (minimal cost to
have processed the requests so far and end without/with the lease) and
advances it by one token per observed request, using the *same*
``TRANSITIONS`` table as the offline oracle — so at any prefix,
:meth:`CostMeter.opt_lower_bound` equals
:func:`~repro.offline.edge_dp.offline_lease_lower_bound` on that prefix
exactly (both are small-integer float sums; agreement is bit-for-bit, far
inside the 1e-9 the acceptance bar asks for).  The observed side is read
straight from the run's goodput ledger
(:class:`~repro.sim.stats.MessageStats`), giving

* a live competitive-ratio estimate (:meth:`ratio`, with the same
  zero-handling conventions as the offline ``RatioReport``), and
* per-ordered-edge **regret** — observed directional cost
  (:meth:`MessageStats.directional_cost`, the paper's ``C_A(σ, u, v)``)
  minus that edge's DP optimum — pinpointing *where* the algorithm
  overpays (:meth:`edge_regret`).

Scoped combines have no per-edge projection (Lemma 3.8 applies to global
combines only); the meter counts and skips them, flagging the estimate as
partial in its report.  The meter assumes a static topology — engines
disable it under dynamic membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.offline.edge_dp import TRANSITIONS
from repro.offline.projection import NOOP, READ, WRITE_TOKEN
from repro.sim.stats import MessageStats
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

__all__ = ["CostMeter", "CostReport"]

Edge = Tuple[int, int]


@dataclass
class CostReport:
    """Point-in-time summary of the meter (JSON-safe via :meth:`to_dict`).

    ``opt_lower_bound`` is the prefix OPT; ``ratio`` uses the offline
    harness's conventions (1.0 when both sides are zero, ``inf`` when only
    the bound is).  ``regret`` lists ordered edges by observed-minus-OPT
    overpayment, largest first.
    """

    observed: int
    opt_lower_bound: int
    ratio: float
    requests: int
    skipped_scoped: int
    regret: List[Tuple[Edge, int, int]] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """True when scoped combines were skipped (bound covers a subset)."""
        return self.skipped_scoped > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "observed_messages": self.observed,
            "opt_lower_bound": self.opt_lower_bound,
            "competitive_ratio": self.ratio if self.ratio != inf else None,
            "requests": self.requests,
            "skipped_scoped": self.skipped_scoped,
            "partial": self.partial,
            "regret": [
                {"edge": [u, v], "observed": obs, "opt": opt, "regret": obs - opt}
                for (u, v), obs, opt in self.regret
            ],
        }


class CostMeter:
    """Streaming per-edge DP accountant for one run.

    Parameters
    ----------
    tree:
        The (static) aggregation tree; subtree membership per ordered edge
        is cached once, mirroring
        :func:`repro.offline.projection.project_all_edges`.
    stats:
        The run's goodput ledger — the same object the engines write, so
        the observed side needs no extra bookkeeping.
    """

    def __init__(self, tree: Tree, stats: MessageStats) -> None:
        self.tree = tree
        self.stats = stats
        self._sides: Dict[Edge, FrozenSet[int]] = {
            (u, v): frozenset(tree.subtree(u, v)) for u, v in tree.directed_edges()
        }
        # Two-state DP frontier per ordered edge: dp[s] = minimal cost of
        # any transition choice sequence ending in lease-state s.
        self._dp: Dict[Edge, List[float]] = {
            edge: [0.0, inf] for edge in self._sides
        }
        self.requests_seen = 0
        self.skipped_scoped = 0

    # ------------------------------------------------------------- streaming
    def observe(self, request: Request) -> None:
        """Fold one initiated request into every edge's DP frontier.

        Requests must be observed in initiation order — the DP is a prefix
        computation over ``σ``.  Scoped combines are counted but skipped
        (no per-edge projection exists for them).
        """
        if request.scope is not None:
            self.skipped_scoped += 1
            return
        if request.op == WRITE:
            node = request.node
            for edge, side_u in self._sides.items():
                self._advance(edge, WRITE_TOKEN if node in side_u else NOOP)
        elif request.op == COMBINE:
            node = request.node
            for edge, side_u in self._sides.items():
                if node not in side_u:
                    self._advance(edge, READ)
        else:
            raise ValueError(f"cannot account op {request.op!r}")
        self.requests_seen += 1

    def _advance(self, edge: Edge, token: str) -> None:
        dp = self._dp[edge]
        n0, n1 = inf, inf
        for s in (0, 1):
            cur = dp[s]
            if cur == inf:
                continue
            for s2, cost in TRANSITIONS[(s, token)]:
                cand = cur + cost
                if s2 == 0:
                    if cand < n0:
                        n0 = cand
                else:
                    if cand < n1:
                        n1 = cand
        dp[0], dp[1] = n0, n1

    # --------------------------------------------------------------- queries
    def edge_opt(self, u: int, v: int) -> int:
        """The DP optimum for ordered edge ``(u, v)`` on the prefix so far."""
        dp = self._dp[(u, v)]
        best = min(dp)
        return int(best) if best != inf else 0

    def opt_lower_bound(self) -> int:
        """Σ per-ordered-edge optima — the prefix OPT comparator."""
        total = 0
        for dp in self._dp.values():
            best = min(dp)
            if best != inf:
                total += int(best)
        return total

    def observed_cost(self) -> int:
        """The run's goodput total so far (the paper's ``C_A(σ)``)."""
        return self.stats.total

    def ratio(self) -> float:
        """Live competitive-ratio estimate, offline-harness conventions:
        1.0 when both sides are zero, ``inf`` when only the bound is."""
        observed = self.observed_cost()
        bound = self.opt_lower_bound()
        if bound == 0:
            return 1.0 if observed == 0 else inf
        return observed / bound

    def edge_regret(self) -> List[Tuple[Edge, int, int]]:
        """Per ordered edge ``((u, v), observed, opt)``, sorted by regret
        (observed minus opt) descending, then by edge for determinism."""
        rows = []
        for (u, v) in self._sides:
            obs = self.stats.directional_cost(u, v)
            opt = self.edge_opt(u, v)
            rows.append(((u, v), obs, opt))
        rows.sort(key=lambda r: (-(r[1] - r[2]), r[0]))
        return rows

    def report(self, top_edges: Optional[int] = None) -> CostReport:
        """Snapshot everything into a :class:`CostReport` (``top_edges``
        truncates the regret list; default keeps every edge)."""
        regret = self.edge_regret()
        if top_edges is not None:
            regret = regret[:top_edges]
        return CostReport(
            observed=self.observed_cost(),
            opt_lower_bound=self.opt_lower_bound(),
            ratio=self.ratio(),
            requests=self.requests_seen,
            skipped_scoped=self.skipped_scoped,
            regret=regret,
        )
