"""repro — Online Aggregation over Trees (Plaxton, Tiwari, Yalagandula, IPPS 2007).

A complete implementation of the paper's lease-based aggregation mechanism,
the RWW online algorithm, the offline comparators of its competitive
analysis, its consistency machinery (strict and causal), the baselines it
motivates against, and a benchmark suite regenerating every figure/table and
theorem-level claim.

Quickstart
----------
>>> from repro import AggregationSystem, path_tree, write, combine
>>> system = AggregationSystem(path_tree(4))
>>> _ = system.execute(write(0, 10.0))
>>> _ = system.execute(write(3, 32.0))
>>> system.execute(combine(1)).retval
42.0

Package layout
--------------
``repro.ops``          aggregation operators (commutative monoids)
``repro.tree``         tree topologies and generators
``repro.sim``          discrete-event simulation substrate
``repro.core``         the lease mechanism, RWW, execution engines, and the
                       execution-backend seam (``core.backend``)
``repro.flat``         vectorized flat backend: array state, interned
                       messages, batched delivery (``backend="flat"``)
``repro.offline``      offline-optimal comparators (per-edge DP, nice bound)
``repro.consistency``  strict and causal consistency checkers
``repro.workloads``    request model and synthetic/adversarial generators
``repro.analysis``     Figure-4 state machine, Figure-5 LP, ratio harness
``repro.baselines``    Astrolabe / MDS-2 / static-k / time-lease baselines
``repro.obs``          telemetry: metrics registry, request spans, JSONL
                       trace export/replay, live lemma monitors
"""

from repro.core.backend import BACKENDS, BackendUnsupported, build_backend
from repro.core.engine import (
    AggregationSystem,
    CombineTimeout,
    ConcurrentAggregationSystem,
    ExecutionResult,
    ScheduledRequest,
    faulty_concurrent_system,
    reliable_concurrent_system,
    run_with_faults,
)
from repro.sim.reliability import ReliabilityConfig
from repro.core.mechanism import LeaseNode
from repro.core.policies import (
    ABPolicy,
    AlwaysLeasePolicy,
    HeterogeneousABPolicy,
    LeasePolicy,
    NeverLeasePolicy,
    RWWPolicy,
    WriteOncePolicy,
)
from repro.core.randomized import RandomBreakPolicy, random_break_factory
from repro.core.multiattr import MultiAttributeSystem, MultiOpReport
from repro.core.dynamic import DynamicAggregationSystem
from repro.ops import AVERAGE, COUNT, MAX, MIN, SUM, AggregationOperator
from repro.tree import (
    Tree,
    balanced_kary_tree,
    binary_tree,
    caterpillar_tree,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
    two_node_tree,
)
from repro.workloads import Request, combine, scoped_combine, write
from repro.obs import (
    MetricsRegistry,
    MonitorViolation,
    RequestSpan,
    attach_standard_monitors,
)

__version__ = "1.1.0"

__all__ = [
    "AggregationSystem",
    "BACKENDS",
    "BackendUnsupported",
    "build_backend",
    "CombineTimeout",
    "ConcurrentAggregationSystem",
    "ExecutionResult",
    "ScheduledRequest",
    "ReliabilityConfig",
    "faulty_concurrent_system",
    "reliable_concurrent_system",
    "run_with_faults",
    "LeaseNode",
    "LeasePolicy",
    "RWWPolicy",
    "ABPolicy",
    "AlwaysLeasePolicy",
    "NeverLeasePolicy",
    "WriteOncePolicy",
    "HeterogeneousABPolicy",
    "RandomBreakPolicy",
    "random_break_factory",
    "MultiAttributeSystem",
    "MultiOpReport",
    "DynamicAggregationSystem",
    "AggregationOperator",
    "SUM",
    "MIN",
    "MAX",
    "COUNT",
    "AVERAGE",
    "Tree",
    "path_tree",
    "star_tree",
    "binary_tree",
    "balanced_kary_tree",
    "caterpillar_tree",
    "spider_tree",
    "random_tree",
    "two_node_tree",
    "Request",
    "combine",
    "scoped_combine",
    "write",
    "MetricsRegistry",
    "MonitorViolation",
    "RequestSpan",
    "attach_standard_monitors",
    "__version__",
]
