"""The shared node-runtime every execution engine drives.

Historically each engine (sequential, concurrent, multi-attribute,
dynamic) re-implemented the same plumbing: build a transport, wire a
per-node ``send`` callback, dispatch received messages to
``LeaseNode.on_message``, thread the telemetry objects through, record
:class:`~repro.obs.spans.RequestSpan` bookkeeping, and assert the
quiescent-state lemmas.  :class:`NodeRuntime` owns all of that exactly
once; the engines are thin *drivers* deciding only **when** requests are
initiated (run-to-quiescence vs. scheduled virtual times) and **what**
extra semantics ride along (batching accounting, topology changes).

The layering (see DESIGN.md):

.. code-block:: text

    driver       AggregationSystem | ConcurrentAggregationSystem
                 | MultiAttributeSystem | DynamicAggregationSystem
    runtime      NodeRuntime  (node map + Router, span/metrics hooks,
                 quiescence checking)
    policy       LeasePolicy (RWW, (a,b), ...)   [inside each LeaseNode]
    transport    build_transport(TransportConfig):
                 SynchronousNetwork | Network -> FaultyNetwork
                 -> ReliableNetwork
    telemetry    TraceLog / MetricsRegistry / RequestSpan  (threaded
                 through every layer above)

Because the runtime builds its transport from a declarative
:class:`~repro.sim.transport.TransportConfig`, *any* engine composes with
*any* stack: multi-attribute batching over the concurrent model, dynamic
attach/detach over a faulty-but-healed wire, and so on — combinations the
bespoke wiring paths could not express.
"""

from __future__ import annotations

import copy
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.backend import RuntimeTelemetry
from repro.core.mechanism import LeaseNode
from repro.core.policies import LeasePolicy, RWWPolicy
from repro.obs.costmeter import CostMeter
from repro.obs.metrics import MetricsBridge, MetricsRegistry
from repro.obs.perf import PerfProfiler
from repro.obs.spans import RequestSpan
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.sim.transport import Transport, TransportConfig, build_transport
from repro.tree.topology import Tree
from repro.workloads.requests import Request

#: Builds a fresh policy instance for one node.
PolicyFactory = Callable[[], LeasePolicy]

#: ``node`` value of engine-level trace events (``quiescent``) that do not
#: belong to any single node.
SYSTEM_NODE = -1


class Router:
    """The node map and receive-side dispatch.

    One instance per runtime: the transport's ``receiver`` callback is
    :meth:`route`, which looks up the destination node and hands the
    message to its automaton.  Topology changes go through
    :meth:`add` / :meth:`remove` / :meth:`rename`.
    """

    def __init__(self, profiler: Optional[PerfProfiler] = None) -> None:
        self.nodes: Dict[int, LeaseNode] = {}
        #: Optional wall-clock profiler; when enabled, :meth:`route` wraps
        #: each delivery in a ``mechanism.<kind>`` phase.  Disabled or
        #: absent, the dispatch path pays one attribute load and a branch —
        #: no allocation, and ``LeaseNode.on_message`` itself is untouched.
        self.profiler = profiler

    def route(self, src: int, dst: int, message: Any) -> None:
        """Deliver ``message`` (sent by ``src``) to node ``dst``."""
        prof = self.profiler
        if prof is not None and prof.enabled:
            prof.count("messages_routed")
            prof.push("mechanism." + type(message).__name__.lower())
            try:
                self.nodes[dst].on_message(src, message)
            finally:
                prof.pop()
            return
        self.nodes[dst].on_message(src, message)

    def add(self, node: LeaseNode) -> LeaseNode:
        self.nodes[node.id] = node
        return node

    def remove(self, node_id: int) -> LeaseNode:
        return self.nodes.pop(node_id)

    def rename(self, old: int, new: int) -> LeaseNode:
        """Re-key node ``old`` as ``new`` (dense-id compaction)."""
        node = self.nodes.pop(old)
        node.id = new
        self.nodes[new] = node
        return node

    def __getitem__(self, node_id: int) -> LeaseNode:
        return self.nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)


class NodeRuntime(RuntimeTelemetry):
    """Everything the engines share: nodes, transport, telemetry, lemmas.

    Parameters
    ----------
    tree:
        The aggregation tree.
    op:
        The aggregation operator (default: :data:`~repro.ops.standard.SUM`).
    policy_factory:
        Zero-argument callable producing a fresh policy per node.
    transport:
        Declarative transport-stack description (default: the synchronous
        FIFO queue of the sequential model).
    ghost:
        Enable Section-5 ghost logs on every node.
    trace_enabled:
        Record structured trace events (also feeds the metrics bridge).
    metrics:
        Share an existing registry (default: a fresh one).
    trace_max_events:
        Ring-buffer cap for the trace (default unbounded).
    seed:
        Engine seed; the transport inherits it unless its config pins one.
    node_cls:
        The node-automaton class (default :class:`LeaseNode`).  Injection
        point for instrumented or deliberately-broken subclasses — the
        model checker's mutation tests run a faulty ``LeaseNode`` through
        the stock runtime this way.
    """

    #: Backend-seam identity (see :func:`repro.core.backend.build_backend`).
    backend_name = "reference"

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        transport: Optional[TransportConfig] = None,
        *,
        ghost: bool = False,
        trace_enabled: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
        seed: int = 0,
        node_cls: Type[LeaseNode] = LeaseNode,
        recovery: Optional[Any] = None,
        profiler: Optional[PerfProfiler] = None,
        cost_accounting: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.tree = tree
        self.op = op
        self.policy_factory = policy_factory
        self.config = transport if transport is not None else TransportConfig()
        self.trace = TraceLog(enabled=trace_enabled, max_events=trace_max_events)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[RequestSpan] = []
        if trace_enabled:
            self.trace.subscribe(MetricsBridge(self.metrics))
        self.stats = MessageStats()
        #: Optional wall-clock profiler, threaded into the scheduler's
        #: event loop, the router's dispatch and the reliable layer's
        #: retransmit path.  ``None`` (the default) keeps every hot path
        #: on its historical unguarded code.
        self.profiler = profiler
        #: Streaming observed-vs-OPT accountant (``cost_accounting=True``);
        #: engines feed it one request per initiation, in order.  Dropped
        #: on :meth:`set_topology` — the per-edge DP assumes a static tree.
        self.cost_meter: Optional[CostMeter] = (
            CostMeter(tree, self.stats) if cost_accounting else None
        )
        self.sim: Optional[Simulator] = (
            Simulator(profiler=profiler) if self.config.needs_sim else None
        )
        self.router = Router(profiler=profiler)
        self.network: Transport = build_transport(
            self.config,
            tree,
            receiver=self.router.route,
            sim=self.sim,
            seed=seed,
            stats=self.stats,
            trace=self.trace,
            metrics=self.metrics,
            profiler=profiler,
        )
        self._ghost = ghost
        self.node_cls = node_cls
        #: Node timestamp source: an explicit live clock domain (external
        #: transports — wall/hybrid clocks) wins, else the virtual clock,
        #: else the sequential model's constant 0.0.
        self._clock = clock if clock is not None else (
            self._read_clock if self.sim is not None else None
        )
        self.crashed: set = set()
        self._failure_listeners: List[Callable[[List[Request]], None]] = []
        for i in tree.nodes():
            self.router.add(self._make_node(i, tree))
        # Scheduled faults (crash/recover/partition/heal in the FaultPlan)
        # are applied by the wire; the runtime listens so the node-level
        # consequences (volatile-state loss, reconciliation) follow.
        wire = getattr(self.network, "inner", self.network)
        if hasattr(wire, "add_fault_listener"):
            wire.add_fault_listener(self._on_scheduled_fault)
        #: The attached RecoveryManager, when crash recovery is enabled.
        self.recovery = None
        if recovery is not None:
            from repro.recovery.manager import RecoveryManager

            self.recovery = RecoveryManager(self, recovery)

    def _read_clock(self) -> float:
        # A bound method, not a closure: NodeRuntime.fork deep-copies
        # everything through one memo, and closures are atomic under
        # deepcopy (a cloned node would read the *original* sim's clock).
        return self.sim.now

    # ------------------------------------------------------------------ nodes
    @property
    def nodes(self) -> Dict[int, LeaseNode]:
        """node id -> :class:`LeaseNode` (the router's map)."""
        return self.router.nodes

    def _make_node(self, node_id: int, tree: Tree) -> LeaseNode:
        return self.node_cls(
            node_id,
            tree,
            self.op,
            self.policy_factory(),
            send=partial(self.network.send, node_id),
            trace=self.trace,
            ghost=self._ghost,
            clock=self._clock,
        )

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current time: virtual under a simulator, the injected live
        clock under an external transport, 0.0 in the sequential model."""
        if self.sim is not None:
            return self.sim.now
        if self._clock is not None:
            return self._clock()
        return 0.0

    def drain(self) -> None:
        """Run the transport to quiescence.

        Synchronous stacks drain their FIFO queue; simulated stacks run
        the event heap dry (delivering messages, retransmissions and
        timers alike).
        """
        if self.sim is not None:
            self.sim.run()
        else:
            self.network.run_to_quiescence()

    def is_quiescent(self) -> bool:
        return self.network.is_quiescent()

    # ----------------------------------------------------------- verification
    def state_snapshot(self) -> Tuple[Any, ...]:
        """Canonical, hashable rendering of the full runtime state: every
        node's :meth:`LeaseNode.state_snapshot` plus the in-flight message
        queue.

        Only defined for the synchronous transport (the model checker's
        execution model) — latency-ful stacks carry scheduler state the
        snapshot cannot see.
        """
        pending = getattr(self.network, "pending_snapshot", None)
        if pending is None:
            raise RuntimeError(
                "state_snapshot requires a transport with pending_snapshot "
                "(the synchronous or reliable stacks)"
            )
        snap: Tuple[Any, ...] = (
            tuple(self.nodes[i].state_snapshot() for i in sorted(self.nodes)),
            pending(),
        )
        if self.crashed:
            snap += (("crashed", tuple(sorted(self.crashed))),)
        return snap

    def fork(self) -> "NodeRuntime":
        """An independent deep copy of this runtime — nodes, policies,
        ghost logs, queued messages, and (on simulated stacks) the
        scheduler heap with its pending timers included.

        The model checker forks a runtime at every branching point of the
        delivery schedule; mutating one branch never disturbs another.
        Bound methods and partials are deep-copied through the shared memo,
        so the clone's nodes send into the clone's transport, the clone's
        transport routes into the clone's router, and the clone's timers
        fire into the clone's layers — every callback the stack schedules
        is a bound method or partial for exactly this reason (closures are
        atomic under deepcopy and would alias the original).
        """
        return copy.deepcopy(self)

    # -------------------------------------------------------------- requests
    #
    # The engines initiate requests through these two methods (the
    # Backend protocol's driving surface) rather than reaching into the
    # node objects, so backends without per-node objects — the flat
    # backend — can host the same engines.  Telemetry
    # (emit_request_begin / finish_span / emit_quiescent) is inherited
    # from :class:`~repro.core.backend.RuntimeTelemetry`.

    def submit_write(self, request: Request) -> None:
        """Initiate a write (T2) at ``request.node``; no draining."""
        self.nodes[request.node].write(request)

    def submit_combine(
        self, request: Request, on_complete: Callable[[Request], None]
    ) -> None:
        """Initiate a (scoped) combine (T1) at ``request.node``; no draining."""
        node = self.nodes[request.node]
        if request.scope is None:
            node.begin_combine(request, on_complete)
        else:
            node.begin_scoped_combine(request, on_complete)

    # -------------------------------------------------------- crash recovery
    def add_failure_listener(self, fn: Callable[[List[Request]], None]) -> None:
        """Register a callback receiving the requests a crash killed (their
        completion callbacks will never fire); engines close spans here."""
        self._failure_listeners.append(fn)

    def _on_scheduled_fault(self, ev: Any) -> None:
        """Wire-level scheduled fault -> node-level consequence.

        The wire (FaultyNetwork) already black-holed the traffic and
        emitted the lifecycle trace event; here the node loses its volatile
        state (crash) or reconciles (recover).  With a
        :class:`~repro.recovery.manager.RecoveryManager` attached, it owns
        the handling (checkpoint restore, metrics) around the same
        primitives.
        """
        if ev.kind == "crash":
            if self.recovery is not None:
                self.recovery.handle_crash(ev.node)
            else:
                self.crash(ev.node, emit_trace=False)
        elif ev.kind == "recover":
            if self.recovery is not None:
                self.recovery.handle_recover(ev.node)
            else:
                self.recover(ev.node, emit_trace=False)

    def crash(self, node_id: int, *, emit_trace: bool = True) -> List[Request]:
        """Crash a node: black-hole its traffic and lose its volatile state.

        Returns the requests that died with it (failure listeners are
        notified too).  Idempotent — crashing a crashed node is a no-op.
        ``emit_trace`` is off when the wire already emitted ``node_crash``
        (the scheduled-fault path).
        """
        if node_id in self.crashed:
            return []
        if not hasattr(self.network, "crash_node"):
            raise RuntimeError(
                "this transport does not support crash faults (needs the "
                "synchronous, faulty or reliable stack)"
            )
        self.crashed.add(node_id)
        if emit_trace:
            self.trace.emit(self.now, "node_crash", node_id)
        self.network.crash_node(node_id)
        failed = self.nodes[node_id].crash_volatile()
        if failed:
            for fn in self._failure_listeners:
                fn(failed)
        return failed

    def recover(
        self, node_id: int, *, emit_trace: bool = True, reestablish: bool = True
    ) -> None:
        """Recover a crashed node: reopen the wire, reset the reliable
        layer's conversations on its edges, and run the node's lease
        reconciliation round (see :meth:`LeaseNode.recover_reconcile`).
        Checkpoint restoration, when enabled, happens *before* this via
        the :class:`~repro.recovery.manager.RecoveryManager`."""
        if node_id not in self.crashed:
            return
        self.crashed.discard(node_id)
        if emit_trace:
            self.trace.emit(self.now, "node_recover", node_id)
        self.network.recover_node(node_id)
        if hasattr(self.network, "reset_edges_for"):
            self.network.reset_edges_for(node_id)
        self.nodes[node_id].recover_reconcile(reestablish=reestablish)

    # ------------------------------------------------------------- topology
    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the runtime (dynamic engines, at quiescence).

        Re-keys the transport's per-edge state and repoints every node's
        topology reference.  Neighbor-set and per-neighbor protocol state
        changes are the caller's job (via
        :meth:`LeaseNode.attach_neighbor` / ``detach_neighbor`` /
        ``rename_neighbor``) — they are protocol decisions, not plumbing.
        """
        self.tree = tree
        # The cost meter's per-edge DP is defined over one static tree;
        # membership churn invalidates it, so accounting stops here.
        self.cost_meter = None
        self.network.set_topology(tree)
        for node in self.router.nodes.values():
            node.tree = tree

    def add_node(self, node_id: int, tree: Optional[Tree] = None) -> LeaseNode:
        """Create and register a fresh node (dynamic attach)."""
        return self.router.add(self._make_node(node_id, tree if tree is not None else self.tree))

    def remove_node(self, node_id: int) -> LeaseNode:
        """Unregister a node (dynamic detach)."""
        return self.router.remove(node_id)

    def rename_node(self, old: int, new: int) -> LeaseNode:
        """Re-key a node and rebind its precomputed send callables."""
        node = self.router.rename(old, new)
        node.rebind_send(partial(self.network.send, new))
        if old in self.crashed:
            self.crashed.discard(old)
            self.crashed.add(new)
        if hasattr(self.network, "rename_node"):
            self.network.rename_node(old, new)
        return node

    # ------------------------------------------------------------ invariants
    def check_quiescent_invariants(self) -> None:
        """Assert the paper's quiescent-state lemmas on the current state."""
        check_quiescent_invariants(self.tree, self.nodes, self.network)

    def lease_graph_edges(self) -> List[tuple]:
        """Directed edges (u, v) with ``u.granted[v]`` — the lease graph
        G(Q) of Section 3.2 for the current quiescent state."""
        return [
            (u, v)
            for u in self.tree.nodes()
            for v in self.nodes[u].nbrs
            if self.nodes[u].granted[v]
        ]


def check_quiescent_invariants(tree: Tree, nodes: Dict[int, LeaseNode], network) -> None:
    """Assert the paper's quiescent-state lemmas (3.1, 3.2, 3.4) plus
    transport quiescence for any engine's current state.

    Shared by every engine — the lemmas hold in every quiescent state
    regardless of execution model, and (with the reliability layer) must
    be restored at drain even after channel faults.

    * Lemma 3.1: ``u.taken[v] == v.granted[u]`` for every edge.
    * Lemma 3.2: ``u.granted[v]`` implies ``u.taken[w]`` for all other
      neighbors ``w``.
    * Lemma 3.4: every ``pndg`` and ``snt`` is empty.
    * Transport quiescence: no message in transit.
    """
    if not network.is_quiescent():
        raise AssertionError("network not quiescent: messages in transit")
    for u, v in tree.directed_edges():
        nu, nv = nodes[u], nodes[v]
        if nu.taken[v] != nv.granted[u]:
            raise AssertionError(
                f"Lemma 3.1 violated on edge ({u},{v}): "
                f"{u}.taken[{v}]={nu.taken[v]} but {v}.granted[{u}]={nv.granted[u]}"
            )
    for u in tree.nodes():
        nu = nodes[u]
        for v in nu.nbrs:
            if nu.granted[v]:
                for w in nu.nbrs:
                    if w != v and not nu.taken[w]:
                        raise AssertionError(
                            f"Lemma 3.2 violated at {u}: granted[{v}] "
                            f"but taken[{w}] is false"
                        )
        if not nu.quiescent_state_ok():
            raise AssertionError(f"Lemma 3.4 violated at {u}: pndg/snt not empty")


__all__ = [
    "NodeRuntime",
    "Router",
    "PolicyFactory",
    "SYSTEM_NODE",
    "check_quiescent_invariants",
]
