"""Randomized lease policies (extension).

The paper analyzes deterministic policies; randomization is the classic
next step for online problems (e.g. randomized ski rental beats the
deterministic 2-competitive bound against oblivious adversaries).  The
per-edge lease problem embeds a rent-or-buy trade-off — keep paying
updates (rent) or pay the release + future re-pull (buy) — so a
memoryless coin-flip break rule is the natural candidate:

* :class:`RandomBreakPolicy` — grant on the first combine (like RWW);
  after each write-update, break the lease with probability ``p``.
  ``p = 1/2`` makes the *expected* number of tolerated writes equal to
  RWW's two.

These policies stay within the lease mechanism, so all of Section 3's
guarantees (strict consistency sequentially, causal consistency
concurrently) hold automatically — only the *cost* changes.  The EXT-RAND
ablation benchmark measures their expected adversarial ratios; because the
relevant adversary here is adaptive (it observes whether the lease broke
via its next request's cost), randomization does not beat 5/2 in this
model, and the measurements show exactly that.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict

from repro.core.policies import LeasePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode


class RandomBreakPolicy(LeasePolicy):
    """Grant on first combine; break after each write w.p. ``p``.

    Parameters
    ----------
    p:
        Break probability per observed write-update (0 < p <= 1).
    seed:
        Seed for this node's private coin (each node must have its own
        policy instance, hence its own stream).

    The implementation reuses RWW's ``lt`` bookkeeping shape so the
    mechanism's ``onrelease`` retro-accounting stays meaningful: ``lt[v]``
    is 1 while the lease is "armed" and drops to 0 the moment the coin
    chooses to break.  Relay retro-accounting (``release_policy``) flips
    one coin per retroactively charged write.
    """

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        if not (0.0 < p <= 1.0):
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = p
        self.rng = random.Random(seed)
        self.lt: Dict[int, int] = {}

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}

    def on_combine(self, node: "LeaseNode") -> None:
        for v in node.tkn():
            self.lt[v] = 1

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        for v in node.tkn():
            if v != w:
                self.lt[v] = 1

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = 1

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w) and self.rng.random() < self.p:
            self.lt[w] = 0

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return True

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        for _ in node.uaw[v]:
            if self.rng.random() < self.p:
                self.lt[v] = 0
                break

    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)


def random_break_factory(p: float = 0.5, base_seed: int = 0):
    """A policy factory giving each node an independent seeded coin."""
    counter = {"next": 0}

    def factory() -> RandomBreakPolicy:
        seed = hash((base_seed, counter["next"])) & 0x7FFFFFFF
        counter["next"] += 1
        return RandomBreakPolicy(p=p, seed=seed)

    return factory
