"""The lease-based aggregation mechanism — a faithful Figure-1 automaton.

:class:`LeaseNode` implements the node program of Figure 1 (and its Figure-6
ghost-augmented variant): the six guarded transitions ``T1``–``T6`` plus the
helper procedures ``sendprobes``, ``forwardupdates``, ``sendresponse``,
``isgoodforrelease``, ``onrelease``, ``forwardrelease``, ``newid``, ``gval``
and ``subval``.  Policy decisions (the underlined stubs) are delegated to a
:class:`~repro.core.policies.LeasePolicy`.

The node is transport-agnostic: it emits messages through a ``send(dst,
message)`` callback and is driven by ``begin_combine`` / ``write`` /
``on_message``.  Combines complete asynchronously through a callback so the
same code runs under the sequential run-to-quiescence engine and the
concurrent discrete-event engine.

Per-node state (Figure 1's ``var`` block):

=================  =========================================================
``taken[v]``       node believes the lease *from* ``v`` *to* it is set
``granted[v]``     node believes the lease from it *to* ``v`` is set
``aval[v]``        aggregate over ``subtree(v, u)`` as last heard from ``v``
``val``            the (lifted) local value
``uaw[v]``         ids of updates received from ``v`` since the last
                   combine-side clearing ("updates after write")
``pndg``           requestors (neighbors or the node itself) with an open
                   probe round
``snt[r]``         neighbors whose responses requestor ``r``'s round awaits
``upcntr``         update-id counter (``newid``)
``sntupdates``     (node, rcvid, sntid) triples recording relayed updates
=================  =========================================================
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, ClassVar, Dict, List, Optional, Set, Tuple, Type

from repro.core.ghost import GhostLog
from repro.core.messages import Message, Probe, Release, Response, Revoke, Update
from repro.core.policies import LeasePolicy
from repro.ops.monoid import AggregationOperator
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.util.canon import canonical_value
from repro.workloads.requests import Request

#: Transport callback signature: send(dst, message).
SendFn = Callable[[int, Message], None]
#: Combine-completion callback: receives the completed Request.
CompleteFn = Callable[[Request], None]


class LeaseNode:
    """One node of the aggregation tree running the lease mechanism.

    Parameters
    ----------
    node_id:
        This node's id in ``tree``.
    tree:
        The shared topology (used only for neighbor sets and, via ghosts,
        the node count).
    op:
        The aggregation operator ``⊕``.
    policy:
        Lease set/break policy (e.g. :class:`~repro.core.policies.RWWPolicy`).
        Each node needs its own policy instance.
    send:
        Transport callback; must deliver reliably and FIFO per edge.
    trace:
        Optional :class:`~repro.sim.trace.TraceLog` for structured events.
    ghost:
        Enable Section-5 ghost logs (pure instrumentation).
    clock:
        Zero-argument callable returning the current virtual time (used
        only for trace/ghost timestamps).
    """

    def __init__(
        self,
        node_id: int,
        tree: Tree,
        op: AggregationOperator,
        policy: LeasePolicy,
        send: SendFn,
        trace: Optional[TraceLog] = None,
        ghost: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.id = node_id
        self.tree = tree
        self.op = op
        self.policy = policy
        self._send = send
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._clock = clock if clock is not None else (lambda: 0.0)

        self.nbrs: Tuple[int, ...] = tree.neighbors(node_id)
        self.val: Any = op.identity
        self.taken: Dict[int, bool] = {v: False for v in self.nbrs}
        self.granted: Dict[int, bool] = {v: False for v in self.nbrs}
        self.aval: Dict[int, Any] = {v: op.identity for v in self.nbrs}
        self.uaw: Dict[int, Set[int]] = {v: set() for v in self.nbrs}
        self.pndg: Set[int] = set()
        self.snt: Dict[int, Set[int]] = {}
        self.upcntr = 0
        self.sntupdates: List[Tuple[int, int, int]] = []

        # Precomputed per-neighbor send callables: one bound partial per
        # directed edge instead of a closure frame on every send.
        self._send_to: Dict[int, Callable[[Message], None]] = {
            v: partial(send, v) for v in self.nbrs
        }

        self.completed_requests = 0
        self._waiters: List[Tuple[Request, CompleteFn]] = []
        self._scoped_waiters: Dict[int, List[Tuple[Request, CompleteFn]]] = {}
        self.ghost: Optional[GhostLog] = GhostLog(tree.n) if ghost else None
        policy.bind(self)

    # ----------------------------------------------------------- state views
    def tkn(self) -> List[int]:
        """Neighbors ``v`` with ``taken[v]`` (sorted for determinism)."""
        return [v for v in self.nbrs if self.taken[v]]

    def grntd(self) -> List[int]:
        """Neighbors ``v`` with ``granted[v]`` (sorted for determinism)."""
        return [v for v in self.nbrs if self.granted[v]]

    def sntprobes(self) -> Set[int]:
        """Union of all outstanding probe targets (Figure 1's ``sntprobes``)."""
        out: Set[int] = set()
        for targets in self.snt.values():
            out |= targets
        return out

    def gval(self) -> Any:
        """The node's current view of the global aggregate."""
        x = self.val
        for v in self.nbrs:
            x = self.op.combine(x, self.aval[v])
        return x

    def subval(self, w: int) -> Any:
        """Aggregate over ``subtree(self, w)``: everything except ``w``'s side."""
        x = self.val
        for v in self.nbrs:
            if v != w:
                x = self.op.combine(x, self.aval[v])
        return x

    def newid(self) -> int:
        """Fresh monotone update identifier."""
        self.upcntr += 1
        return self.upcntr

    # ------------------------------------------------------------- transport
    def send(self, dst: int, message: Message) -> None:
        sender = self._send_to.get(dst)
        if sender is None:
            # Not a precomputed neighbor: let the transport raise its
            # not-a-tree-edge error.
            self._send(dst, message)
            return
        sender(message)

    def rebind_send(self, send: SendFn) -> None:
        """Replace the transport callback and rebuild the per-neighbor
        send callables (dynamic rename: the node's own id changed)."""
        self._send = send
        self._send_to = {v: partial(send, v) for v in self.nbrs}

    def _wlog_snapshot(self) -> Optional[Tuple[Request, ...]]:
        return self.ghost.wlog_snapshot() if self.ghost is not None else None

    #: Class-keyed dispatch table for :meth:`on_message` — one dict lookup
    #: on the exact message type instead of an ``isinstance`` chain.
    #: Populated after the class body (handlers must exist); message
    #: subclasses are resolved through the MRO on first sight and cached.
    _DISPATCH: ClassVar[Dict[Type[Message], Callable[["LeaseNode", int, Message], None]]] = {}

    def on_message(self, src: int, message: Message) -> None:
        """Dispatch a received message to the matching transition."""
        handler = self._DISPATCH.get(type(message))
        if handler is None:
            handler = self._resolve_handler(type(message))
        handler(self, src, message)

    @classmethod
    def _resolve_handler(
        cls, msg_type: Type[Message]
    ) -> Callable[["LeaseNode", int, Message], None]:
        """Slow path: walk the MRO for message subclasses, cache the hit."""
        for base in msg_type.__mro__:
            handler = cls._DISPATCH.get(base)
            if handler is not None:
                cls._DISPATCH[msg_type] = handler
                return handler
        raise TypeError(f"unknown message type {msg_type.__name__}")

    def _dispatch_probe(self, src: int, message: Message) -> None:
        self._t3_probe(src)

    def _dispatch_revoke(self, src: int, message: Message) -> None:
        self._on_revoke(src)

    # -------------------------------------------------------------------- T1
    def begin_combine(self, request: Request, on_complete: CompleteFn) -> None:
        """T1: a combine request initiated at this node.

        ``on_complete`` fires (possibly immediately) once the global
        aggregate is known; the request's ``retval``/``index`` are filled
        in first.
        """
        self.policy.on_combine(self)
        for v in self.tkn():
            self.uaw[v].clear()
        if self.id not in self.pndg:
            if all(self.taken[v] for v in self.nbrs):
                self._finish_combine([(request, on_complete)])
                return
            self._waiters.append((request, on_complete))
            self._sendprobes(self.id)
            self.snt[self.id] = {v for v in self.nbrs if not self.taken[v]}
        else:
            # A probe round for this node is already open (concurrent
            # executions only); the combine joins it and completes with it.
            self._waiters.append((request, on_complete))

    def _finish_combine(self, waiters: List[Tuple[Request, CompleteFn]]) -> None:
        value = self.gval()
        for request, on_complete in waiters:
            request.retval = value
            request.index = self.completed_requests
            request.completed_at = self._clock()
            self.completed_requests += 1
            if self.ghost is not None:
                self.ghost.append_gather(request)
            self.trace.emit(self._clock(), "combine_done", self.id, value=value)
            on_complete(request)

    # --------------------------------------------------- scoped combines (ext.)
    def begin_scoped_combine(self, request: Request, on_complete: CompleteFn) -> None:
        """A *scoped* combine: return the aggregate over
        ``subtree(request.scope, self)`` only (extension; SDIMS-style
        partial reads).  Served from ``aval`` when the lease from that
        neighbor is held, otherwise by a single probe wave into that
        subtree — reusing the ordinary T3/T4 relay machinery unchanged.
        """
        v = request.scope
        if v not in self.taken:
            raise ValueError(f"scope {v} is not a neighbor of node {self.id}")
        self.policy.on_scoped_combine(self, v)
        self.uaw[v].clear()
        if self.taken[v]:
            self._finish_scoped([(request, on_complete)], v)
            return
        waiters = self._scoped_waiters.setdefault(v, [])
        waiters.append((request, on_complete))
        if v not in self.sntprobes() and len(waiters) == 1:
            self.send(v, Probe())

    def _finish_scoped(self, waiters: List[Tuple[Request, CompleteFn]], v: int) -> None:
        value = self.aval[v]
        for request, on_complete in waiters:
            request.retval = value
            request.index = self.completed_requests
            request.completed_at = self._clock()
            self.completed_requests += 1
            self.trace.emit(self._clock(), "scoped_combine_done", self.id, toward=v, value=value)
            on_complete(request)

    # -------------------------------------------------------------------- T2
    def write(self, request: Request) -> None:
        """T2: a write request at this node (completes immediately)."""
        self.policy.on_write(self)
        self.val = self.op.lift(request.arg)
        request.index = self.completed_requests
        request.completed_at = self._clock()
        self.completed_requests += 1
        if self.ghost is not None:
            self.ghost.append_write(request)
        self.trace.emit(self._clock(), "write_done", self.id, arg=request.arg)
        if self.grntd():
            upd_id = self.newid()
            self._forwardupdates(self.id, upd_id)

    # -------------------------------------------------------------------- T3
    def _t3_probe(self, w: int) -> None:
        self.policy.probe_rcvd(self, w)
        for v in self.tkn():
            if v != w:
                self.uaw[v].clear()
        if w not in self.pndg:
            rest = {v for v in self.nbrs if not self.taken[v] and v != w}
            if not rest:
                self._sendresponse(w)
            else:
                self._sendprobes(w)
                self.snt[w] = rest

    # -------------------------------------------------------------------- T4
    def _t4_response(self, w: int, msg: Response) -> None:
        self.policy.response_rcvd(self, msg.flag, w)
        self.aval[w] = msg.x
        if self.ghost is not None and msg.wlog is not None:
            self.ghost.merge(msg.wlog)
        if msg.flag and not self.taken[w]:
            self.trace.emit(self._clock(), "lease_acquired", self.id, source=w)
        self.taken[w] = msg.flag
        scoped = self._scoped_waiters.pop(w, None)
        if scoped:
            self._finish_scoped(scoped, w)
        for v in sorted(self.pndg):
            targets = self.snt.get(v)
            if targets is None:
                continue
            targets.discard(w)
            if not targets:
                self.pndg.discard(v)
                del self.snt[v]
                if v == self.id:
                    waiters, self._waiters = self._waiters, []
                    self._finish_combine(waiters)
                else:
                    self._sendresponse(v)

    # -------------------------------------------------------------------- T5
    def _t5_update(self, w: int, msg: Update) -> None:
        self.policy.update_rcvd(self, w)
        self.aval[w] = msg.x
        if self.ghost is not None and msg.wlog is not None:
            self.ghost.merge(msg.wlog)
        self.uaw[w].add(msg.id)
        if [v for v in self.grntd() if v != w]:
            nid = self.newid()
            self.sntupdates.append((w, msg.id, nid))
            self._forwardupdates(w, nid)
        else:
            self._forwardrelease()

    # -------------------------------------------------------------------- T6
    def _t6_release(self, w: int, msg: Release) -> None:
        self.policy.release_rcvd(self, w)
        if self.granted[w]:
            self.trace.emit(self._clock(), "lease_broken", self.id, grantee=w)
        self.granted[w] = False
        self._onrelease(w, msg.S)

    # ------------------------------------------------------------ procedures
    def _sendprobes(self, w: int) -> None:
        """``sendprobes(w)``: open (or extend) requestor ``w``'s probe round."""
        self.pndg.add(w)
        already = self.sntprobes()
        targets = [
            v for v in self.nbrs if not self.taken[v] and v != w and v not in already
        ]
        if targets:
            self.trace.emit(
                self._clock(), "probe_round", self.id, requestor=w, targets=targets
            )
        for v in targets:
            self.send(v, Probe())

    def _forwardupdates(self, w: int, upd_id: int) -> None:
        """``forwardupdates(w, id)``: push fresh subvals to all granted
        neighbors except ``w``."""
        wlog = self._wlog_snapshot()
        for v in self.grntd():
            if v != w:
                self.send(v, Update(x=self.subval(v), id=upd_id, wlog=wlog))

    def _sendresponse(self, w: int) -> None:
        """``sendresponse(w)``: answer ``w``'s probe, possibly granting a lease."""
        if not [v for v in self.nbrs if not self.taken[v] and v != w]:
            new_flag = bool(self.policy.set_lease(self, w))
            if new_flag and not self.granted[w]:
                self.trace.emit(self._clock(), "lease_granted", self.id, grantee=w)
            self.granted[w] = new_flag
        self.send(w, Response(x=self.subval(w), flag=self.granted[w], wlog=self._wlog_snapshot()))

    def isgoodforrelease(self, w: int) -> bool:
        """No granted lease besides (possibly) ``w`` — releases may flow up."""
        return not [v for v in self.grntd() if v != w]

    def _onrelease(self, w: int, S: frozenset) -> None:
        """``onrelease(w, S)``: trim ``uaw`` windows and propagate the release.

        For each still-taken neighbor ``v`` (other than ``w``), keep only the
        ``uaw[v]`` ids at least as recent as the oldest update relayed to
        ``w`` within ``S``'s window (the ``sntupdates`` lookup); when no
        relayed update from ``v`` falls in the window — including when ``S``
        is empty — the lease from ``v`` carries no recent write pressure and
        ``uaw[v]`` resets to ∅ (DESIGN.md decision 3; preserves invariant
        I4).
        """
        min_id = min(S) if S else None
        for v in self.tkn():
            if v == w:
                continue
            if min_id is None:
                window: List[Tuple[int, int, int]] = []
            else:
                window = [t for t in self.sntupdates if t[0] == v and t[2] >= min_id]
            if window:
                beta_rcvid = min(t[1] for t in window)
                self.uaw[v] = {i for i in self.uaw[v] if i >= beta_rcvid}
            else:
                self.uaw[v] = set()
            if self.isgoodforrelease(v):
                self.policy.release_policy(self, v)
        self._forwardrelease()

    def _forwardrelease(self) -> None:
        """``forwardrelease()``: break any taken lease the policy agrees to
        break, provided no other granted lease still needs it."""
        for v in self.tkn():
            if (
                self.isgoodforrelease(v)
                and self.taken[v]
                and self.policy.break_lease(self, v)
            ):
                self.taken[v] = False
                self.trace.emit(self._clock(), "lease_released", self.id, source=v)
                self.send(v, Release(S=frozenset(self.uaw[v])))
                self.uaw[v].clear()

    # ----------------------------------------------- dynamic-tree extension
    def revoke_granted(self) -> None:
        """Void every lease this node granted (topology changed on our side).

        Sends a :class:`~repro.core.messages.Revoke` to each granted
        neighbor; receivers cascade (see :meth:`_on_revoke`).  Used by the
        dynamic-tree engine — never by the paper's Figure-1 protocol.
        """
        for v in self.grntd():
            self.granted[v] = False
            self.trace.emit(self._clock(), "lease_revoked", self.id, grantee=v)
            self.send(v, Revoke())
        self._renormalize_after_revoke()

    def _on_revoke(self, w: int) -> None:
        """The lease from ``w`` is void: drop it and cascade to the grantees
        whose coverage relied on it (Lemma 3.2).  The reverse lease back to
        ``w`` itself (if any) covers only this side of the tree and
        survives."""
        if self.taken[w]:
            self.trace.emit(self._clock(), "lease_voided", self.id, source=w)
        self.taken[w] = False
        self.uaw[w].clear()
        for v in self.grntd():
            if v != w:
                self.granted[v] = False
                self.trace.emit(self._clock(), "lease_revoked", self.id, grantee=v)
                self.send(v, Revoke())
        self._renormalize_after_revoke()
        # Crash-recovery healing: a revoke from ``w`` can mean ``w`` crashed
        # and came back — any probe we sent it (or its response) may have
        # died with it.  Re-probe once; duplicate responses are idempotent
        # (T4 discards ``w`` from every open round on the first one).  In
        # the paper's protocol and the dynamic engine revokes only happen
        # at quiescence, where no round is open, so this never fires there.
        stuck = any(w in targets for targets in self.snt.values()) or bool(
            self._scoped_waiters.get(w)
        )
        if stuck:
            self.send(w, Probe())

    def _renormalize_after_revoke(self) -> None:
        """Restore the policy's lease-timer bookkeeping (RWW's I4) for taken
        leases that just stopped being relays: charge their pending ``uaw``
        retroactively, exactly as ``onrelease`` would, and break any lease
        that can no longer tolerate writes."""
        for y in self.tkn():
            if self.isgoodforrelease(y) and self.uaw[y]:
                self.policy.release_policy(self, y)
        self._forwardrelease()

    # ------------------------------------------------ crash-recovery extension
    def crash_volatile(self) -> List[Request]:
        """The node crashed: every open request and probe round dies with
        its volatile state.  Returns the now-failed requests so the engine
        can close their spans (their completion callbacks never fire).
        Durable state (``val``, ``upcntr``, ghost logs) is untouched —
        restoring the lease tables from the last checkpoint is the recovery
        layer's job (:mod:`repro.recovery`)."""
        failed = [q for q, _ in self._waiters]
        self._waiters = []
        for ws in self._scoped_waiters.values():
            failed.extend(q for q, _ in ws)
        self._scoped_waiters = {}
        self.pndg.clear()
        self.snt.clear()
        return failed

    def recover_reconcile(self, reestablish: bool = True) -> None:
        """Post-restart lease reconciliation.

        Whatever the restored checkpoint claims, the node cannot trust any
        lease across its incident edges — peers may have expired, released
        or re-granted them while it was down.  So it voids both directions
        of every edge and *tells the peers so*: a ``Release(∅)`` breaks the
        lease the peer thinks it granted us, a ``Revoke`` voids the lease
        the peer thinks it holds from us (cascading per Lemma 3.2).  Cached
        ``aval`` views and ``uaw`` windows are stale and reset with them,
        and the per-neighbor policy bookkeeping restarts fresh via the
        detach/attach hooks.  With ``reestablish`` a probe round for the
        node itself then re-pulls fresh subtree values (and leases, per
        policy) from every neighbor — completing silently, like a combine
        with no waiters.
        """
        for v in self.nbrs:
            if self.taken[v]:
                self.trace.emit(self._clock(), "lease_voided", self.id, source=v)
            if self.granted[v]:
                self.trace.emit(self._clock(), "lease_revoked", self.id, grantee=v)
            self.taken[v] = False
            self.granted[v] = False
            self.aval[v] = self.op.identity
            self.uaw[v] = set()
            self.policy.neighbor_detached(self, v)
            self.policy.neighbor_attached(self, v)
            self.send(v, Release(S=frozenset()))
            self.send(v, Revoke())
        self.sntupdates = []
        if reestablish and self.nbrs:
            self._sendprobes(self.id)
            self.snt[self.id] = set(self.nbrs)

    def expire_taken(self, v: int) -> None:
        """TTL expiry of the lease *from* ``v``: locally synthesize the
        :class:`Revoke` a dead ``v`` can never send.  Cascades exactly like
        a received revoke, so Lemma 3.2 coverage is preserved (grantees
        relying on this lease lose theirs too instead of serving stale
        reads).  A :class:`Release` then tells the granter we relinquished
        — restoring Lemma 3.1 symmetry through the normal T6 transition
        when ``v`` is reachable; when it is not, ``v``'s own (grace-
        delayed) granted-side expiry is the fallback."""
        if not self.taken.get(v, False):
            return
        self.trace.emit(self._clock(), "lease_expired", self.id, peer=v, side="taken")
        S = frozenset(self.uaw[v])
        self._on_revoke(v)
        self.send(v, Release(S=S))

    def expire_granted(self, v: int) -> None:
        """TTL expiry of the lease granted *to* ``v``: locally synthesize
        the ``Release(∅)`` a dead ``v`` can never send, so writes here stop
        paying update traffic toward a dead subtree."""
        if not self.granted.get(v, False):
            return
        self.trace.emit(self._clock(), "lease_expired", self.id, peer=v, side="granted")
        self.trace.emit(self._clock(), "lease_broken", self.id, grantee=v)
        self.granted[v] = False
        self._onrelease(v, frozenset())

    def attach_neighbor(self, v: int, tree: Tree) -> None:
        """Gain neighbor ``v`` after a topology change (fresh, un-leased
        state).  ``tree`` is the updated topology object."""
        self.tree = tree
        self.nbrs = tree.neighbors(self.id)
        self.taken[v] = False
        self.granted[v] = False
        self.aval[v] = self.op.identity
        self.uaw[v] = set()
        self._send_to[v] = partial(self._send, v)
        self.policy.neighbor_attached(self, v)

    def detach_neighbor(self, v: int, tree: Tree) -> None:
        """Lose neighbor ``v`` after a topology change; all state toward it
        is dropped.  ``tree`` is the updated topology object (callers may
        pass the pre-compaction tree, so ``v`` is filtered explicitly)."""
        self.tree = tree
        self.nbrs = [u for u in tree.neighbors(self.id) if u != v]
        for table in (self.taken, self.granted, self.aval, self.uaw):
            table.pop(v, None)
        self.snt.pop(v, None)
        self.pndg.discard(v)
        # A round still waiting on the departed neighbor (possible when a
        # crashed machine leaves without recovering — its response died on
        # the black-holed wire) would otherwise hang forever: treat the
        # detach as its empty response and let the round close.
        for root in sorted(self.pndg):
            targets = self.snt.get(root)
            if targets is None or v not in targets:
                continue
            targets.discard(v)
            if not targets:
                self.pndg.discard(root)
                del self.snt[root]
                if root == self.id:
                    waiters, self._waiters = self._waiters, []
                    self._finish_combine(waiters)
                else:
                    self._sendresponse(root)
        self.sntupdates = [t for t in self.sntupdates if t[0] != v]
        self._send_to.pop(v, None)
        self.policy.neighbor_detached(self, v)

    def rename_neighbor(self, old: int, new: int) -> None:
        """Neighbor ``old`` is now called ``new`` (dense-id compaction in
        dynamic trees).  Every per-neighbor table — protocol state, the
        policy's bookkeeping, and the precomputed send callable — is
        re-keyed; the protocol state itself is untouched."""
        if old not in self._send_to:
            return
        for table in (self.taken, self.granted, self.aval, self.uaw):
            if old in table:
                table[new] = table.pop(old)
        if old in self.snt:
            self.snt[new] = self.snt.pop(old)
        for targets in self.snt.values():
            # Open rounds may be *waiting on* the renamed neighbor too.
            if old in targets:
                targets.discard(old)
                targets.add(new)
        if old in self.pndg:
            self.pndg.discard(old)
            self.pndg.add(new)
        self.sntupdates = [
            ((new if t[0] == old else t[0]), t[1], t[2]) for t in self.sntupdates
        ]
        del self._send_to[old]
        self._send_to[new] = partial(self._send, new)
        # Policy per-neighbor tables (lt/cc dicts where present).
        for attr in ("lt", "cc"):
            d = getattr(self.policy, attr, None)
            if isinstance(d, dict) and old in d:
                d[new] = d.pop(old)

    # ------------------------------------------------------------ inspection
    def state_snapshot(self) -> Tuple[Any, ...]:
        """Canonical, hashable rendering of the node's complete protocol
        state — every Figure-1 variable, the policy's bookkeeping, open
        waiters, and the ghost log when enabled.

        Two nodes with equal snapshots behave identically under any future
        message schedule, which is what lets the small-scope model checker
        (:mod:`repro.verify.explore`) dedupe explored states by hash.  The
        rendering is deterministic (all per-neighbor tables are sorted) and
        built from :func:`~repro.util.canon.canonical_value`.
        """
        policy_state = canonical_value(
            {k: v for k, v in vars(self.policy).items() if not k.startswith("_")}
        )
        ghost_state = (
            (
                tuple(canonical_value(q) for q in self.ghost.log),
                tuple(canonical_value(q) for q in self.ghost.wlog),
            )
            if self.ghost is not None
            else None
        )
        return (
            self.id,
            canonical_value(self.val),
            tuple(sorted((v, self.taken[v]) for v in self.nbrs)),
            tuple(sorted((v, self.granted[v]) for v in self.nbrs)),
            tuple(sorted((v, canonical_value(self.aval[v])) for v in self.nbrs)),
            tuple(sorted((v, tuple(sorted(self.uaw[v]))) for v in self.nbrs)),
            tuple(sorted(self.pndg)),
            tuple(sorted((r, tuple(sorted(t))) for r, t in self.snt.items())),
            self.upcntr,
            tuple(self.sntupdates),
            self.completed_requests,
            tuple(canonical_value(q) for q, _ in self._waiters),
            tuple(
                sorted(
                    (v, tuple(canonical_value(q) for q, _ in ws))
                    for v, ws in self._scoped_waiters.items()
                    if ws
                )
            ),
            policy_state,
            ghost_state,
        )

    def has_pending(self) -> bool:
        """Any open probe round at this node?"""
        return bool(self.pndg) or bool(self._waiters)

    def quiescent_state_ok(self) -> bool:
        """Lemma 3.4's per-node quiescence: ``pndg`` and every ``snt`` empty."""
        return not self.pndg and all(not s for s in self.snt.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeaseNode(id={self.id}, val={self.val!r}, "
            f"taken={[v for v in self.nbrs if self.taken[v]]}, "
            f"granted={[v for v in self.nbrs if self.granted[v]]})"
        )


LeaseNode._DISPATCH.update(
    {
        Probe: LeaseNode._dispatch_probe,
        Response: LeaseNode._t4_response,
        Update: LeaseNode._t5_update,
        Release: LeaseNode._t6_release,
        Revoke: LeaseNode._dispatch_revoke,
    }
)
