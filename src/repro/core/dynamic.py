"""Dynamic trees: node join/leave with lease revocation (extension).

The paper's tree is static, but the aggregation frameworks it targets
(SDIMS's DHT trees, Astrolabe's zones) reconfigure as machines come and
go.  :class:`DynamicAggregationSystem` extends the sequential engine with
leaf attach/detach between requests (in quiescent states), preserving
strict consistency:

* **Why revocation is necessary.**  A lease ``u → v`` promises that ``v``'s
  cached ``aval`` covers all of ``subtree(u, v)``.  When that subtree gains
  or loses a member, the promise is void: a new machine's writes would
  never propagate (it holds no leases), and a departed machine's value
  would linger in caches forever.  The change site therefore *revokes*
  every lease it granted, and revocation cascades down the lease graph
  (each revoked node's own grants relied on the revoked coverage —
  Lemma 3.2).  Subsequent combines re-pull and re-lease through the
  ordinary protocol.
* **Cost accounting.**  Each revocation is one ``revoke`` message, counted
  in the same per-edge statistics, so reconfiguration cost is measurable
  (see the EXT-DYN benchmark).
* **What survives.**  Leases *toward* the change site from other subtrees
  are untouched (their coverage is unaffected), so reconfiguration cost is
  proportional to the revoked lease graph, not the tree.

Node ids are never reused: a removed leaf's id stays retired, and combine
values aggregate over the *live* membership only.

The engine itself is a thin driver: it subclasses
:class:`~repro.core.engine.AggregationSystem` and implements topology
changes with the runtime's attach/detach/rename primitives
(:meth:`~repro.core.runtime.NodeRuntime.add_node` /
``remove_node`` / ``rename_node`` / ``set_topology``) plus the node-level
:meth:`~repro.core.mechanism.LeaseNode.attach_neighbor` /
``detach_neighbor`` / ``rename_neighbor`` hooks.  Because transports come
from the same :class:`~repro.sim.transport.TransportConfig` factory, the
dynamic engine also runs over faulty or reliable stacks — attach/detach
under faults needs nothing extra.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.core.engine import AggregationSystem, PolicyFactory
from repro.core.policies import RWWPolicy
from repro.obs.metrics import MetricsRegistry
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.transport import TransportConfig
from repro.tree.topology import Tree
from repro.workloads.requests import Request


class DynamicAggregationSystem(AggregationSystem):
    """Sequential aggregation over a tree whose leaves may come and go.

    Starts from an initial tree; ``add_leaf(parent)`` grows a fresh node
    under ``parent`` and returns its id; ``remove_leaf(node)`` retires a
    current leaf.  Both run the revocation protocol and drain the network
    before returning, so every topology change completes in a quiescent
    state.  Requests execute exactly as in
    :class:`~repro.core.engine.AggregationSystem` (including telemetry).

    Topology changes need the reference backend's attach/detach/rename
    primitives, so ``backend="flat"`` here *falls back* to the reference
    backend instead of raising (``_backend_require``/``_backend_fallback``
    below) — callers sweeping the backend axis over mixed workloads don't
    have to special-case the dynamic engine.
    """

    _backend_require = ("dynamic",)
    _backend_fallback = True

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        trace_enabled: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        transport: Optional[TransportConfig] = None,
        seed: int = 0,
        profiler: Optional[Any] = None,
        cost_accounting: bool = False,
        backend: str = "reference",
    ) -> None:
        super().__init__(
            tree,
            op=op,
            policy_factory=policy_factory,
            trace_enabled=trace_enabled,
            metrics=metrics,
            transport=transport,
            seed=seed,
            profiler=profiler,
            cost_accounting=cost_accounting,
            backend=backend,
        )
        self._edges: Set[Tuple[int, int]] = {tuple(sorted(e)) for e in tree.edges}
        self._live: Set[int] = set(tree.nodes())

    # ------------------------------------------------------------- topology
    @property
    def live_nodes(self) -> Set[int]:
        """Ids of current members."""
        return set(self._live)

    def _set_topology(self, edges: Set[Tuple[int, int]]) -> Tree:
        """Build the internal Tree for the live membership.

        The Tree class requires dense ids 0..n-1, so the dynamic engine
        keeps a dense *view*: live external ids are mapped onto dense
        internal ids.  To keep the rest of the stack simple we instead
        maintain the invariant that external ids stay dense: removals are
        only allowed for the id-order-irrelevant leaf case and we compact
        by remapping the highest live id onto the hole.  See
        :meth:`remove_leaf` for the remap contract.
        """
        n = len(self._live)
        assert set(range(n)) == self._live, "internal id compaction broken"
        return Tree(n, sorted(edges))

    def add_leaf(self, parent: int) -> int:
        """Attach a fresh node under ``parent``; returns the new node's id.

        Revokes every lease ``parent`` granted (their coverage changed),
        cascading through the lease graph, then splices the new node in.
        """
        if parent not in self._live:
            raise ValueError(f"parent {parent} is not a live node")
        if not self.runtime.is_quiescent():
            raise RuntimeError("topology change while messages are in transit")
        # 1. Revoke the grants whose coverage is about to change.
        self.nodes[parent].revoke_granted()
        self.runtime.drain()
        # 2. Splice in the new node.
        new_id = len(self._live)
        self._live.add(new_id)
        self._edges.add(tuple(sorted((parent, new_id))))
        new_tree = self._set_topology(self._edges)
        self.runtime.set_topology(new_tree)
        self.runtime.add_node(new_id, new_tree)
        self.nodes[parent].attach_neighbor(new_id, new_tree)
        self.nodes[new_id].nbrs = new_tree.neighbors(new_id)
        return new_id

    # --------------------------------------------------------- crash/recover
    def crash_node(self, node: int):
        """Crash a live member: its traffic black-holes and its volatile
        state dies (see :meth:`NodeRuntime.crash`).  Returns the requests
        that died with it.  The member stays in the tree — remove it with
        :meth:`remove_leaf` (allowed while crashed) if it never comes back.
        """
        if node not in self._live:
            raise ValueError(f"node {node} is not a live node")
        return self.runtime.crash(node)

    def recover_node(self, node: int) -> None:
        """Recover a crashed member: reopen the wire and run the lease
        reconciliation round, then drain the resulting traffic so the
        engine returns at quiescence like every other dynamic operation."""
        if node not in self._live:
            raise ValueError(f"node {node} is not a live node")
        self.runtime.recover(node)
        self.runtime.drain()

    @property
    def crashed_nodes(self) -> Set[int]:
        """Ids of currently-crashed members."""
        return set(self.runtime.crashed)

    def remove_leaf(self, node: int) -> Dict[int, int]:
        """Retire leaf ``node``; returns the id remapping applied.

        The engine keeps ids dense, so the highest live id is renamed onto
        the vacated slot (unless the leaf *is* the highest id).  The
        returned dict maps old id -> new id for every renamed node (empty
        or a single entry).  Callers tracking external names should apply
        it to their own tables.
        """
        if node not in self._live:
            raise ValueError(f"node {node} is not live")
        if len(self._live) == 1:
            raise ValueError("cannot remove the last node")
        neighbors = self.tree.neighbors(node)
        if len(neighbors) != 1:
            raise ValueError(f"node {node} is not a leaf (degree {len(neighbors)})")
        if not self.runtime.is_quiescent():
            raise RuntimeError("topology change while messages are in transit")
        parent = neighbors[0]
        # 1. The parent's grants covered the departing leaf: revoke them.
        #    A *crashed* leaf may leave too (churn): the revoke toward it
        #    dies on the black-holed wire as a declared loss — correct,
        #    the machine is gone — while the cascade to live grantees runs
        #    normally.  The crash flag is cleared before the id compaction
        #    below so it can never dangle on the renamed survivor.
        self.nodes[parent].revoke_granted()
        self.runtime.drain()
        if node in self.runtime.crashed:
            self.runtime.crashed.discard(node)
            self.runtime.network.recover_node(node)
        # 2. Drop the leaf and its edge.
        self._edges.discard(tuple(sorted((node, parent))))
        self._live.discard(node)
        self.runtime.remove_node(node)
        self.nodes[parent].detach_neighbor(node, self.tree)  # tree updated below
        # Detaching can close a round that was stuck waiting on the departed
        # (crashed) leaf; drain the resulting responses before compaction.
        self.runtime.drain()
        # 3. Compact ids: rename the highest id onto the hole.
        remap: Dict[int, int] = {}
        highest = len(self._live)  # == max id value still expected
        if node != highest:
            remap[highest] = node
            self._rename_node(highest, node)
        new_tree = self._set_topology(self._edges)
        self.runtime.set_topology(new_tree)
        for nid, ln in self.nodes.items():
            ln.nbrs = new_tree.neighbors(nid)
        return remap

    def _rename_node(self, old: int, new: int) -> None:
        """Rename node id ``old`` to ``new`` across all state tables."""
        ln = self.runtime.rename_node(old, new)
        self._live.discard(old)
        self._live.add(new)
        self._edges = {
            tuple(sorted((new if a == old else a, new if b == old else b)))
            for a, b in self._edges
        }
        for other in self.nodes.values():
            if other is not ln:
                other.rename_neighbor(old, new)

    # ------------------------------------------------------------- requests
    def execute(self, request: Request) -> Request:
        """Execute one request to quiescence (see AggregationSystem)."""
        if request.node not in self._live:
            raise ValueError(f"request targets retired node {request.node}")
        return super().execute(request)
