"""Dynamic trees: node join/leave with lease revocation (extension).

The paper's tree is static, but the aggregation frameworks it targets
(SDIMS's DHT trees, Astrolabe's zones) reconfigure as machines come and
go.  :class:`DynamicAggregationSystem` extends the sequential engine with
leaf attach/detach between requests (in quiescent states), preserving
strict consistency:

* **Why revocation is necessary.**  A lease ``u → v`` promises that ``v``'s
  cached ``aval`` covers all of ``subtree(u, v)``.  When that subtree gains
  or loses a member, the promise is void: a new machine's writes would
  never propagate (it holds no leases), and a departed machine's value
  would linger in caches forever.  The change site therefore *revokes*
  every lease it granted, and revocation cascades down the lease graph
  (each revoked node's own grants relied on the revoked coverage —
  Lemma 3.2).  Subsequent combines re-pull and re-lease through the
  ordinary protocol.
* **Cost accounting.**  Each revocation is one ``revoke`` message, counted
  in the same per-edge statistics, so reconfiguration cost is measurable
  (see the EXT-DYN benchmark).
* **What survives.**  Leases *toward* the change site from other subtrees
  are untouched (their coverage is unaffected), so reconfiguration cost is
  proportional to the revoked lease graph, not the tree.

Node ids are never reused: a removed leaf's id stays retired, and combine
values aggregate over the *live* membership only.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.engine import PolicyFactory
from repro.core.mechanism import LeaseNode
from repro.core.rww import RWWPolicy
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.network import SynchronousNetwork
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.workloads.requests import Request


class DynamicAggregationSystem:
    """Sequential aggregation over a tree whose leaves may come and go.

    Starts from an initial tree; ``add_leaf(parent)`` grows a fresh node
    under ``parent`` and returns its id; ``remove_leaf(node)`` retires a
    current leaf.  Both run the revocation protocol and drain the network
    before returning, so every topology change completes in a quiescent
    state.  Requests execute exactly as in
    :class:`~repro.core.engine.AggregationSystem`.
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        trace_enabled: bool = False,
    ) -> None:
        self.op = op
        self.policy_factory = policy_factory
        self.trace = TraceLog(enabled=trace_enabled)
        self.stats = MessageStats()
        self._next_id = tree.n
        self._edges: Set[Tuple[int, int]] = {tuple(sorted(e)) for e in tree.edges}
        self._live: Set[int] = set(tree.nodes())
        self.tree = tree
        self.network = SynchronousNetwork(
            tree, receiver=self._receive, stats=self.stats, trace=self.trace
        )
        self.nodes: Dict[int, LeaseNode] = {}
        for i in tree.nodes():
            self.nodes[i] = self._make_node(i, tree)
        self.executed: List[Request] = []

    # ----------------------------------------------------------- plumbing
    def _make_node(self, node_id: int, tree: Tree) -> LeaseNode:
        def send(dst: int, message) -> None:
            self.network.send(node_id, dst, message)

        return LeaseNode(
            node_id, tree, self.op, self.policy_factory(), send=send, trace=self.trace
        )

    def _receive(self, src: int, dst: int, message) -> None:
        self.nodes[dst].on_message(src, message)

    # ------------------------------------------------------------- topology
    @property
    def live_nodes(self) -> Set[int]:
        """Ids of current members."""
        return set(self._live)

    def _current_tree(self) -> Tree:
        return self.tree

    def _set_topology(self, edges: Set[Tuple[int, int]]) -> Tree:
        """Build the internal Tree for the live membership.

        The Tree class requires dense ids 0..n-1, so the dynamic engine
        keeps a dense *view*: live external ids are mapped onto dense
        internal ids.  To keep the rest of the stack simple we instead
        maintain the invariant that external ids stay dense: removals are
        only allowed for the id-order-irrelevant leaf case and we compact
        by remapping the highest live id onto the hole.  See
        :meth:`remove_leaf` for the remap contract.
        """
        n = len(self._live)
        assert set(range(n)) == self._live, "internal id compaction broken"
        return Tree(n, sorted(edges))

    def add_leaf(self, parent: int) -> int:
        """Attach a fresh node under ``parent``; returns the new node's id.

        Revokes every lease ``parent`` granted (their coverage changed),
        cascading through the lease graph, then splices the new node in.
        """
        if parent not in self._live:
            raise ValueError(f"parent {parent} is not a live node")
        if not self.network.is_quiescent():
            raise RuntimeError("topology change while messages are in transit")
        # 1. Revoke the grants whose coverage is about to change.
        self.nodes[parent].revoke_granted()
        self.network.run_to_quiescence()
        # 2. Splice in the new node.
        new_id = len(self._live)
        self._live.add(new_id)
        self._edges.add(tuple(sorted((parent, new_id))))
        new_tree = self._set_topology(self._edges)
        self.tree = new_tree
        self.network.tree = new_tree
        for node in self.nodes.values():
            node.tree = new_tree
        self.nodes[new_id] = self._make_node(new_id, new_tree)
        self.nodes[parent].attach_neighbor(new_id, new_tree)
        self.nodes[new_id].nbrs = new_tree.neighbors(new_id)
        return new_id

    def remove_leaf(self, node: int) -> Dict[int, int]:
        """Retire leaf ``node``; returns the id remapping applied.

        The engine keeps ids dense, so the highest live id is renamed onto
        the vacated slot (unless the leaf *is* the highest id).  The
        returned dict maps old id -> new id for every renamed node (empty
        or a single entry).  Callers tracking external names should apply
        it to their own tables.
        """
        if node not in self._live:
            raise ValueError(f"node {node} is not live")
        if len(self._live) == 1:
            raise ValueError("cannot remove the last node")
        neighbors = self.tree.neighbors(node)
        if len(neighbors) != 1:
            raise ValueError(f"node {node} is not a leaf (degree {len(neighbors)})")
        if not self.network.is_quiescent():
            raise RuntimeError("topology change while messages are in transit")
        parent = neighbors[0]
        # 1. The parent's grants covered the departing leaf: revoke them.
        self.nodes[parent].revoke_granted()
        self.network.run_to_quiescence()
        # 2. Drop the leaf and its edge.
        self._edges.discard(tuple(sorted((node, parent))))
        self._live.discard(node)
        del self.nodes[node]
        self.nodes[parent].detach_neighbor(node, self.tree)  # tree updated below
        # 3. Compact ids: rename the highest id onto the hole.
        remap: Dict[int, int] = {}
        highest = len(self._live)  # == max id value still expected
        if node != highest:
            remap[highest] = node
            self._rename_node(highest, node)
        new_tree = self._set_topology(self._edges)
        self.tree = new_tree
        self.network.tree = new_tree
        for nid, ln in self.nodes.items():
            ln.tree = new_tree
            ln.nbrs = new_tree.neighbors(nid)
        return remap

    def _rename_node(self, old: int, new: int) -> None:
        """Rename node id ``old`` to ``new`` across all state tables."""
        ln = self.nodes.pop(old)
        ln.id = new

        def send(dst: int, message, node_id=new) -> None:
            self.network.send(node_id, dst, message)

        ln._send = send
        self.nodes[new] = ln
        self._live.discard(old)
        self._live.add(new)
        new_edges = set()
        for a, b in self._edges:
            a2 = new if a == old else a
            b2 = new if b == old else b
            new_edges.add(tuple(sorted((a2, b2))))
        self._edges = new_edges
        # Neighbor tables at the renamed node's neighbors.
        for other in self.nodes.values():
            if other is ln:
                continue
            for table in (other.taken, other.granted, other.aval, other.uaw):
                if old in table:
                    table[new] = table.pop(old)
            if old in other.snt:
                other.snt[new] = other.snt.pop(old)
            if old in other.pndg:
                other.pndg.discard(old)
                other.pndg.add(new)
            other.sntupdates = [
                ((new if t[0] == old else t[0]), t[1], t[2]) for t in other.sntupdates
            ]
            # Policy per-neighbor tables (lt/cc dicts where present).
            for attr in ("lt", "cc"):
                d = getattr(other.policy, attr, None)
                if isinstance(d, dict) and old in d:
                    d[new] = d.pop(old)

    # ------------------------------------------------------------- requests
    def execute(self, request: Request) -> Request:
        """Execute one request to quiescence (see AggregationSystem)."""
        if request.node not in self._live:
            raise ValueError(f"request targets retired node {request.node}")
        node = self.nodes[request.node]
        if request.op == "write":
            node.write(request)
        elif request.op == "combine":
            done: List[Request] = []
            node.begin_combine(request, done.append)
            self.network.run_to_quiescence()
            if not done:
                raise RuntimeError("combine did not complete at quiescence")
        else:
            raise ValueError(f"cannot execute op {request.op!r}")
        self.network.run_to_quiescence()
        self.executed.append(request)
        return request

    # ----------------------------------------------------------- invariants
    def check_quiescent_invariants(self) -> None:
        """The static engine's invariant battery, on the current topology."""
        if not self.network.is_quiescent():
            raise AssertionError("network not quiescent")
        for u, v in self.tree.directed_edges():
            if self.nodes[u].taken[v] != self.nodes[v].granted[u]:
                raise AssertionError(f"Lemma 3.1 violated on edge ({u},{v})")
        for u in self.tree.nodes():
            nu = self.nodes[u]
            for v in nu.nbrs:
                if nu.granted[v]:
                    for w in nu.nbrs:
                        if w != v and not nu.taken[w]:
                            raise AssertionError(f"Lemma 3.2 violated at {u}")
            if not nu.quiescent_state_ok():
                raise AssertionError(f"Lemma 3.4 violated at {u}")

    def lease_graph_edges(self) -> List[Tuple[int, int]]:
        """Directed granted edges in the current topology."""
        return [
            (u, v)
            for u in self.tree.nodes()
            for v in self.nodes[u].nbrs
            if self.nodes[u].granted[v]
        ]
