"""The four message types of the lease mechanism (Figure 1).

* ``probe()`` — sent toward un-leased subtrees during a combine (pull).
* ``response(x, flag)`` — answers a probe with the subtree aggregate ``x``
  and ``flag`` = whether a lease was granted alongside.
* ``update(x, id)`` — pushed along granted leases on writes; ``id`` is the
  sender-local sequence number from ``newid()``.
* ``release(S)`` — breaks a lease; ``S`` is the ``uaw`` id set the releaser
  accumulated (used by ``onrelease`` for retroactive accounting).

Messages optionally carry ``wlog`` — Section 5's ghost write-log snapshot —
when ghost instrumentation is enabled; the mechanism never branches on it,
so enabling ghosts cannot change message behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

#: Message kind strings (used by MessageStats accounting).
PROBE = "probe"
RESPONSE = "response"
UPDATE = "update"
RELEASE = "release"
REVOKE = "revoke"


@dataclass(frozen=True)
class Message:
    """Base class so transports can dispatch on ``.kind``."""

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Probe(Message):
    """A pull request for a subtree aggregate."""

    @property
    def kind(self) -> str:
        return PROBE


@dataclass(frozen=True)
class Response(Message):
    """Answer to a probe.

    Attributes
    ----------
    x:
        ``subval`` of the sender with respect to the receiver: the aggregate
        over the sender-side subtree.
    flag:
        True when the sender granted the receiver a lease with this response.
    wlog:
        Ghost write-log snapshot (Section 5), or ``None`` when ghosts are
        disabled.
    """

    x: Any
    flag: bool
    wlog: Optional[Tuple[Any, ...]] = None

    @property
    def kind(self) -> str:
        return RESPONSE


@dataclass(frozen=True)
class Update(Message):
    """Pushed aggregate refresh along a granted lease.

    Attributes
    ----------
    x:
        New ``subval`` of the sender with respect to the receiver.
    id:
        Sender-local update identifier (monotone per sender).
    wlog:
        Ghost write-log snapshot, or ``None``.
    """

    x: Any
    id: int
    wlog: Optional[Tuple[Any, ...]] = None

    @property
    def kind(self) -> str:
        return UPDATE


@dataclass(frozen=True)
class Revoke(Message):
    """Topology-change lease revocation (dynamic-tree extension).

    Sent by a granter whose coverage became invalid (a neighbor joined or
    left its side of the tree): the receiver's ``taken`` lease from the
    sender is void.  Because the receiver's own granted leases relied on
    that coverage (Lemma 3.2), revocation cascades down the lease graph.
    Not part of the paper's Figure 1; used only by
    :class:`repro.core.dynamic.DynamicAggregationSystem`.
    """

    @property
    def kind(self) -> str:
        return REVOKE


@dataclass(frozen=True)
class Release(Message):
    """Breaks the lease held by the sender from the receiver.

    Attributes
    ----------
    S:
        The sender's ``uaw`` set for the receiver: ids of updates received
        over the lease since the sender's last combine-side activity.
    """

    S: FrozenSet[int]

    @property
    def kind(self) -> str:
        return RELEASE
