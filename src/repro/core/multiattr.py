"""Multi-attribute aggregation over one tree (SDIMS-style extension).

The paper analyzes a single aggregate; its ancestor system SDIMS manages
many named *attributes* (load, free disk, alarm count, …) over one
aggregation tree, each with its own update-propagation strategy.
:class:`MultiAttributeSystem` provides that layer on top of the lease
mechanism: one independent lease state machine per attribute (so RWW
adapts per attribute × per edge — a read-hot attribute stays pushed while
a write-hot one stays pulled), plus **message batching** accounting:

When one physical event touches several attributes — a machine reporting
all its metrics at once, or a dashboard querying several aggregates — the
per-attribute protocol messages that traverse the same directed edge can
share one physical packet.  ``batched`` counters report that cost:
each (directed edge, message kind) used by at least one attribute during
the operation counts once.

The layer is pure composition: per-attribute guarantees (strict
consistency, the competitive bound of the attribute's policy) are
inherited unchanged, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.engine import AggregationSystem, PolicyFactory
from repro.core.policies import RWWPolicy
from repro.ops.monoid import AggregationOperator
from repro.sim.transport import TransportConfig
from repro.tree.topology import Tree
from repro.workloads.requests import combine as make_combine
from repro.workloads.requests import write as make_write

#: A (directed edge, message kind) slot — the unit of batched accounting.
Slot = Tuple[int, int, str]


@dataclass
class MultiOpReport:
    """Cost accounting for one multi-attribute operation.

    Attributes
    ----------
    values:
        For queries: attribute name -> (finalized) aggregate value.
    unbatched_messages:
        Sum of every attribute's own protocol messages.
    batched_messages:
        Distinct (edge, kind) slots used — the physical packet count when
        co-traversing messages share packets.
    """

    values: Dict[str, Any] = field(default_factory=dict)
    unbatched_messages: int = 0
    batched_messages: int = 0

    @property
    def batching_savings(self) -> int:
        return self.unbatched_messages - self.batched_messages


class MultiAttributeSystem:
    """Many named aggregates over one tree, one lease machine each.

    Parameters
    ----------
    tree:
        The shared aggregation tree.
    attributes:
        Mapping from attribute name to its aggregation operator.
    policy_factory:
        Lease policy per node, applied to every attribute (default RWW).
        Pass ``policies`` to override per attribute.
    policies:
        Optional per-attribute policy factories (overrides
        ``policy_factory`` for the named attributes).
    transport:
        Optional :class:`~repro.sim.transport.TransportConfig` applied to
        every attribute's engine (each gets its own stack instance, seeded
        ``seed + attribute index`` for distinct latency streams).  This is
        what lets the batching layer run over the concurrent-model
        transports — latency-ful, faulty, or reliable — not just the
        synchronous queue.
    seed:
        Base seed for per-attribute transports (simulated stacks only).
    backend:
        Execution backend for every per-attribute system (``"reference"``
        or ``"flat"``; see :func:`~repro.core.backend.build_backend`).
    """

    def __init__(
        self,
        tree: Tree,
        attributes: Mapping[str, AggregationOperator],
        policy_factory: PolicyFactory = RWWPolicy,
        policies: Optional[Mapping[str, PolicyFactory]] = None,
        transport: Optional[TransportConfig] = None,
        seed: int = 0,
        backend: str = "reference",
    ) -> None:
        if not attributes:
            raise ValueError("need at least one attribute")
        self.tree = tree
        self.operators: Dict[str, AggregationOperator] = dict(attributes)
        self.systems: Dict[str, AggregationSystem] = {}
        for index, (name, op) in enumerate(self.operators.items()):
            factory = (policies or {}).get(name, policy_factory)
            self.systems[name] = AggregationSystem(
                tree,
                op=op,
                policy_factory=factory,
                transport=transport,
                seed=seed + index,
                backend=backend,
            )
        self.total_unbatched = 0
        self.total_batched = 0

    def _check_names(self, names: Sequence[str]) -> None:
        for name in names:
            if name not in self.systems:
                raise KeyError(f"unknown attribute {name!r}; have {sorted(self.systems)}")

    def _run_op(self, ops: Sequence[Tuple[str, Callable[[AggregationSystem], Any]]]) -> MultiOpReport:
        """Run one action per named attribute; merge slot accounting."""
        report = MultiOpReport()
        slots: Set[Slot] = set()
        for name, action in ops:
            system = self.systems[name]
            before = system.stats.snapshot()
            before_total = system.stats.total
            result = action(system)
            if result is not None:
                report.values[name] = result
            report.unbatched_messages += system.stats.total - before_total
            after = system.stats.snapshot()
            for (src, dst), kinds in after.items():
                base = before.get((src, dst), {})
                for kind, count in kinds.items():
                    if count > base.get(kind, 0):
                        slots.add((src, dst, kind))
        report.batched_messages = len(slots)
        self.total_unbatched += report.unbatched_messages
        self.total_batched += report.batched_messages
        return report

    # ------------------------------------------------------------ operations
    def write_many(self, node: int, values: Mapping[str, Any]) -> MultiOpReport:
        """One machine updates several attributes atomically."""
        self._check_names(list(values))

        def writer(value):
            return lambda system: system.execute(make_write(node, value)) and None

        return self._run_op([(name, writer(value)) for name, value in values.items()])

    def write(self, node: int, name: str, value: Any) -> MultiOpReport:
        """Update a single attribute."""
        return self.write_many(node, {name: value})

    def query(self, node: int, names: Optional[Sequence[str]] = None) -> MultiOpReport:
        """Read several attributes' global aggregates at ``node``.

        Values are finalized through each operator (so ``AVERAGE`` returns
        the mean, not the (sum, count) pair).
        """
        use = list(names) if names is not None else sorted(self.systems)
        self._check_names(use)

        def reader(name):
            op = self.operators[name]

            def action(system: AggregationSystem):
                request = system.execute(make_combine(node))
                return op.finalize(request.retval)

            return action

        return self._run_op([(name, reader(name)) for name in use])

    # ------------------------------------------------------------ inspection
    def attribute_messages(self, name: str) -> int:
        """Messages attributable to one attribute so far."""
        self._check_names([name])
        return self.systems[name].stats.total

    def lease_graph(self, name: str) -> List[Tuple[int, int]]:
        """The named attribute's current lease graph."""
        self._check_names([name])
        return self.systems[name].lease_graph_edges()

    def check_invariants(self) -> None:
        """Quiescent invariants for every attribute's state machine."""
        for system in self.systems.values():
            system.check_quiescent_invariants()
