"""Lease policies — the underlined stubs of Figure 1 and every implementation.

A lease-based aggregation *algorithm* is the Figure-1 mechanism plus a
policy deciding when to set and break leases.  This module is the single
home of the policy layer:

* :class:`LeasePolicy` — the stub interface the mechanism calls into;
* :class:`RWWPolicy` — the paper's online policy **RWW** (Section 4,
  Figure 3), a ``(1, 2)``-algorithm;
* :class:`ABPolicy` — the generic ``(a, b)``-algorithm family (Section 4.2);
* :class:`AlwaysLeasePolicy` / :class:`NeverLeasePolicy` — the Astrolabe-like
  and MDS-2-like extremes;
* :class:`WriteOncePolicy` — the ``(1, 1)``-algorithm;
* :class:`HeterogeneousABPolicy` — per-neighbor ``(a, b)`` parameters
  (SDIMS-style per-edge tuning).

The mechanism invokes the policy at exactly the points marked in the
pseudocode:

===================  =====================================================
Stub                 Called from
===================  =====================================================
``on_combine``       ``T1`` line 1, before pending/lease checks
``probe_rcvd``       ``T3`` line 1
``response_rcvd``    ``T4`` line 1
``update_rcvd``      ``T5`` line 1
``release_rcvd``     ``T6`` line 1
``set_lease``        ``sendresponse``, when all other neighbors are taken
``break_lease``      ``forwardrelease``, per taken neighbor eligible for
                     release
``release_policy``   ``onrelease``, per taken neighbor after the ``uaw``
                     window is trimmed
===================  =====================================================

Policies receive the :class:`~repro.core.mechanism.LeaseNode` itself and may
read its state (``tkn()``, ``grntd()``, ``uaw`` …) but must mutate only
their own bookkeeping — the mechanism owns the protocol state.

.. note::
   The historical ``repro.core.policy`` / ``repro.core.rww`` aliases were
   shims for one release and have been removed; the protolint rule PL401
   flags any import of them with a fix hint pointing here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode


class LeasePolicy:
    """Base policy: never grants, never breaks (both overridable).

    The default is intentionally inert so subclasses opt in to behaviour;
    an inert policy degenerates to MDS-2-style pull-on-every-read.
    """

    def bind(self, node: "LeaseNode") -> None:
        """Called once when the owning node is constructed."""

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        """A combine request was initiated at ``node``."""

    def on_write(self, node: "LeaseNode") -> None:
        """A write request was executed at ``node``.

        Figure 1 has no policy stub in ``T2``; RWW does not need one.  This
        extension hook exists so generic ``(a, b)``-policies with ``a > 1``
        can observe local writes when counting *consecutive* combines; the
        default is a no-op, so paper-faithful policies are unaffected.
        """

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received a probe from neighbor ``w``."""

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        """``node`` received a response (lease granted iff ``flag``) from ``w``."""

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received an update from ``w``."""

    def release_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received a release from ``w``."""

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        """Grant a lease to ``w`` alongside the response being sent?"""
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        """Break the lease ``node`` holds from ``v`` (send a release)?"""
        return False

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        """Retroactive accounting for neighbor ``v`` inside ``onrelease``,
        after ``node.uaw[v]`` was trimmed to the relevant window."""

    def on_scoped_combine(self, node: "LeaseNode", v: int) -> None:
        """A scoped combine toward neighbor ``v`` was initiated at ``node``
        (extension; see :meth:`LeaseNode.begin_scoped_combine`).  The
        default treats it as combine-side activity for that one edge only.
        """

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        """A new neighbor ``v`` appeared (dynamic trees).  Policies with
        per-neighbor state should create a fresh entry; state for other
        neighbors must be preserved."""

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        """Neighbor ``v`` left (dynamic trees); drop its entry."""


#: The lease timer's reset value: RWW tolerates this many consecutive writes.
RWW_BREAK_AFTER = 2


class RWWPolicy(LeasePolicy):
    """RWW — the paper's online lease policy (Section 4, Figure 3).

    RWW ("Read, Write, Write") sets the lease from ``u`` to ``v`` during the
    execution of a combine request in ``subtree(v, u)``, and breaks it after
    two consecutive write requests in ``subtree(u, v)`` — a
    ``(1, 2)``-algorithm (Corollary 4.1).

    Figure 3's policy table (reconstructed from Sections 4.1–4.2 and the
    invariant ``I4`` of Lemma 4.2; the figure image is absent from the text):

    ==================  =======================================================
    ``oncombine``       for each taken neighbor ``v``: ``lt[v] := 2``
    ``probercvd(w)``    for each taken neighbor ``v != w``: ``lt[v] := 2``
    ``responsercvd``    if the lease was granted (``flag``): ``lt[w] := 2``
    ``updatercvd(w)``   if no *other* lease is granted: ``lt[w] -= 1``
    ``releasercvd``     no action
    ``setlease``        always **true**
    ``breaklease(v)``   true iff ``lt[v] == 0``
    ``releasepolicy``   ``lt[v] := lt[v] - |uaw[v]|`` (retroactive accounting)
    ==================  =======================================================

    ``lt[v]`` is the *lease timer*: the number of further writes the lease
    from ``v`` survives.  While this node is itself a relay (some other
    neighbor holds a granted lease), updates are forwarded without
    decrementing ``lt`` — the downstream lease still needs them — and the
    ids pile up in ``uaw[v]``.  When the downstream lease goes away,
    ``onrelease`` trims ``uaw[v]`` to the last two relevant updates and
    ``releasepolicy`` charges them against ``lt[v]``, restoring the
    invariant ``lt[v] + |uaw[v]| = 2`` (Lemma 4.2's ``I4``).
    """

    def __init__(self) -> None:
        self.lt: Dict[int, int] = {}

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        for v in node.tkn():
            self.lt[v] = RWW_BREAK_AFTER

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        for v in node.tkn():
            if v != w:
                self.lt[v] = RWW_BREAK_AFTER

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = RWW_BREAK_AFTER

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return True

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    def on_scoped_combine(self, node: "LeaseNode", v: int) -> None:
        # A scoped read refreshes only the one lease it uses.
        if node.taken[v]:
            self.lt[v] = RWW_BREAK_AFTER

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)


class ABPolicy(LeasePolicy):
    """Generic ``(a, b)``-algorithm (Section 4.2).

    Grant the lease after ``a`` consecutive combine requests in
    ``σ(u, v)``, break it after ``b`` consecutive write requests.
    ``ABPolicy(1, 2)`` behaves exactly like RWW (asserted by tests).  For
    ``a > 1`` the combine counter is driven by the events a node can
    actually observe (probes from the neighbor; resets on local writes and
    on updates arriving from its own side), which is exact on the 2-node
    adversary tree of Theorem 3 and best-effort on larger trees — the
    paper defines the class behaviourally, and only uses it on the 2-node
    tree.

    Parameters
    ----------
    a:
        Consecutive combine requests in ``σ(u, v)`` before the lease is
        granted (``a >= 1``).
    b:
        Consecutive write requests in ``σ(u, v)`` before the lease is
        broken (``b >= 1``).
    """

    def __init__(self, a: int, b: int) -> None:
        if a < 1 or b < 1:
            raise ValueError(f"need a >= 1 and b >= 1, got a={a}, b={b}")
        self.a = a
        self.b = b
        self.lt: Dict[int, int] = {}
        self.cc: Dict[int, int] = {}

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}
        self.cc = {v: 0 for v in node.nbrs}

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        # A combine here refreshes every taken lease's write tolerance.
        for v in node.tkn():
            self.lt[v] = self.b

    def on_write(self, node: "LeaseNode") -> None:
        # A local write is a write in σ(u, v) for every neighbor v: it
        # interrupts any consecutive-combine streak.
        for v in node.nbrs:
            self.cc[v] = 0

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        # A probe from w is a combine in subtree(w, u): it counts toward
        # granting w a lease and refreshes the other taken leases.
        self.cc[w] += 1
        for v in node.tkn():
            if v != w:
                self.lt[v] = self.b
                self.cc[v] = 0

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = self.b

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1
        # An update from w is a write on w's side: for every other neighbor
        # v it is a write in σ(u, v), breaking v's combine streak.
        for v in node.nbrs:
            if v != w:
                self.cc[v] = 0

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        if self.cc[w] >= self.a:
            self.cc[w] = 0
            return True
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0
        self.cc[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)
        self.cc.pop(v, None)


class AlwaysLeasePolicy(LeasePolicy):
    """Grant on first combine, never break — Astrolabe-like after warm-up.

    The ``(1, ∞)``-algorithm: after warm-up every write floods the tree.
    """

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return True

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return False


class NeverLeasePolicy(LeasePolicy):
    """Never grant a lease — MDS-2-like pull-on-every-read.

    Every combine pulls from the whole tree; writes are free.
    """

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        # Unreachable in practice: no lease is ever taken without a grant.
        return True


class WriteOncePolicy(ABPolicy):
    """The ``(1, 1)``-algorithm: break a lease on the first write under it."""

    def __init__(self) -> None:
        super().__init__(1, 1)


class HeterogeneousABPolicy(LeasePolicy):
    """Per-neighbor (a, b) parameters — SDIMS-style per-edge tuning.

    SDIMS exposes update-propagation aggressiveness as a per-attribute,
    per-level knob; the analogous per-*edge* knob here assigns each
    neighbor its own grant threshold ``a`` and break tolerance ``b``
    (falling back to ``default``).  A node can thus treat a read-hot
    subtree with ``(1, 8)`` (push eagerly, tolerate writes) and a
    write-hot one with ``(2, 1)`` (grant reluctantly, break fast).

    Parameters
    ----------
    params:
        Mapping neighbor id -> (a, b).
    default:
        (a, b) for neighbors not in ``params`` (default RWW's (1, 2)).
    """

    def __init__(self, params: "dict[int, tuple[int, int]]" = None,
                 default: "tuple[int, int]" = (1, 2)) -> None:
        self.params = dict(params or {})
        self.default = tuple(default)
        for a, b in list(self.params.values()) + [self.default]:
            if a < 1 or b < 1:
                raise ValueError(f"need a >= 1 and b >= 1, got ({a}, {b})")
        self.lt: Dict[int, int] = {}
        self.cc: Dict[int, int] = {}

    def _ab(self, v: int) -> "tuple[int, int]":
        return self.params.get(v, self.default)

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}
        self.cc = {v: 0 for v in node.nbrs}

    def on_combine(self, node: "LeaseNode") -> None:
        for v in node.tkn():
            self.lt[v] = self._ab(v)[1]

    def on_write(self, node: "LeaseNode") -> None:
        for v in node.nbrs:
            self.cc[v] = 0

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        self.cc[w] += 1
        for v in node.tkn():
            if v != w:
                self.lt[v] = self._ab(v)[1]
                self.cc[v] = 0

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = self._ab(w)[1]

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1
        for v in node.nbrs:
            if v != w:
                self.cc[v] = 0

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        if self.cc[w] >= self._ab(w)[0]:
            self.cc[w] = 0
            return True
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0
        self.cc[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)
        self.cc.pop(v, None)


__all__ = [
    "LeasePolicy",
    "RWWPolicy",
    "RWW_BREAK_AFTER",
    "ABPolicy",
    "AlwaysLeasePolicy",
    "NeverLeasePolicy",
    "WriteOncePolicy",
    "HeterogeneousABPolicy",
]
