"""The wider lease-policy family around RWW.

* :class:`ABPolicy` — a generic ``(a, b)``-algorithm (Section 4.2): grant the
  lease after ``a`` consecutive combine requests in ``σ(u, v)``, break it
  after ``b`` consecutive write requests.  ``ABPolicy(1, 2)`` behaves exactly
  like RWW (asserted by tests).  For ``a > 1`` the combine counter is driven
  by the events a node can actually observe (probes from the neighbor;
  resets on local writes and on updates arriving from its own side), which
  is exact on the 2-node adversary tree of Theorem 3 and best-effort on
  larger trees — the paper defines the class behaviourally, and only uses
  it on the 2-node tree.
* :class:`AlwaysLeasePolicy` — ``(1, ∞)``: grant on first combine, never
  break.  After warm-up every write floods the tree: Astrolabe-like
  behaviour inside the lease mechanism.
* :class:`NeverLeasePolicy` — never grant: every combine pulls from the
  whole tree, writes are free.  MDS-2-like behaviour.
* :class:`WriteOncePolicy` — ``(1, 1)``: break on the first write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.policy import LeasePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode


class ABPolicy(LeasePolicy):
    """Generic ``(a, b)``-algorithm.

    Parameters
    ----------
    a:
        Consecutive combine requests in ``σ(u, v)`` before the lease is
        granted (``a >= 1``).
    b:
        Consecutive write requests in ``σ(u, v)`` before the lease is
        broken (``b >= 1``).
    """

    def __init__(self, a: int, b: int) -> None:
        if a < 1 or b < 1:
            raise ValueError(f"need a >= 1 and b >= 1, got a={a}, b={b}")
        self.a = a
        self.b = b
        self.lt: Dict[int, int] = {}
        self.cc: Dict[int, int] = {}

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}
        self.cc = {v: 0 for v in node.nbrs}

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        # A combine here refreshes every taken lease's write tolerance.
        for v in node.tkn():
            self.lt[v] = self.b

    def on_write(self, node: "LeaseNode") -> None:
        # A local write is a write in σ(u, v) for every neighbor v: it
        # interrupts any consecutive-combine streak.
        for v in node.nbrs:
            self.cc[v] = 0

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        # A probe from w is a combine in subtree(w, u): it counts toward
        # granting w a lease and refreshes the other taken leases.
        self.cc[w] += 1
        for v in node.tkn():
            if v != w:
                self.lt[v] = self.b
                self.cc[v] = 0

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = self.b

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1
        # An update from w is a write on w's side: for every other neighbor
        # v it is a write in σ(u, v), breaking v's combine streak.
        for v in node.nbrs:
            if v != w:
                self.cc[v] = 0

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        if self.cc[w] >= self.a:
            self.cc[w] = 0
            return True
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0
        self.cc[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)
        self.cc.pop(v, None)


class AlwaysLeasePolicy(LeasePolicy):
    """Grant on first combine, never break — Astrolabe-like after warm-up."""

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return True

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return False


class NeverLeasePolicy(LeasePolicy):
    """Never grant a lease — MDS-2-like pull-on-every-read."""

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        # Unreachable in practice: no lease is ever taken without a grant.
        return True


class WriteOncePolicy(ABPolicy):
    """The ``(1, 1)``-algorithm: break a lease on the first write under it."""

    def __init__(self) -> None:
        super().__init__(1, 1)


class HeterogeneousABPolicy(LeasePolicy):
    """Per-neighbor (a, b) parameters — SDIMS-style per-edge tuning.

    SDIMS exposes update-propagation aggressiveness as a per-attribute,
    per-level knob; the analogous per-*edge* knob here assigns each
    neighbor its own grant threshold ``a`` and break tolerance ``b``
    (falling back to ``default``).  A node can thus treat a read-hot
    subtree with ``(1, 8)`` (push eagerly, tolerate writes) and a
    write-hot one with ``(2, 1)`` (grant reluctantly, break fast).

    Parameters
    ----------
    params:
        Mapping neighbor id -> (a, b).
    default:
        (a, b) for neighbors not in ``params`` (default RWW's (1, 2)).
    """

    def __init__(self, params: "dict[int, tuple[int, int]]" = None,
                 default: "tuple[int, int]" = (1, 2)) -> None:
        self.params = dict(params or {})
        self.default = tuple(default)
        for a, b in list(self.params.values()) + [self.default]:
            if a < 1 or b < 1:
                raise ValueError(f"need a >= 1 and b >= 1, got ({a}, {b})")
        self.lt: Dict[int, int] = {}
        self.cc: Dict[int, int] = {}

    def _ab(self, v: int) -> "tuple[int, int]":
        return self.params.get(v, self.default)

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}
        self.cc = {v: 0 for v in node.nbrs}

    def on_combine(self, node: "LeaseNode") -> None:
        for v in node.tkn():
            self.lt[v] = self._ab(v)[1]

    def on_write(self, node: "LeaseNode") -> None:
        for v in node.nbrs:
            self.cc[v] = 0

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        self.cc[w] += 1
        for v in node.tkn():
            if v != w:
                self.lt[v] = self._ab(v)[1]
                self.cc[v] = 0

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = self._ab(w)[1]

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1
        for v in node.nbrs:
            if v != w:
                self.cc[v] = 0

    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        if self.cc[w] >= self._ab(w)[0]:
            self.cc[w] = 0
            return True
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0
        self.cc[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)
        self.cc.pop(v, None)
