"""The lease-policy interface — the underlined stubs of Figure 1.

A lease-based aggregation *algorithm* is the Figure-1 mechanism plus a
policy deciding when to set and break leases.  The mechanism invokes the
policy at exactly the points marked in the pseudocode:

===================  =====================================================
Stub                 Called from
===================  =====================================================
``on_combine``       ``T1`` line 1, before pending/lease checks
``probe_rcvd``       ``T3`` line 1
``response_rcvd``    ``T4`` line 1
``update_rcvd``      ``T5`` line 1
``release_rcvd``     ``T6`` line 1
``set_lease``        ``sendresponse``, when all other neighbors are taken
``break_lease``      ``forwardrelease``, per taken neighbor eligible for
                     release
``release_policy``   ``onrelease``, per taken neighbor after the ``uaw``
                     window is trimmed
===================  =====================================================

Policies receive the :class:`~repro.core.mechanism.LeaseNode` itself and may
read its state (``tkn()``, ``grntd()``, ``uaw`` …) but must mutate only
their own bookkeeping — the mechanism owns the protocol state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode


class LeasePolicy:
    """Base policy: never grants, never breaks (both overridable).

    The default is intentionally inert so subclasses opt in to behaviour;
    an inert policy degenerates to MDS-2-style pull-on-every-read.
    """

    def bind(self, node: "LeaseNode") -> None:
        """Called once when the owning node is constructed."""

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        """A combine request was initiated at ``node``."""

    def on_write(self, node: "LeaseNode") -> None:
        """A write request was executed at ``node``.

        Figure 1 has no policy stub in ``T2``; RWW does not need one.  This
        extension hook exists so generic ``(a, b)``-policies with ``a > 1``
        can observe local writes when counting *consecutive* combines; the
        default is a no-op, so paper-faithful policies are unaffected.
        """

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received a probe from neighbor ``w``."""

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        """``node`` received a response (lease granted iff ``flag``) from ``w``."""

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received an update from ``w``."""

    def release_rcvd(self, node: "LeaseNode", w: int) -> None:
        """``node`` received a release from ``w``."""

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        """Grant a lease to ``w`` alongside the response being sent?"""
        return False

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        """Break the lease ``node`` holds from ``v`` (send a release)?"""
        return False

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        """Retroactive accounting for neighbor ``v`` inside ``onrelease``,
        after ``node.uaw[v]`` was trimmed to the relevant window."""

    def on_scoped_combine(self, node: "LeaseNode", v: int) -> None:
        """A scoped combine toward neighbor ``v`` was initiated at ``node``
        (extension; see :meth:`LeaseNode.begin_scoped_combine`).  The
        default treats it as combine-side activity for that one edge only.
        """

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        """A new neighbor ``v`` appeared (dynamic trees).  Policies with
        per-neighbor state should create a fresh entry; state for other
        neighbors must be preserved."""

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        """Neighbor ``v`` left (dynamic trees); drop its entry."""
