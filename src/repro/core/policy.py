"""Deprecated alias of :mod:`repro.core.policies`.

The policy layer (interface and implementations) now lives in one module,
``repro.core.policies``.  This shim re-exports :class:`LeasePolicy` so
existing ``from repro.core.policy import LeasePolicy`` imports keep
working for one release; update imports to ``repro.core.policies``.
"""

from __future__ import annotations

from repro.core.policies import LeasePolicy

__all__ = ["LeasePolicy"]
