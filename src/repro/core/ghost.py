"""Ghost-log instrumentation for the causal-consistency analysis (Section 5).

Figure 6 augments the mechanism with *ghost actions*: every node keeps a
request log ``u.log`` (its own writes and gathers plus writes learned from
messages); ``update`` and ``response`` messages piggyback the sender's write
log ``wlog``; the receiver appends the unseen suffix (``log := log .
(wlog_w − log)``).  A *gather* request is the analysis-side twin of a
combine: instead of the aggregate value it records ``recentwrites(u.log, q)``
— for every node, the (node, index) of the most recent write known at the
moment the combine returned.

:class:`GhostLog` implements all of this.  It is pure instrumentation: the
mechanism never branches on ghost state, so enabling it cannot change
message behaviour (tests assert this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.workloads.requests import GATHER, WRITE, Request

#: recentwrites maps every node id to the index of its most recent write
#: in the log (or -1 when the log has no write at that node).
RecentWrites = Dict[int, int]


class GhostLog:
    """Per-node ghost state: ``log``, ``wlog`` and their derived views.

    Write requests are identified by ``(node, index)`` — unique because a
    node's completed-request counter is monotone — which makes the
    "append the unseen suffix" merge well-defined across snapshots.
    """

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.log: List[Request] = []
        self.wlog: List[Request] = []
        self._writes_seen: Set[Tuple[int, int]] = set()
        self._recent: Dict[int, int] = {}

    # ------------------------------------------------------------ mutations
    def append_write(self, request: Request) -> None:
        """T2's ghost action: append this node's own write to the log."""
        if request.op != WRITE:
            raise ValueError(f"append_write needs a write, got {request.op}")
        key = (request.node, request.index)
        if key in self._writes_seen:
            raise ValueError(f"duplicate write identity {key}")
        self.log.append(request)
        self.wlog.append(request)
        self._writes_seen.add(key)
        self._recent[request.node] = request.index

    def append_gather(self, combine_request: Request) -> Request:
        """T1/T4's ghost action: record the gather twin of a returning combine.

        Returns the gather request (same node and index as the combine,
        ``retval = recentwrites(u.log, q)``).
        """
        gather = Request(
            node=combine_request.node,
            op=GATHER,
            retval=self.recentwrites(),
            index=combine_request.index,
            initiated_at=combine_request.initiated_at,
            completed_at=combine_request.completed_at,
        )
        self.log.append(gather)
        return gather

    def merge(self, wlog_snapshot: Iterable[Request]) -> int:
        """T4/T5's ghost action: ``log := log . (wlog_w − log)``.

        Appends, in snapshot order, every write not already present.
        Returns how many writes were appended.
        """
        added = 0
        for q in wlog_snapshot:
            key = (q.node, q.index)
            if key not in self._writes_seen:
                self.log.append(q)
                self.wlog.append(q)
                self._writes_seen.add(key)
                self._recent[q.node] = q.index
                added += 1
        return added

    # --------------------------------------------------------------- queries
    def wlog_snapshot(self) -> Tuple[Request, ...]:
        """The write log as an immutable snapshot (piggybacked on messages)."""
        return tuple(self.wlog)

    def recentwrites(self) -> RecentWrites:
        """``recentwrites(u.log, q)`` for a ``q`` appended right now:
        node -> index of its most recent write in the log, -1 if none."""
        return {v: self._recent.get(v, -1) for v in range(self.n_nodes)}

    def contains_write(self, node: int, index: int) -> bool:
        """Has the write identified by ``(node, index)`` been merged?"""
        return (node, index) in self._writes_seen

    def __len__(self) -> int:
        return len(self.log)


def build_gwlog(log: Iterable[Request]) -> List[Request]:
    """Section 5.3's ``u.gwlog``: the log with gathers kept as gathers.

    Our :class:`GhostLog` already stores gathers (not combines) in ``log``,
    so this is a validation pass returning a gather-write copy.
    """
    out: List[Request] = []
    for q in log:
        if q.op not in (WRITE, GATHER):
            raise ValueError(f"log contains a non-gather-write request: {q.op}")
        out.append(q)
    return out


def extend_with_missing_writes(
    base: List[Request],
    other_wlogs: Iterable[Iterable[Request]],
) -> List[Request]:
    """Section 5.3's ``u.gwlog'`` construction: for each other node ``v``,
    append ``v.wlog − current`` to the end, in order.

    Produces a sequence containing every write in the system exactly once
    while preserving ``base``'s prefix.
    """
    seen: Set[Tuple[int, int]] = set()
    out: List[Request] = []
    for q in base:
        if q.op == WRITE:
            key = (q.node, q.index)
            if key in seen:
                continue
            seen.add(key)
        out.append(q)
    for wlog in other_wlogs:
        for q in wlog:
            if q.op != WRITE:
                raise ValueError("wlog must contain writes only")
            key = (q.node, q.index)
            if key not in seen:
                seen.add(key)
                out.append(q)
    return out
