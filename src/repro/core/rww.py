"""Deprecated alias of :mod:`repro.core.policies`.

The RWW policy now lives alongside the rest of the policy family in
``repro.core.policies``.  This shim re-exports :class:`RWWPolicy` and
:data:`RWW_BREAK_AFTER` so existing ``from repro.core.rww import ...``
imports keep working for one release; update imports to
``repro.core.policies``.
"""

from __future__ import annotations

from repro.core.policies import RWW_BREAK_AFTER, RWWPolicy

__all__ = ["RWWPolicy", "RWW_BREAK_AFTER"]
