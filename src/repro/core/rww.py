"""RWW — the paper's online lease policy (Section 4, Figure 3).

RWW ("Read, Write, Write") sets the lease from ``u`` to ``v`` during the
execution of a combine request in ``subtree(v, u)``, and breaks it after two
consecutive write requests in ``subtree(u, v)`` — a ``(1, 2)``-algorithm
(Corollary 4.1).

Figure 3's policy table (reconstructed from Sections 4.1–4.2 and the
invariant ``I4`` of Lemma 4.2; the figure image is absent from the text):

==================  =======================================================
``oncombine``       for each taken neighbor ``v``: ``lt[v] := 2``
``probercvd(w)``    for each taken neighbor ``v != w``: ``lt[v] := 2``
``responsercvd``    if the lease was granted (``flag``): ``lt[w] := 2``
``updatercvd(w)``   if no *other* lease is granted: ``lt[w] -= 1``
``releasercvd``     no action
``setlease``        always **true**
``breaklease(v)``   true iff ``lt[v] == 0``
``releasepolicy``   ``lt[v] := lt[v] - |uaw[v]|`` (retroactive accounting)
==================  =======================================================

``lt[v]`` is the *lease timer*: the number of further writes the lease from
``v`` survives.  While this node is itself a relay (some other neighbor holds
a granted lease), updates are forwarded without decrementing ``lt`` — the
downstream lease still needs them — and the ids pile up in ``uaw[v]``.  When
the downstream lease goes away, ``onrelease`` trims ``uaw[v]`` to the last
two relevant updates and ``releasepolicy`` charges them against ``lt[v]``,
restoring the invariant ``lt[v] + |uaw[v]| = 2`` (Lemma 4.2's ``I4``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.policy import LeasePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode

#: The lease timer's reset value: RWW tolerates this many consecutive writes.
RWW_BREAK_AFTER = 2


class RWWPolicy(LeasePolicy):
    """The RWW policy: grant on first combine, break after two writes."""

    def __init__(self) -> None:
        self.lt: Dict[int, int] = {}

    def bind(self, node: "LeaseNode") -> None:
        self.lt = {v: 0 for v in node.nbrs}

    # ------------------------------------------------------- event callbacks
    def on_combine(self, node: "LeaseNode") -> None:
        for v in node.tkn():
            self.lt[v] = RWW_BREAK_AFTER

    def probe_rcvd(self, node: "LeaseNode", w: int) -> None:
        for v in node.tkn():
            if v != w:
                self.lt[v] = RWW_BREAK_AFTER

    def response_rcvd(self, node: "LeaseNode", flag: bool, w: int) -> None:
        if flag:
            self.lt[w] = RWW_BREAK_AFTER

    def update_rcvd(self, node: "LeaseNode", w: int) -> None:
        if node.isgoodforrelease(w):
            self.lt[w] -= 1

    # ------------------------------------------------------------- decisions
    def set_lease(self, node: "LeaseNode", w: int) -> bool:
        return True

    def break_lease(self, node: "LeaseNode", v: int) -> bool:
        return self.lt[v] <= 0

    def release_policy(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = self.lt[v] - len(node.uaw[v])

    def on_scoped_combine(self, node: "LeaseNode", v: int) -> None:
        # A scoped read refreshes only the one lease it uses.
        if node.taken[v]:
            self.lt[v] = RWW_BREAK_AFTER

    # -------------------------------------------- dynamic-tree extension
    def neighbor_attached(self, node: "LeaseNode", v: int) -> None:
        self.lt[v] = 0

    def neighbor_detached(self, node: "LeaseNode", v: int) -> None:
        self.lt.pop(v, None)
