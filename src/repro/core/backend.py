"""The execution-backend seam: protocol, shared telemetry, and factory.

PR 3 gave the repo one declarative assembly point for *transports*
(:func:`repro.sim.transport.build_transport`); this module is the same
seam one layer up, for *execution backends*.  A backend owns the protocol
state of every node plus the in-flight message queue and exposes the
driving surface the engines
(:class:`~repro.core.engine.AggregationSystem` and friends) need:

=====================  ====================================================
``submit_write(q)``    initiate a write request (T2) — no draining
``submit_combine(...)``initiate a (scoped) combine (T1) — no draining
``drain()``            run the transport to quiescence
``is_quiescent()``     condition (2) of Section 2
``state_snapshot()``   canonical hashable state (model checker)
``fork()``             independent deep copy (model checker)
``check_quiescent_invariants()``  Lemmas 3.1 / 3.2 / 3.4
``lease_graph_edges()``the lease graph G(Q) of Section 3.2
``nodes``              node id -> node object (or view) for inspection
=====================  ====================================================

Two backends implement it:

* ``reference`` — :class:`~repro.core.runtime.NodeRuntime`: one
  :class:`~repro.core.mechanism.LeaseNode` object per node, one message
  object per send, every transport stack, dynamic topology, recovery.
  The semantics oracle.
* ``flat`` — :class:`~repro.flat.runtime.FlatRuntime`: per-node/per-edge
  protocol state in integer-indexed arrays, interned message structs and
  batched delivery/accounting.  Synchronous transport only, static
  topology; equivalence with the reference backend is pinned by the
  golden workloads and the runtime matrix (see ``tests/
  test_flat_equivalence.py``).

:func:`build_backend` is the single factory; engines select a backend by
name exactly like they select a transport by config.  When the flat
backend cannot host a configuration (simulated transport, custom node
class, unflattenable policy, dynamic topology) it raises
:class:`BackendUnsupported` — or, with ``fallback=True``, the factory
silently builds the reference backend instead (the dynamic engine's
behavior).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.monitors import expected_probe_edges
from repro.obs.spans import RequestSpan, probe_fanout_from_events
from repro.workloads.requests import COMBINE, WRITE, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mechanism import LeaseNode

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendUnsupported",
    "RuntimeTelemetry",
    "build_backend",
]

#: The selectable backend names, in preference order for diagnostics.
BACKENDS = ("reference", "flat")


class BackendUnsupported(RuntimeError):
    """The requested backend cannot host this configuration.

    Raised by :func:`build_backend` (and by
    :class:`~repro.flat.runtime.FlatRuntime` itself) when the flat
    backend is asked for something only the reference backend provides —
    a simulated transport stack, a custom node class, an unflattenable
    policy, recovery management, or dynamic topology changes.
    """


@runtime_checkable
class Backend(Protocol):
    """Structural type of an execution backend (see module doc).

    The engines drive this surface only; everything else
    (``nodes`` views, ``network`` hooks for the model checker, crash /
    recover) is shared duck-typed convention pinned by the backend
    equivalence tests.
    """

    tree: Any
    op: Any
    trace: Any
    metrics: Any
    spans: List[RequestSpan]
    stats: Any
    crashed: set

    # ------------------------------------------------------------- driving
    def submit_write(self, request: Request) -> None: ...

    def submit_combine(
        self, request: Request, on_complete: Callable[[Request], None]
    ) -> None: ...

    def drain(self) -> None: ...

    def is_quiescent(self) -> bool: ...

    # ------------------------------------------------------- verification
    def state_snapshot(self) -> Tuple[Any, ...]: ...

    def fork(self) -> "Backend": ...

    def check_quiescent_invariants(self) -> None: ...

    def lease_graph_edges(self) -> List[tuple]: ...


class RuntimeTelemetry:
    """Span/metrics/trace bookkeeping shared by every backend.

    Extracted from the historical ``NodeRuntime`` so the flat backend
    emits byte-identical telemetry from its batch boundaries: spans are
    built from the same goodput ledger diffs, the metrics bridge sees the
    same typed events, and the cost meter is fed at the same initiation
    points.  Subclasses provide ``trace``, ``metrics``, ``spans``,
    ``stats``, ``cost_meter``, ``now`` and ``nodes``.
    """

    trace: Any
    metrics: Any
    spans: List[RequestSpan]
    stats: Any
    cost_meter: Any

    def emit_request_begin(
        self, req_id: int, request: Request, overlapped: bool = False
    ) -> None:
        """Emit the ``write_begin`` / ``combine_begin`` event for a request.

        Unscoped combines initiated at quiescence are stamped with the
        expected probe frontier (Lemma 3.3) so the live monitors can
        check the fan-out; overlapped initiations skip the stamp (the
        frontier is only defined in quiescent states).

        Also the cost meter's feed point: initiations arrive here in
        order, which is exactly the prefix ``σ`` the per-edge DP runs on.
        """
        if self.cost_meter is not None:
            self.cost_meter.observe(request)
        if request.op == WRITE:
            if self.trace.enabled:
                self.trace.emit(self.now, "write_begin", request.node, req=req_id)
        elif request.op == COMBINE and self.trace.enabled:
            detail: Dict[str, Any] = {"req": req_id}
            if request.scope is not None:
                detail["scope"] = request.scope
            elif not overlapped:
                detail["expected_probes"] = [
                    list(e)
                    for e in sorted(expected_probe_edges(self.nodes, request.node))
                ]
            self.trace.emit(self.now, "combine_begin", request.node, **detail)

    def observe_span(self, span: RequestSpan) -> None:
        """Record one completed span: spans list, metrics, trace event.

        The trace detail is built by
        :meth:`~repro.obs.spans.RequestSpan.to_event_detail`, which
        excludes the redundant ``node`` field without mutating any dict a
        caller might also hold (the event's own ``node`` field carries it).

        The per-(node, op) instruments are memoized on the telemetry
        instance: registry lookups canonicalize a label dict per call,
        which is measurable on the sequential engine's per-request path.
        """
        self.spans.append(span)
        cache = self.__dict__.get("_span_instruments")
        if cache is None:
            cache = self.__dict__["_span_instruments"] = {}
        key = (span.node, span.op)
        pair = cache.get(key)
        if pair is None:
            pair = cache[key] = (
                self.metrics.counter("requests_total", node=span.node, op=span.op),
                self.metrics.histogram("messages_per_request", op=span.op),
            )
        pair[0].inc()
        pair[1].observe(span.messages)
        if span.op == COMBINE:
            latency = cache.get("combine_latency")
            if latency is None:
                latency = cache["combine_latency"] = self.metrics.histogram(
                    "combine_latency", buckets=LATENCY_BUCKETS
                )
            latency.observe(span.duration)
            if span.failure is not None:
                self.metrics.counter(
                    "request_failures_total", node=span.node, kind=span.failure
                ).inc()
        self.trace.emit(span.end, "span", span.node, **span.to_event_detail())

    def finish_span(
        self,
        req_id: int,
        request: Request,
        *,
        start: float,
        end: float,
        m0: int,
        mark: Optional[int] = None,
        overlapped: bool = False,
        failure: Optional[str] = None,
    ) -> RequestSpan:
        """Build and record the span of a finished request.

        ``m0`` is the goodput total at initiation (message attribution is
        exact only when the request ran alone — ``overlapped`` flags the
        rest); ``mark`` is the trace cursor at initiation, used to recover
        the probe fan-out of non-overlapped combines.
        """
        fanout = ()
        if (
            self.trace.enabled
            and request.op == COMBINE
            and not overlapped
            and failure is None
            and mark is not None
        ):
            fanout = probe_fanout_from_events(self.trace.since(mark))
        span = RequestSpan(
            req=req_id,
            node=request.node,
            op=request.op,
            start=start,
            end=end,
            messages=self.stats.total - m0,
            probe_fanout=fanout,
            scope=request.scope,
            value=request.retval if request.op == COMBINE else request.arg,
            failure=failure,
            overlapped=overlapped,
        )
        self.observe_span(span)
        return span

    def emit_quiescent(self) -> None:
        """Emit the engine-level ``quiescent`` event (monitors hook on it)."""
        if not self.trace.enabled:
            return
        from repro.core.runtime import SYSTEM_NODE

        self.trace.emit(self.now, "quiescent", SYSTEM_NODE)


def build_backend(
    name: str,
    tree: Any,
    *,
    op: Any,
    policy_factory: Any,
    transport: Any = None,
    ghost: bool = False,
    trace_enabled: bool = False,
    metrics: Any = None,
    trace_max_events: Optional[int] = None,
    seed: int = 0,
    node_cls: Any = None,
    recovery: Any = None,
    profiler: Any = None,
    cost_accounting: bool = False,
    backend_options: Optional[Dict[str, Any]] = None,
    require: Any = (),
    fallback: bool = False,
) -> Any:
    """Assemble the execution backend named ``name``.

    Mirrors :func:`repro.sim.transport.build_transport`: the caller
    describes *what* it needs and the factory picks the implementation.

    Parameters
    ----------
    name:
        ``"reference"`` or ``"flat"`` (see :data:`BACKENDS`).
    require:
        Feature names the caller will use beyond the core driving surface.
        ``"dynamic"`` (attach/detach/rename, :meth:`set_topology`) and
        ``"sim"`` (a simulated transport stack) are only available on the
        reference backend.
    fallback:
        When the named backend cannot host the configuration, build the
        reference backend instead of raising :class:`BackendUnsupported`.
    backend_options:
        Backend-specific keywords (currently the flat backend's
        ``coalesce_updates``); ignored by the reference backend.

    All other parameters are the historical ``NodeRuntime`` constructor
    surface and are forwarded verbatim.
    """
    from repro.core.mechanism import LeaseNode
    from repro.core.runtime import NodeRuntime

    if node_cls is None:
        node_cls = LeaseNode
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    options = dict(backend_options or {})
    if name == "flat":
        reason = _flat_unsupported_reason(
            transport=transport,
            node_cls=node_cls,
            recovery=recovery,
            require=frozenset(require),
        )
        if reason is None:
            from repro.flat.runtime import FlatRuntime

            try:
                return FlatRuntime(
                    tree,
                    op=op,
                    policy_factory=policy_factory,
                    transport=transport,
                    ghost=ghost,
                    trace_enabled=trace_enabled,
                    metrics=metrics,
                    trace_max_events=trace_max_events,
                    seed=seed,
                    profiler=profiler,
                    cost_accounting=cost_accounting,
                    **options,
                )
            except BackendUnsupported as exc:
                reason = str(exc)
        if not fallback:
            raise BackendUnsupported(reason)
    return NodeRuntime(
        tree,
        op=op,
        policy_factory=policy_factory,
        transport=transport,
        ghost=ghost,
        trace_enabled=trace_enabled,
        metrics=metrics,
        trace_max_events=trace_max_events,
        seed=seed,
        node_cls=node_cls,
        recovery=recovery,
        profiler=profiler,
        cost_accounting=cost_accounting,
    )


def _flat_unsupported_reason(
    *, transport: Any, node_cls: Any, recovery: Any, require: frozenset
) -> Optional[str]:
    """Why the flat backend cannot host this configuration (None = it can)."""
    from repro.core.mechanism import LeaseNode

    if transport is not None and not getattr(transport, "synchronous", True):
        return (
            "the flat backend runs the synchronous transport only; "
            "simulated stacks need the reference backend"
        )
    if node_cls is not LeaseNode:
        return (
            f"the flat backend has no node objects to subclass "
            f"({node_cls.__name__} needs the reference backend)"
        )
    if recovery is not None:
        return "RecoveryManager needs the reference backend"
    unsupported = sorted(require - {"explore", "crash"})
    if unsupported:
        return (
            f"feature(s) {unsupported} need the reference backend "
            "(the flat backend is static-topology, synchronous-only)"
        )
    return None
