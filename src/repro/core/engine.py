"""Execution engines driving the lease mechanism.

* :class:`AggregationSystem` — the **sequential** model of Section 2: each
  request is initiated in a quiescent state and runs to quiescence before
  the next begins.  All of the paper's competitive-analysis results are
  stated for this model.
* :class:`ConcurrentAggregationSystem` — the **concurrent** model of
  Section 5: requests are initiated at arbitrary virtual times over a
  latency-ful network; combines may overlap with writes and each other.
  This is the setting of the causal-consistency theorem (Theorem 4).

Both engines run identical :class:`~repro.core.mechanism.LeaseNode` code and
produce an :class:`ExecutionResult` with the executed requests (retvals and
indices filled in), full per-edge/per-type message statistics, traces, and —
when ghosts are enabled — the Section-5 logs for consistency checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.mechanism import LeaseNode
from repro.core.policy import LeasePolicy
from repro.core.rww import RWWPolicy
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.channel import LatencyModel
from repro.sim.network import Network, SynchronousNetwork
from repro.sim.reliability import ReliabilityConfig, ReliableNetwork
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

#: Builds a fresh policy instance for one node.
PolicyFactory = Callable[[], LeasePolicy]


@dataclass(frozen=True)
class CombineTimeout:
    """A combine the reliability watchdog failed fast instead of hanging.

    Produced by :class:`ConcurrentAggregationSystem` when
    ``reliability.combine_deadline`` is set and a combine is still
    incomplete that long after initiation (e.g. because the reliable layer's
    retry budget ran out on a dead channel).  The request itself is marked
    ``failed = True``.
    """

    request: Request
    node: int
    initiated_at: float
    deadline: float


@dataclass
class ExecutionResult:
    """Outcome of running a request sequence through an engine.

    Attributes
    ----------
    requests:
        The executed requests in initiation order, with ``retval`` /
        ``index`` / timestamps filled in.
    stats:
        Per-directed-edge, per-kind message counts.
    trace:
        The structured trace (empty unless tracing was enabled).
    nodes:
        The live node objects (for state inspection and ghost logs).
    tree:
        The topology the run used.
    timeouts:
        :class:`CombineTimeout` outcomes recorded by the reliability
        watchdog (empty unless a deadline fired).
    """

    requests: List[Request]
    stats: MessageStats
    trace: TraceLog
    nodes: Dict[int, LeaseNode]
    tree: Tree
    timeouts: List["CombineTimeout"] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """The paper's cost ``C_A(σ)`` for this run."""
        return self.stats.total

    def combine_results(self) -> List[Any]:
        """Retvals of the combine requests, in initiation order."""
        return [q.retval for q in self.requests if q.op == COMBINE]

    def failed_requests(self) -> List[Request]:
        """Requests the engine gave up on (watchdog timeouts, hung combines)."""
        return [q for q in self.requests if q.failed]

    def ghost_logs(self) -> Dict[int, Any]:
        """node id -> :class:`~repro.core.ghost.GhostLog` (ghost runs only)."""
        out = {}
        for i, node in self.nodes.items():
            if node.ghost is not None:
                out[i] = node.ghost
        return out


class AggregationSystem:
    """Sequential execution engine (Section 2's quiescent-state model).

    Parameters
    ----------
    tree:
        The aggregation tree.
    op:
        The aggregation operator (default: :data:`~repro.ops.standard.SUM`).
    policy_factory:
        Zero-argument callable producing a fresh policy per node
        (default: :class:`~repro.core.rww.RWWPolicy`).
    ghost:
        Enable Section-5 ghost logs.
    trace_enabled:
        Record structured trace events.

    Examples
    --------
    >>> from repro.tree import path_tree
    >>> from repro.workloads import write, combine
    >>> sys_ = AggregationSystem(path_tree(3))
    >>> _ = sys_.execute(write(0, 5.0))
    >>> sys_.execute(combine(2)).retval
    5.0
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        ghost: bool = False,
        trace_enabled: bool = False,
    ) -> None:
        self.tree = tree
        self.op = op
        self.trace = TraceLog(enabled=trace_enabled)
        self.stats = MessageStats()
        self.network = SynchronousNetwork(
            tree, receiver=self._receive, stats=self.stats, trace=self.trace
        )
        self.nodes: Dict[int, LeaseNode] = {}
        for i in tree.nodes():
            self.nodes[i] = LeaseNode(
                i,
                tree,
                op,
                policy_factory(),
                send=self._make_send(i),
                trace=self.trace,
                ghost=ghost,
            )
        self.executed: List[Request] = []

    def _make_send(self, src: int) -> Callable[[int, Any], None]:
        def send(dst: int, message: Any) -> None:
            self.network.send(src, dst, message)

        return send

    def _receive(self, src: int, dst: int, message: Any) -> None:
        self.nodes[dst].on_message(src, message)

    # --------------------------------------------------------------- driving
    def execute(self, request: Request) -> Request:
        """Execute one request to quiescence and return it (retval filled)."""
        if not self.network.is_quiescent():
            raise RuntimeError("request initiated while messages are in transit")
        node = self.nodes[request.node]
        if request.op == WRITE:
            node.write(request)
        elif request.op == COMBINE:
            done: List[Request] = []
            if request.scope is None:
                node.begin_combine(request, done.append)
            else:
                node.begin_scoped_combine(request, done.append)
            self.network.run_to_quiescence()
            if not done:
                raise RuntimeError(
                    f"combine at node {request.node} did not complete at quiescence"
                )
        else:
            raise ValueError(f"cannot execute op {request.op!r}")
        self.network.run_to_quiescence()
        self.executed.append(request)
        return request

    def run(self, sequence: Sequence[Request]) -> ExecutionResult:
        """Execute a whole sequence sequentially."""
        for q in sequence:
            self.execute(q)
        return self.result()

    def result(self) -> ExecutionResult:
        """Snapshot the execution outcome so far."""
        return ExecutionResult(
            requests=list(self.executed),
            stats=self.stats,
            trace=self.trace,
            nodes=self.nodes,
            tree=self.tree,
        )

    # ----------------------------------------------------------- invariants
    def check_quiescent_invariants(self) -> None:
        """Assert the paper's quiescent-state lemmas on the current state.

        * Lemma 3.1: ``u.taken[v] == v.granted[u]`` for every edge.
        * Lemma 3.2: ``u.granted[v]`` implies ``u.taken[w]`` for all other
          neighbors ``w``.
        * Lemma 3.4: every ``pndg`` and ``snt`` is empty.
        * Transport quiescence: no message in transit.
        """
        check_quiescent_invariants(self.tree, self.nodes, self.network)

    def lease_graph_edges(self) -> List[tuple]:
        """Directed edges (u, v) with ``u.granted[v]`` — the lease graph
        G(Q) of Section 3.2 for the current quiescent state."""
        return [
            (u, v)
            for u in self.tree.nodes()
            for v in self.nodes[u].nbrs
            if self.nodes[u].granted[v]
        ]


def check_quiescent_invariants(tree: Tree, nodes: Dict[int, LeaseNode], network) -> None:
    """Assert the paper's quiescent-state lemmas (3.1, 3.2, 3.4) plus
    transport quiescence for any engine's current state.

    Shared by the sequential and concurrent engines — the lemmas hold in
    every quiescent state regardless of execution model, and (with the
    reliability layer) must be restored at drain even after channel faults.
    """
    if not network.is_quiescent():
        raise AssertionError("network not quiescent: messages in transit")
    for u, v in tree.directed_edges():
        nu, nv = nodes[u], nodes[v]
        if nu.taken[v] != nv.granted[u]:
            raise AssertionError(
                f"Lemma 3.1 violated on edge ({u},{v}): "
                f"{u}.taken[{v}]={nu.taken[v]} but {v}.granted[{u}]={nv.granted[u]}"
            )
    for u in tree.nodes():
        nu = nodes[u]
        for v in nu.nbrs:
            if nu.granted[v]:
                for w in nu.nbrs:
                    if w != v and not nu.taken[w]:
                        raise AssertionError(
                            f"Lemma 3.2 violated at {u}: granted[{v}] "
                            f"but taken[{w}] is false"
                        )
        if not nu.quiescent_state_ok():
            raise AssertionError(f"Lemma 3.4 violated at {u}: pndg/snt not empty")


@dataclass(order=True)
class ScheduledRequest:
    """A request to initiate at a given virtual time (concurrent engine)."""

    time: float
    request: Request = field(compare=False)


class ConcurrentAggregationSystem:
    """Concurrent execution engine over a latency-ful FIFO network.

    Requests are initiated at scheduled virtual times; combines complete
    whenever their probe rounds finish.  Ghost logs default to on because
    this engine exists chiefly for the causal-consistency experiments.

    With ``reliability=ReliabilityConfig(...)`` the transport is a
    :class:`~repro.sim.reliability.ReliableNetwork` (ACKs, retransmission,
    in-order release) and, when ``combine_deadline`` is set, every combine
    gets a watchdog: if it is still incomplete at the deadline it is failed
    fast with a structured :class:`CombineTimeout` instead of hanging the
    run.  Fault injection composes through
    :func:`repro.sim.faults.faulty_concurrent_system`.
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        ghost: bool = True,
        trace_enabled: bool = False,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> None:
        self.tree = tree
        self.op = op
        self.sim = Simulator()
        self.trace = TraceLog(enabled=trace_enabled)
        self.stats = MessageStats()
        self.reliability = reliability
        self.timeouts: List[CombineTimeout] = []
        if reliability is not None:
            self.network = ReliableNetwork(
                tree,
                self.sim,
                receiver=self._receive,
                config=reliability,
                latency=latency,
                seed=seed,
                stats=self.stats,
                trace=self.trace,
            )
        else:
            self.network = Network(
                tree,
                self.sim,
                receiver=self._receive,
                latency=latency,
                seed=seed,
                stats=self.stats,
                trace=self.trace,
            )
        self.nodes: Dict[int, LeaseNode] = {}
        for i in tree.nodes():
            self.nodes[i] = LeaseNode(
                i,
                tree,
                op,
                policy_factory(),
                send=self._make_send(i),
                trace=self.trace,
                ghost=ghost,
                clock=lambda: self.sim.now,
            )
        self.executed: List[Request] = []
        self._outstanding = 0

    def _make_send(self, src: int) -> Callable[[int, Any], None]:
        def send(dst: int, message: Any) -> None:
            self.network.send(src, dst, message)

        return send

    def _receive(self, src: int, dst: int, message: Any) -> None:
        self.nodes[dst].on_message(src, message)

    def _initiate(self, request: Request) -> None:
        request.initiated_at = self.sim.now
        node = self.nodes[request.node]
        self.executed.append(request)
        if request.op == WRITE:
            node.write(request)
        elif request.op == COMBINE:
            self._outstanding += 1
            deadline = (
                self.reliability.combine_deadline if self.reliability is not None else None
            )
            state = {"done": False, "timed_out": False}

            def done(_req: Request) -> None:
                state["done"] = True
                if not state["timed_out"]:
                    self._outstanding -= 1

            if deadline is not None:
                deadline_at = self.sim.now + deadline

                def watchdog(q: Request = request) -> None:
                    if state["done"] or state["timed_out"]:
                        return
                    state["timed_out"] = True
                    q.failed = True
                    self._outstanding -= 1
                    self.timeouts.append(
                        CombineTimeout(
                            request=q,
                            node=q.node,
                            initiated_at=q.initiated_at,
                            deadline=deadline_at,
                        )
                    )
                    self.trace.emit(
                        self.sim.now, "combine_timeout", q.node, deadline=deadline_at
                    )

                self.sim.schedule(deadline, watchdog, label=f"watchdog node {request.node}")
            if request.scope is None:
                node.begin_combine(request, done)
            else:
                node.begin_scoped_combine(request, done)
        else:
            raise ValueError(f"cannot execute op {request.op!r}")

    def run(self, schedule: Sequence[ScheduledRequest]) -> ExecutionResult:
        """Initiate every scheduled request and run the network to drain.

        Without a reliability watchdog a combine that never completes is a
        hard error (it indicates a protocol or channel bug).  With
        ``reliability.combine_deadline`` set, such combines are failed fast
        and reported through ``ExecutionResult.timeouts`` /
        ``Request.failed`` instead.
        """
        for item in schedule:
            self.sim.schedule_at(item.time, lambda q=item.request: self._initiate(q))
        self.sim.run()
        if self._outstanding:
            raise RuntimeError(f"{self._outstanding} combine(s) never completed")
        if not self.network.is_quiescent():
            raise RuntimeError("network failed to drain")
        return ExecutionResult(
            requests=list(self.executed),
            stats=self.stats,
            trace=self.trace,
            nodes=self.nodes,
            tree=self.tree,
            timeouts=list(self.timeouts),
        )

    def check_quiescent_invariants(self) -> None:
        """Assert the quiescent-state lemmas (see the sequential engine's
        method).  Meaningful once the simulator has drained — with the
        reliability layer on, faults must not leave any residue."""
        check_quiescent_invariants(self.tree, self.nodes, self.network)
