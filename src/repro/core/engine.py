"""Execution engines driving the lease mechanism.

* :class:`AggregationSystem` — the **sequential** model of Section 2: each
  request is initiated in a quiescent state and runs to quiescence before
  the next begins.  All of the paper's competitive-analysis results are
  stated for this model.
* :class:`ConcurrentAggregationSystem` — the **concurrent** model of
  Section 5: requests are initiated at arbitrary virtual times over a
  latency-ful network; combines may overlap with writes and each other.
  This is the setting of the causal-consistency theorem (Theorem 4).

Both engines run identical :class:`~repro.core.mechanism.LeaseNode` code and
produce an :class:`ExecutionResult` with the executed requests (retvals and
indices filled in), full per-edge/per-type message statistics, traces, and —
when ghosts are enabled — the Section-5 logs for consistency checking.

Telemetry (:mod:`repro.obs`) is threaded through both engines: every run
fills a :class:`~repro.obs.metrics.MetricsRegistry` (request counters,
messages-per-request and combine-latency histograms) and records one
:class:`~repro.obs.spans.RequestSpan` per request; with tracing enabled the
engines additionally emit typed ``combine_begin``/``span``/``quiescent``
events — the feed the live lemma monitors and the JSONL exporter run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.mechanism import LeaseNode
from repro.core.policy import LeasePolicy
from repro.core.rww import RWWPolicy
from repro.obs.metrics import LATENCY_BUCKETS, MetricsBridge, MetricsRegistry
from repro.obs.monitors import expected_probe_edges
from repro.obs.spans import RequestSpan, probe_fanout_from_events
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.channel import LatencyModel
from repro.sim.network import Network, SynchronousNetwork
from repro.sim.reliability import ReliabilityConfig, ReliableNetwork
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

#: Builds a fresh policy instance for one node.
PolicyFactory = Callable[[], LeasePolicy]

#: ``node`` value of engine-level trace events (``quiescent``) that do not
#: belong to any single node.
SYSTEM_NODE = -1


def _observe_span(metrics: MetricsRegistry, trace: TraceLog, span: RequestSpan) -> None:
    """Record one completed span into the registry and the trace."""
    metrics.counter("requests_total", node=span.node, op=span.op).inc()
    metrics.histogram("messages_per_request", op=span.op).observe(span.messages)
    if span.op == COMBINE:
        metrics.histogram("combine_latency", buckets=LATENCY_BUCKETS).observe(
            span.duration
        )
        if span.failure is not None:
            metrics.counter("request_failures_total", node=span.node, kind=span.failure).inc()
    detail = span.to_dict()
    detail.pop("node", None)  # the event's own node field carries it
    trace.emit(span.end, "span", span.node, **detail)


@dataclass(frozen=True)
class CombineTimeout:
    """A combine the reliability watchdog failed fast instead of hanging.

    Produced by :class:`ConcurrentAggregationSystem` when
    ``reliability.combine_deadline`` is set and a combine is still
    incomplete that long after initiation (e.g. because the reliable layer's
    retry budget ran out on a dead channel).  The request itself is marked
    ``failed = True``.
    """

    request: Request
    node: int
    initiated_at: float
    deadline: float


@dataclass
class ExecutionResult:
    """Outcome of running a request sequence through an engine.

    Attributes
    ----------
    requests:
        The executed requests in initiation order, with ``retval`` /
        ``index`` / timestamps filled in.
    stats:
        Per-directed-edge, per-kind message counts.
    trace:
        The structured trace (empty unless tracing was enabled).
    nodes:
        The live node objects (for state inspection and ghost logs).
    tree:
        The topology the run used.
    timeouts:
        :class:`CombineTimeout` outcomes recorded by the reliability
        watchdog (empty unless a deadline fired).
    spans:
        One :class:`~repro.obs.spans.RequestSpan` per completed (or
        failed-fast) request, in completion order.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    requests: List[Request]
    stats: MessageStats
    trace: TraceLog
    nodes: Dict[int, LeaseNode]
    tree: Tree
    timeouts: List["CombineTimeout"] = field(default_factory=list)
    spans: List[RequestSpan] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def total_messages(self) -> int:
        """The paper's cost ``C_A(σ)`` for this run."""
        return self.stats.total

    def combine_results(self) -> List[Any]:
        """Retvals of the combine requests, in initiation order."""
        return [q.retval for q in self.requests if q.op == COMBINE]

    def failed_requests(self) -> List[Request]:
        """Requests the engine gave up on (watchdog timeouts, hung combines)."""
        return [q for q in self.requests if q.failed]

    def ghost_logs(self) -> Dict[int, Any]:
        """node id -> :class:`~repro.core.ghost.GhostLog` (ghost runs only)."""
        out = {}
        for i, node in self.nodes.items():
            if node.ghost is not None:
                out[i] = node.ghost
        return out


class AggregationSystem:
    """Sequential execution engine (Section 2's quiescent-state model).

    Parameters
    ----------
    tree:
        The aggregation tree.
    op:
        The aggregation operator (default: :data:`~repro.ops.standard.SUM`).
    policy_factory:
        Zero-argument callable producing a fresh policy per node
        (default: :class:`~repro.core.rww.RWWPolicy`).
    ghost:
        Enable Section-5 ghost logs.
    trace_enabled:
        Record structured trace events (also feeds the metrics bridge and
        any attached lemma monitors).
    metrics:
        Share an existing :class:`~repro.obs.metrics.MetricsRegistry`
        (default: a fresh one per engine).
    trace_max_events:
        Ring-buffer cap for the trace (default unbounded).

    Examples
    --------
    >>> from repro.tree import path_tree
    >>> from repro.workloads import write, combine
    >>> sys_ = AggregationSystem(path_tree(3))
    >>> _ = sys_.execute(write(0, 5.0))
    >>> sys_.execute(combine(2)).retval
    5.0
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        ghost: bool = False,
        trace_enabled: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
    ) -> None:
        self.tree = tree
        self.op = op
        self.trace = TraceLog(enabled=trace_enabled, max_events=trace_max_events)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[RequestSpan] = []
        if trace_enabled:
            self.trace.subscribe(MetricsBridge(self.metrics))
        self.stats = MessageStats()
        self.network = SynchronousNetwork(
            tree, receiver=self._receive, stats=self.stats, trace=self.trace
        )
        self.nodes: Dict[int, LeaseNode] = {}
        for i in tree.nodes():
            self.nodes[i] = LeaseNode(
                i,
                tree,
                op,
                policy_factory(),
                send=self._make_send(i),
                trace=self.trace,
                ghost=ghost,
            )
        self.executed: List[Request] = []

    def _make_send(self, src: int) -> Callable[[int, Any], None]:
        def send(dst: int, message: Any) -> None:
            self.network.send(src, dst, message)

        return send

    def _receive(self, src: int, dst: int, message: Any) -> None:
        self.nodes[dst].on_message(src, message)

    # --------------------------------------------------------------- driving
    def execute(self, request: Request) -> Request:
        """Execute one request to quiescence and return it (retval filled).

        Telemetry rides along: a ``combine_begin`` event stamped with the
        expected probe frontier (Lemma 3.3), a :class:`RequestSpan` with
        exact message attribution (sequential runs have one request in
        flight at a time), and a ``quiescent`` event once the network has
        drained — the hook the live lemma monitors check on.
        """
        if not self.network.is_quiescent():
            raise RuntimeError("request initiated while messages are in transit")
        req_id = len(self.executed)
        m0 = self.stats.total
        mark = self.trace.mark()
        node = self.nodes[request.node]
        if request.op == WRITE:
            self.trace.emit(0.0, "write_begin", request.node, req=req_id)
            node.write(request)
        elif request.op == COMBINE:
            if self.trace.enabled:
                detail: Dict[str, Any] = {"req": req_id}
                if request.scope is None:
                    detail["expected_probes"] = [
                        list(e)
                        for e in sorted(expected_probe_edges(self.nodes, request.node))
                    ]
                else:
                    detail["scope"] = request.scope
                self.trace.emit(0.0, "combine_begin", request.node, **detail)
            done: List[Request] = []
            if request.scope is None:
                node.begin_combine(request, done.append)
            else:
                node.begin_scoped_combine(request, done.append)
            self.network.run_to_quiescence()
            if not done:
                raise RuntimeError(
                    f"combine at node {request.node} did not complete at quiescence"
                )
        else:
            raise ValueError(f"cannot execute op {request.op!r}")
        self.network.run_to_quiescence()
        self.executed.append(request)
        fanout = ()
        if self.trace.enabled and request.op == COMBINE:
            fanout = probe_fanout_from_events(self.trace.since(mark))
        span = RequestSpan(
            req=req_id,
            node=request.node,
            op=request.op,
            start=0.0,
            end=0.0,
            messages=self.stats.total - m0,
            probe_fanout=fanout,
            scope=request.scope,
            value=request.retval if request.op == COMBINE else request.arg,
        )
        self.spans.append(span)
        _observe_span(self.metrics, self.trace, span)
        self.trace.emit(0.0, "quiescent", SYSTEM_NODE)
        return request

    def run(self, sequence: Sequence[Request]) -> ExecutionResult:
        """Execute a whole sequence sequentially."""
        for q in sequence:
            self.execute(q)
        return self.result()

    def result(self) -> ExecutionResult:
        """Snapshot the execution outcome so far."""
        return ExecutionResult(
            requests=list(self.executed),
            stats=self.stats,
            trace=self.trace,
            nodes=self.nodes,
            tree=self.tree,
            spans=list(self.spans),
            metrics=self.metrics,
        )

    # ----------------------------------------------------------- invariants
    def check_quiescent_invariants(self) -> None:
        """Assert the paper's quiescent-state lemmas on the current state.

        * Lemma 3.1: ``u.taken[v] == v.granted[u]`` for every edge.
        * Lemma 3.2: ``u.granted[v]`` implies ``u.taken[w]`` for all other
          neighbors ``w``.
        * Lemma 3.4: every ``pndg`` and ``snt`` is empty.
        * Transport quiescence: no message in transit.
        """
        check_quiescent_invariants(self.tree, self.nodes, self.network)

    def lease_graph_edges(self) -> List[tuple]:
        """Directed edges (u, v) with ``u.granted[v]`` — the lease graph
        G(Q) of Section 3.2 for the current quiescent state."""
        return [
            (u, v)
            for u in self.tree.nodes()
            for v in self.nodes[u].nbrs
            if self.nodes[u].granted[v]
        ]


def check_quiescent_invariants(tree: Tree, nodes: Dict[int, LeaseNode], network) -> None:
    """Assert the paper's quiescent-state lemmas (3.1, 3.2, 3.4) plus
    transport quiescence for any engine's current state.

    Shared by the sequential and concurrent engines — the lemmas hold in
    every quiescent state regardless of execution model, and (with the
    reliability layer) must be restored at drain even after channel faults.
    """
    if not network.is_quiescent():
        raise AssertionError("network not quiescent: messages in transit")
    for u, v in tree.directed_edges():
        nu, nv = nodes[u], nodes[v]
        if nu.taken[v] != nv.granted[u]:
            raise AssertionError(
                f"Lemma 3.1 violated on edge ({u},{v}): "
                f"{u}.taken[{v}]={nu.taken[v]} but {v}.granted[{u}]={nv.granted[u]}"
            )
    for u in tree.nodes():
        nu = nodes[u]
        for v in nu.nbrs:
            if nu.granted[v]:
                for w in nu.nbrs:
                    if w != v and not nu.taken[w]:
                        raise AssertionError(
                            f"Lemma 3.2 violated at {u}: granted[{v}] "
                            f"but taken[{w}] is false"
                        )
        if not nu.quiescent_state_ok():
            raise AssertionError(f"Lemma 3.4 violated at {u}: pndg/snt not empty")


@dataclass(order=True)
class ScheduledRequest:
    """A request to initiate at a given virtual time (concurrent engine)."""

    time: float
    request: Request = field(compare=False)


class ConcurrentAggregationSystem:
    """Concurrent execution engine over a latency-ful FIFO network.

    Requests are initiated at scheduled virtual times; combines complete
    whenever their probe rounds finish.  Ghost logs default to on because
    this engine exists chiefly for the causal-consistency experiments.

    With ``reliability=ReliabilityConfig(...)`` the transport is a
    :class:`~repro.sim.reliability.ReliableNetwork` (ACKs, retransmission,
    in-order release) and, when ``combine_deadline`` is set, every combine
    gets a watchdog: if it is still incomplete at the deadline it is failed
    fast with a structured :class:`CombineTimeout` instead of hanging the
    run.  Fault injection composes through
    :func:`repro.sim.faults.faulty_concurrent_system`.
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        ghost: bool = True,
        trace_enabled: bool = False,
        reliability: Optional[ReliabilityConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
    ) -> None:
        self.tree = tree
        self.op = op
        self.sim = Simulator()
        self.trace = TraceLog(enabled=trace_enabled, max_events=trace_max_events)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[RequestSpan] = []
        self._open_spans: Dict[int, Dict[str, Any]] = {}
        if trace_enabled:
            self.trace.subscribe(MetricsBridge(self.metrics))
        self.stats = MessageStats()
        self.reliability = reliability
        self.timeouts: List[CombineTimeout] = []
        if reliability is not None:
            self.network = ReliableNetwork(
                tree,
                self.sim,
                receiver=self._receive,
                config=reliability,
                latency=latency,
                seed=seed,
                stats=self.stats,
                trace=self.trace,
                metrics=self.metrics,
            )
        else:
            self.network = Network(
                tree,
                self.sim,
                receiver=self._receive,
                latency=latency,
                seed=seed,
                stats=self.stats,
                trace=self.trace,
            )
        self.nodes: Dict[int, LeaseNode] = {}
        for i in tree.nodes():
            self.nodes[i] = LeaseNode(
                i,
                tree,
                op,
                policy_factory(),
                send=self._make_send(i),
                trace=self.trace,
                ghost=ghost,
                clock=lambda: self.sim.now,
            )
        self.executed: List[Request] = []
        self._outstanding = 0

    def _make_send(self, src: int) -> Callable[[int, Any], None]:
        def send(dst: int, message: Any) -> None:
            self.network.send(src, dst, message)

        return send

    def _receive(self, src: int, dst: int, message: Any) -> None:
        self.nodes[dst].on_message(src, message)

    def _initiate(self, request: Request) -> None:
        request.initiated_at = self.sim.now
        req_id = len(self.executed)
        node = self.nodes[request.node]
        self.executed.append(request)
        # A new initiation makes message attribution inexact for every span
        # still open (they now share the goodput ledger).
        for info in self._open_spans.values():
            info["overlapped"] = True
        overlapped = self._outstanding > 0 or not self.network.is_quiescent()
        m0 = self.stats.total
        mark = self.trace.mark()
        if request.op == WRITE:
            self.trace.emit(self.sim.now, "write_begin", request.node, req=req_id)
            node.write(request)
            span = RequestSpan(
                req=req_id,
                node=request.node,
                op=WRITE,
                start=request.initiated_at,
                end=self.sim.now,
                messages=self.stats.total - m0,
                value=request.arg,
                # Update relays propagate after the write returns; the span
                # only sees the initiating fan-out, so flag any write whose
                # traffic mingles with in-flight messages.
                overlapped=overlapped or not self.network.is_quiescent(),
            )
            self.spans.append(span)
            _observe_span(self.metrics, self.trace, span)
        elif request.op == COMBINE:
            self._outstanding += 1
            if self.trace.enabled:
                detail: Dict[str, Any] = {"req": req_id}
                if request.scope is not None:
                    detail["scope"] = request.scope
                elif not overlapped:
                    detail["expected_probes"] = [
                        list(e)
                        for e in sorted(expected_probe_edges(self.nodes, request.node))
                    ]
                self.trace.emit(self.sim.now, "combine_begin", request.node, **detail)
            self._open_spans[req_id] = {
                "request": request,
                "m0": m0,
                "mark": mark,
                "start": self.sim.now,
                "overlapped": overlapped,
            }
            deadline = (
                self.reliability.combine_deadline if self.reliability is not None else None
            )
            state = {"done": False, "timed_out": False}

            def done(_req: Request) -> None:
                state["done"] = True
                if not state["timed_out"]:
                    if self._outstanding > 1:
                        info = self._open_spans.get(req_id)
                        if info is not None:
                            info["overlapped"] = True
                    self._close_span(req_id)
                    self._outstanding -= 1

            if deadline is not None:
                deadline_at = self.sim.now + deadline

                def watchdog(q: Request = request) -> None:
                    if state["done"] or state["timed_out"]:
                        return
                    state["timed_out"] = True
                    q.failed = True
                    self._close_span(req_id, failure="timeout")
                    self._outstanding -= 1
                    self.timeouts.append(
                        CombineTimeout(
                            request=q,
                            node=q.node,
                            initiated_at=q.initiated_at,
                            deadline=deadline_at,
                        )
                    )
                    self.trace.emit(
                        self.sim.now, "combine_timeout", q.node, deadline=deadline_at
                    )

                self.sim.schedule(deadline, watchdog, label=f"watchdog node {request.node}")
            if request.scope is None:
                node.begin_combine(request, done)
            else:
                node.begin_scoped_combine(request, done)
        else:
            raise ValueError(f"cannot execute op {request.op!r}")

    def _close_span(self, req_id: int, failure: Optional[str] = None) -> None:
        """Finalize the span of an open combine (normal, timeout, or hung)."""
        info = self._open_spans.pop(req_id, None)
        if info is None:
            return
        request = info["request"]
        fanout = ()
        if self.trace.enabled and not info["overlapped"] and failure is None:
            fanout = probe_fanout_from_events(self.trace.since(info["mark"]))
        span = RequestSpan(
            req=req_id,
            node=request.node,
            op=COMBINE,
            start=info["start"],
            end=self.sim.now,
            messages=self.stats.total - info["m0"],
            probe_fanout=fanout,
            scope=request.scope,
            value=request.retval,
            failure=failure,
            overlapped=info["overlapped"],
        )
        self.spans.append(span)
        _observe_span(self.metrics, self.trace, span)

    def run(self, schedule: Sequence[ScheduledRequest]) -> ExecutionResult:
        """Initiate every scheduled request and run the network to drain.

        Without a reliability watchdog a combine that never completes is a
        hard error (it indicates a protocol or channel bug).  With
        ``reliability.combine_deadline`` set, such combines are failed fast
        and reported through ``ExecutionResult.timeouts`` /
        ``Request.failed`` instead.
        """
        for item in schedule:
            self.sim.schedule_at(item.time, lambda q=item.request: self._initiate(q))
        self.sim.run()
        if self._outstanding:
            raise RuntimeError(f"{self._outstanding} combine(s) never completed")
        if not self.network.is_quiescent():
            raise RuntimeError("network failed to drain")
        self.trace.emit(self.sim.now, "quiescent", SYSTEM_NODE)
        return ExecutionResult(
            requests=list(self.executed),
            stats=self.stats,
            trace=self.trace,
            nodes=self.nodes,
            tree=self.tree,
            timeouts=list(self.timeouts),
            spans=list(self.spans),
            metrics=self.metrics,
        )

    def check_quiescent_invariants(self) -> None:
        """Assert the quiescent-state lemmas (see the sequential engine's
        method).  Meaningful once the simulator has drained — with the
        reliability layer on, faults must not leave any residue."""
        check_quiescent_invariants(self.tree, self.nodes, self.network)
