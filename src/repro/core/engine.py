"""Execution engines driving the lease mechanism.

* :class:`AggregationSystem` — the **sequential** model of Section 2: each
  request is initiated in a quiescent state and runs to quiescence before
  the next begins.  All of the paper's competitive-analysis results are
  stated for this model.
* :class:`ConcurrentAggregationSystem` — the **concurrent** model of
  Section 5: requests are initiated at arbitrary virtual times over a
  latency-ful network; combines may overlap with writes and each other.
  This is the setting of the causal-consistency theorem (Theorem 4).

Both engines are thin *drivers* over one shared execution backend,
selected by name through :func:`~repro.core.backend.build_backend`: the
``reference`` backend (:class:`~repro.core.runtime.NodeRuntime`, which
owns the node map, the message routing, the telemetry hooks and the
quiescent-invariant battery) or the ``flat`` backend
(:class:`~repro.flat.runtime.FlatRuntime`, the vectorized engine for
large synchronous runs).  The transport underneath is assembled by
:func:`~repro.sim.transport.build_transport` from a declarative
:class:`~repro.sim.transport.TransportConfig`, so either driver runs over
any stack: the plain wire, a lossy one
(:func:`faulty_concurrent_system`), or a lossy-but-healed one
(:func:`reliable_concurrent_system`).  Even the sequential driver can run
over a simulated stack — each request simply drains the event heap — which
is what lets the multi-attribute and dynamic layers compose with faults
and reliability.

Telemetry (:mod:`repro.obs`) is threaded through the runtime: every run
fills a :class:`~repro.obs.metrics.MetricsRegistry` (request counters,
messages-per-request and combine-latency histograms) and records one
:class:`~repro.obs.spans.RequestSpan` per request; with tracing enabled the
engines additionally emit typed ``combine_begin``/``span``/``quiescent``
events — the feed the live lemma monitors and the JSONL exporter run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.backend import Backend, BackendUnsupported, build_backend
from repro.core.mechanism import LeaseNode
from repro.core.policies import RWWPolicy
from repro.core.runtime import (
    SYSTEM_NODE,
    PolicyFactory,
    check_quiescent_invariants,
)
from repro.obs.costmeter import CostMeter, CostReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PerfProfiler
from repro.obs.spans import RequestSpan
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.channel import LatencyModel
from repro.sim.faults import FaultPlan
from repro.sim.reliability import ReliabilityConfig
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.sim.transport import Transport, TransportConfig
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

__all__ = [
    "AggregationSystem",
    "BackendUnsupported",
    "CombineTimeout",
    "ConcurrentAggregationSystem",
    "ExecutionResult",
    "PolicyFactory",
    "SYSTEM_NODE",
    "ScheduledRequest",
    "check_quiescent_invariants",
    "faulty_concurrent_system",
    "reliable_concurrent_system",
    "run_with_faults",
]


@dataclass(frozen=True)
class CombineTimeout:
    """A combine the reliability watchdog failed fast instead of hanging.

    Produced by :class:`ConcurrentAggregationSystem` when
    ``reliability.combine_deadline`` is set and a combine is still
    incomplete that long after initiation (e.g. because the reliable layer's
    retry budget ran out on a dead channel).  The request itself is marked
    ``failed = True``.
    """

    request: Request
    node: int
    initiated_at: float
    deadline: float


@dataclass
class ExecutionResult:
    """Outcome of running a request sequence through an engine.

    Attributes
    ----------
    requests:
        The executed requests in initiation order, with ``retval`` /
        ``index`` / timestamps filled in.
    stats:
        Per-directed-edge, per-kind message counts.
    trace:
        The structured trace (empty unless tracing was enabled).
    nodes:
        The live node objects (for state inspection and ghost logs).
    tree:
        The topology the run used.
    timeouts:
        :class:`CombineTimeout` outcomes recorded by the reliability
        watchdog (empty unless a deadline fired).
    spans:
        One :class:`~repro.obs.spans.RequestSpan` per completed (or
        failed-fast) request, in completion order.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.
    cost:
        Observed-vs-OPT accounting from the streaming
        :class:`~repro.obs.costmeter.CostMeter` (``None`` unless the
        engine ran with ``cost_accounting=True``).
    """

    requests: List[Request]
    stats: MessageStats
    trace: TraceLog
    nodes: Dict[int, LeaseNode]
    tree: Tree
    timeouts: List["CombineTimeout"] = field(default_factory=list)
    spans: List[RequestSpan] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    cost: Optional[CostReport] = None

    @property
    def total_messages(self) -> int:
        """The paper's cost ``C_A(σ)`` for this run."""
        return self.stats.total

    def combine_results(self) -> List[Any]:
        """Retvals of the combine requests, in initiation order."""
        return [q.retval for q in self.requests if q.op == COMBINE]

    def failed_requests(self) -> List[Request]:
        """Requests the engine gave up on (watchdog timeouts, hung combines)."""
        return [q for q in self.requests if q.failed]

    def ghost_logs(self) -> Dict[int, Any]:
        """node id -> :class:`~repro.core.ghost.GhostLog` (ghost runs only)."""
        out = {}
        for i, node in self.nodes.items():
            if node.ghost is not None:
                out[i] = node.ghost
        return out


class _RuntimeDriver:
    """Delegation surface every engine shares over its execution backend.

    The backend (the :class:`~repro.core.runtime.NodeRuntime` reference
    implementation or the flat engine, selected through
    :func:`~repro.core.backend.build_backend`) owns the state; the engine
    exposes the historical public attributes (``tree``, ``nodes``,
    ``network``, ``stats``, ``trace``, ``metrics``, ``spans``, ``sim``)
    as read-only views onto it.
    """

    runtime: Backend
    executed: List[Request]

    @property
    def backend_name(self) -> str:
        """Which execution backend is driving this engine
        (``"reference"`` or ``"flat"``)."""
        return self.runtime.backend_name

    @property
    def tree(self) -> Tree:
        return self.runtime.tree

    @property
    def op(self) -> AggregationOperator:
        return self.runtime.op

    @property
    def trace(self) -> TraceLog:
        return self.runtime.trace

    @property
    def metrics(self) -> MetricsRegistry:
        return self.runtime.metrics

    @property
    def spans(self) -> List[RequestSpan]:
        return self.runtime.spans

    @property
    def stats(self) -> MessageStats:
        return self.runtime.stats

    @property
    def network(self) -> Transport:
        return self.runtime.network

    @property
    def nodes(self) -> Dict[int, LeaseNode]:
        return self.runtime.nodes

    @property
    def sim(self) -> Optional[Simulator]:
        return self.runtime.sim

    @property
    def profiler(self) -> Optional[PerfProfiler]:
        return self.runtime.profiler

    @property
    def cost_meter(self) -> Optional[CostMeter]:
        return self.runtime.cost_meter

    def result(self) -> ExecutionResult:
        """Snapshot the execution outcome so far."""
        meter = self.runtime.cost_meter
        return ExecutionResult(
            requests=list(self.executed),
            stats=self.runtime.stats,
            trace=self.runtime.trace,
            nodes=self.runtime.nodes,
            tree=self.runtime.tree,
            timeouts=list(getattr(self, "timeouts", ())),
            spans=list(self.runtime.spans),
            metrics=self.runtime.metrics,
            cost=meter.report() if meter is not None else None,
        )

    def check_quiescent_invariants(self) -> None:
        """Assert the paper's quiescent-state lemmas on the current state.

        * Lemma 3.1: ``u.taken[v] == v.granted[u]`` for every edge.
        * Lemma 3.2: ``u.granted[v]`` implies ``u.taken[w]`` for all other
          neighbors ``w``.
        * Lemma 3.4: every ``pndg`` and ``snt`` is empty.
        * Transport quiescence: no message in transit.
        """
        self.runtime.check_quiescent_invariants()

    def lease_graph_edges(self) -> List[tuple]:
        """Directed edges (u, v) with ``u.granted[v]`` — the lease graph
        G(Q) of Section 3.2 for the current quiescent state."""
        return self.runtime.lease_graph_edges()


class AggregationSystem(_RuntimeDriver):
    """Sequential execution engine (Section 2's quiescent-state model).

    Parameters
    ----------
    tree:
        The aggregation tree.
    op:
        The aggregation operator (default: :data:`~repro.ops.standard.SUM`).
    policy_factory:
        Zero-argument callable producing a fresh policy per node
        (default: :class:`~repro.core.policies.RWWPolicy`).
    ghost:
        Enable Section-5 ghost logs.
    trace_enabled:
        Record structured trace events (also feeds the metrics bridge and
        any attached lemma monitors).
    metrics:
        Share an existing :class:`~repro.obs.metrics.MetricsRegistry`
        (default: a fresh one per engine).
    trace_max_events:
        Ring-buffer cap for the trace (default unbounded).
    transport:
        Transport-stack description (default: the synchronous FIFO queue).
        A simulated stack also works: each request then drains the event
        heap, so the sequential model composes with latency, faults and
        the reliability layer.
    seed:
        Engine seed, inherited by the transport unless its config pins one.
    backend:
        Execution backend name — ``"reference"`` (the default
        :class:`~repro.core.runtime.NodeRuntime`) or ``"flat"`` (the
        vectorized engine in :mod:`repro.flat`).  The flat backend hosts
        synchronous, static-topology runs only and raises
        :class:`~repro.core.backend.BackendUnsupported` otherwise.
    backend_options:
        Backend-specific keywords forwarded by
        :func:`~repro.core.backend.build_backend` (e.g. the flat
        backend's ``coalesce_updates``).

    Examples
    --------
    >>> from repro.tree import path_tree
    >>> from repro.workloads import write, combine
    >>> sys_ = AggregationSystem(path_tree(3))
    >>> _ = sys_.execute(write(0, 5.0))
    >>> sys_.execute(combine(2)).retval
    5.0
    """

    #: Features subclasses demand from the backend (build_backend's
    #: ``require``) and whether an unsupported request silently falls back
    #: to the reference backend — the dynamic engine sets both.
    _backend_require: Sequence[str] = ()
    _backend_fallback: bool = False

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        ghost: bool = False,
        trace_enabled: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
        transport: Optional[TransportConfig] = None,
        seed: int = 0,
        recovery: Optional[Any] = None,
        profiler: Optional[PerfProfiler] = None,
        cost_accounting: bool = False,
        backend: str = "reference",
        backend_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.runtime = build_backend(
            backend,
            tree,
            op=op,
            policy_factory=policy_factory,
            transport=transport,
            ghost=ghost,
            trace_enabled=trace_enabled,
            metrics=metrics,
            trace_max_events=trace_max_events,
            seed=seed,
            recovery=recovery,
            profiler=profiler,
            cost_accounting=cost_accounting,
            backend_options=backend_options,
            require=self._backend_require,
            fallback=self._backend_fallback,
        )
        self.executed: List[Request] = []

    # --------------------------------------------------------------- driving
    def execute(self, request: Request) -> Request:
        """Execute one request to quiescence and return it (retval filled).

        Telemetry rides along: a ``combine_begin`` event stamped with the
        expected probe frontier (Lemma 3.3), a :class:`RequestSpan` with
        exact message attribution (sequential runs have one request in
        flight at a time), and a ``quiescent`` event once the network has
        drained — the hook the live lemma monitors check on.
        """
        rt = self.runtime
        if not rt.is_quiescent():
            raise RuntimeError("request initiated while messages are in transit")
        req_id = len(self.executed)
        m0 = rt.stats.total
        mark = rt.trace.mark()
        start = rt.now
        rt.emit_request_begin(req_id, request)
        if request.op == WRITE:
            rt.submit_write(request)
        elif request.op == COMBINE:
            done: List[Request] = []
            rt.submit_combine(request, done.append)
            rt.drain()
            if not done:
                raise RuntimeError(
                    f"combine at node {request.node} did not complete at quiescence"
                )
        else:
            raise ValueError(f"cannot execute op {request.op!r}")
        rt.drain()
        self.executed.append(request)
        rt.finish_span(req_id, request, start=start, end=rt.now, m0=m0, mark=mark)
        rt.emit_quiescent()
        return request

    def run(self, sequence: Sequence[Request]) -> ExecutionResult:
        """Execute a whole sequence sequentially."""
        for q in sequence:
            self.execute(q)
        return self.result()


@dataclass(order=True)
class ScheduledRequest:
    """A request to initiate at a given virtual time (concurrent engine)."""

    time: float
    request: Request = field(compare=False)


class ConcurrentAggregationSystem(_RuntimeDriver):
    """Concurrent execution engine over a latency-ful FIFO network.

    Requests are initiated at scheduled virtual times; combines complete
    whenever their probe rounds finish.  Ghost logs default to on because
    this engine exists chiefly for the causal-consistency experiments.

    With ``reliability=ReliabilityConfig(...)`` the transport is a
    :class:`~repro.sim.reliability.ReliableNetwork` (ACKs, retransmission,
    in-order release) and, when ``combine_deadline`` is set, every combine
    gets a watchdog: if it is still incomplete at the deadline it is failed
    fast with a structured :class:`CombineTimeout` instead of hanging the
    run.  Fault injection composes through ``transport`` (see
    :func:`faulty_concurrent_system`).
    """

    def __init__(
        self,
        tree: Tree,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        ghost: bool = True,
        trace_enabled: bool = False,
        reliability: Optional[ReliabilityConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
        transport: Optional[TransportConfig] = None,
        recovery: Optional[Any] = None,
        profiler: Optional[PerfProfiler] = None,
        cost_accounting: bool = False,
        backend: str = "reference",
        backend_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if transport is None:
            transport = TransportConfig.simulated(latency=latency, reliability=reliability)
        if not transport.needs_sim:
            raise ValueError("the concurrent engine needs a simulated transport stack")
        # require={"sim"}: the concurrent model needs the event heap, so
        # asking for the flat backend here fails fast with a clear reason.
        self.runtime = build_backend(
            backend,
            tree,
            op=op,
            policy_factory=policy_factory,
            transport=transport,
            ghost=ghost,
            trace_enabled=trace_enabled,
            metrics=metrics,
            trace_max_events=trace_max_events,
            seed=seed,
            recovery=recovery,
            profiler=profiler,
            cost_accounting=cost_accounting,
            backend_options=backend_options,
            require={"sim"},
        )
        self.reliability = transport.reliability
        self.timeouts: List[CombineTimeout] = []
        self.executed: List[Request] = []
        self._open_spans: Dict[int, Dict[str, Any]] = {}
        self._outstanding = 0
        # A crash kills the victim node's open requests; close their spans
        # with a structured failure cause instead of leaving them hanging.
        self.runtime.add_failure_listener(self._on_crash_failures)

    def _on_crash_failures(self, failed: List[Request]) -> None:
        """Close the spans of combines a node crash killed (their completion
        callbacks will never fire)."""
        for q in failed:
            q.failed = True
            for req_id, info in list(self._open_spans.items()):
                if info["request"] is q:
                    self._close_span(req_id, failure="crash")
                    self._outstanding -= 1
                    break

    def _initiate(self, request: Request) -> None:
        rt = self.runtime
        request.initiated_at = rt.now
        req_id = len(self.executed)
        self.executed.append(request)
        if request.node in rt.crashed:
            # Initiating at a down node: fail fast with a structured cause
            # (its traffic would only black-hole and hang the run).
            request.failed = True
            rt.emit_request_begin(req_id, request, overlapped=True)
            rt.finish_span(
                req_id,
                request,
                start=request.initiated_at,
                end=rt.now,
                m0=rt.stats.total,
                overlapped=True,
                failure="node_down",
            )
            return
        # A new initiation makes message attribution inexact for every span
        # still open (they now share the goodput ledger).
        for info in self._open_spans.values():
            info["overlapped"] = True
        overlapped = self._outstanding > 0 or not rt.is_quiescent()
        m0 = rt.stats.total
        mark = rt.trace.mark()
        rt.emit_request_begin(req_id, request, overlapped=overlapped)
        if request.op == WRITE:
            rt.submit_write(request)
            # Update relays propagate after the write returns; the span
            # only sees the initiating fan-out, so flag any write whose
            # traffic mingles with in-flight messages.
            rt.finish_span(
                req_id,
                request,
                start=request.initiated_at,
                end=rt.now,
                m0=m0,
                overlapped=overlapped or not rt.is_quiescent(),
            )
        elif request.op == COMBINE:
            self._outstanding += 1
            self._open_spans[req_id] = {
                "request": request,
                "m0": m0,
                "mark": mark,
                "start": rt.now,
                "overlapped": overlapped,
            }
            deadline = (
                self.reliability.combine_deadline if self.reliability is not None else None
            )
            state = {"done": False, "timed_out": False}

            def done(_req: Request) -> None:
                state["done"] = True
                if not state["timed_out"]:
                    if req_id not in self._open_spans:
                        return  # already closed (e.g. killed by a crash)
                    if self._outstanding > 1:
                        info = self._open_spans.get(req_id)
                        if info is not None:
                            info["overlapped"] = True
                    self._close_span(req_id)
                    self._outstanding -= 1

            if deadline is not None:
                deadline_at = rt.now + deadline

                def watchdog(q: Request = request) -> None:
                    if state["done"] or state["timed_out"]:
                        return
                    if req_id not in self._open_spans:
                        return  # already closed (e.g. killed by a crash)
                    state["timed_out"] = True
                    q.failed = True
                    self._close_span(req_id, failure="timeout")
                    self._outstanding -= 1
                    self.timeouts.append(
                        CombineTimeout(
                            request=q,
                            node=q.node,
                            initiated_at=q.initiated_at,
                            deadline=deadline_at,
                        )
                    )
                    rt.trace.emit(
                        rt.now, "combine_timeout", q.node, deadline=deadline_at
                    )

                rt.sim.schedule(deadline, watchdog, label=f"watchdog node {request.node}")
            rt.submit_combine(request, done)
        else:
            raise ValueError(f"cannot execute op {request.op!r}")

    def _close_span(self, req_id: int, failure: Optional[str] = None) -> None:
        """Finalize the span of an open combine (normal, timeout, or hung)."""
        info = self._open_spans.pop(req_id, None)
        if info is None:
            return
        self.runtime.finish_span(
            req_id,
            info["request"],
            start=info["start"],
            end=self.runtime.now,
            m0=info["m0"],
            mark=info["mark"],
            overlapped=info["overlapped"],
            failure=failure,
        )

    def run(self, schedule: Sequence[ScheduledRequest]) -> ExecutionResult:
        """Initiate every scheduled request and run the network to drain.

        Without a reliability watchdog a combine that never completes is a
        hard error (it indicates a protocol or channel bug).  With
        ``reliability.combine_deadline`` set, such combines are failed fast
        and reported through ``ExecutionResult.timeouts`` /
        ``Request.failed`` instead.
        """
        rt = self.runtime
        for item in schedule:
            rt.sim.schedule_at(
                item.time,
                lambda q=item.request: self._initiate(q),
                label=f"initiate node {item.request.node}",
            )
        rt.sim.run()
        if self._outstanding:
            raise RuntimeError(f"{self._outstanding} combine(s) never completed")
        if not rt.is_quiescent():
            raise RuntimeError("network failed to drain")
        rt.emit_quiescent()
        return self.result()


# --------------------------------------------------------------------------
# Fault-injection entry points.  These live with the engine (they build
# ConcurrentAggregationSystem instances); the sim layer stays free of core
# imports — transports are composed via TransportConfig like everywhere else.
# --------------------------------------------------------------------------


def faulty_concurrent_system(
    tree: Tree,
    plan: FaultPlan,
    op: Optional[AggregationOperator] = None,
    policy_factory: Optional[PolicyFactory] = None,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    ghost: bool = True,
    reliability: Optional[ReliabilityConfig] = None,
    trace_enabled: bool = False,
    recovery: Optional[Any] = None,
    profiler: Optional[PerfProfiler] = None,
    cost_accounting: bool = False,
) -> ConcurrentAggregationSystem:
    """A :class:`ConcurrentAggregationSystem` whose transport is lossy.

    With ``reliability=None`` (the raw fault-injection mode) the transport
    is a bare :class:`~repro.sim.faults.FaultyNetwork`: combines that lose
    their probe or response messages never complete — run with
    :func:`run_with_faults`, which tolerates and marks the hung requests.

    With ``reliability=ReliabilityConfig(...)`` the lossy wire is wrapped in
    a :class:`~repro.sim.reliability.ReliableNetwork`, restoring the paper's
    reliable-FIFO contract end-to-end; the system can then be driven with
    the ordinary :meth:`ConcurrentAggregationSystem.run`.  Either way
    ``system.network.faults`` holds the injected-fault log.

    The transport seed is ``seed + 1`` (the historical convention keeping
    fault-run latency streams distinct from the fault-free baseline's).
    """
    config = TransportConfig.simulated(
        latency=latency,
        plan=plan,
        reliability=reliability,
        seed=seed + 1,
    )
    return ConcurrentAggregationSystem(
        tree,
        op=op if op is not None else SUM,
        policy_factory=policy_factory if policy_factory is not None else RWWPolicy,
        seed=seed,
        ghost=ghost,
        trace_enabled=trace_enabled,
        transport=config,
        recovery=recovery,
        profiler=profiler,
        cost_accounting=cost_accounting,
    )


def reliable_concurrent_system(
    tree: Tree,
    plan: FaultPlan,
    config: Optional[ReliabilityConfig] = None,
    op: Optional[AggregationOperator] = None,
    policy_factory: Optional[PolicyFactory] = None,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    ghost: bool = True,
    trace_enabled: bool = False,
    recovery: Optional[Any] = None,
    profiler: Optional[PerfProfiler] = None,
    cost_accounting: bool = False,
) -> ConcurrentAggregationSystem:
    """A concurrent system whose lossy transport is healed by a
    :class:`~repro.sim.reliability.ReliableNetwork` — shorthand for
    :func:`faulty_concurrent_system` with ``reliability`` set."""
    return faulty_concurrent_system(
        tree,
        plan,
        op=op,
        policy_factory=policy_factory,
        latency=latency,
        seed=seed,
        ghost=ghost,
        reliability=config if config is not None else ReliabilityConfig(),
        trace_enabled=trace_enabled,
        recovery=recovery,
        profiler=profiler,
        cost_accounting=cost_accounting,
    )


def run_with_faults(system: ConcurrentAggregationSystem, schedule):
    """Run a faulty system to network drain, tolerating hung combines.

    Returns ``(result, hung)`` where ``hung`` is the list of combine
    requests that never completed.  Each is explicitly marked
    ``q.failed = True`` so a hung combine is never mistaken for one that
    legitimately returned ``None`` (they also keep ``q.index == -1``).
    """
    for item in schedule:
        system.sim.schedule_at(
            item.time,
            lambda q=item.request: system._initiate(q),
            label=f"initiate node {item.request.node}",
        )
    system.sim.run()
    hung = [q for q in system.executed if q.op == COMBINE and q.index < 0 and not q.failed]
    for q in hung:
        q.failed = True
    for req_id in list(system._open_spans):
        system._close_span(req_id, failure="hung")
    system._outstanding = 0
    return system.result(), hung
