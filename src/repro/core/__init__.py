"""The paper's primary contribution: the lease-based aggregation mechanism.

* :mod:`repro.core.messages` — the four message types of Figure 1
  (``probe``, ``response``, ``update``, ``release``).
* :mod:`repro.core.mechanism` — :class:`~repro.core.mechanism.LeaseNode`,
  a faithful implementation of the Figure-1 automaton (transitions
  ``T1``–``T6`` and the helper procedures), transport-agnostic.
* :mod:`repro.core.policies` — the whole policy layer: the stub interface
  (:class:`~repro.core.policies.LeasePolicy`, the underlined calls in
  Figure 1), the paper's online policy **RWW** (Section 4), generic
  ``(a, b)``-algorithms on observable workloads, always-lease
  (Astrolabe-like) and never-lease (MDS-2-like) extremes.
  (The ``repro.core.policy`` / ``repro.core.rww`` aliases are gone; the
  protolint rule PL401 flags any import of them.)
* :mod:`repro.core.backend` — the execution-backend seam: the
  :class:`~repro.core.backend.Backend` protocol, shared telemetry, and
  the :func:`~repro.core.backend.build_backend` factory selecting
  between the reference runtime and :mod:`repro.flat`.
* :mod:`repro.core.runtime` — the shared node-runtime (node map, router,
  telemetry hooks, quiescence checking): the **reference backend**.
* :mod:`repro.core.engine` — sequential (Section 2) and concurrent
  (Section 5) execution engines sharing the same node code.
* :mod:`repro.core.ghost` — Section 5's ghost-log instrumentation
  (``log``/``wlog``/``gwlog``) for the causal-consistency analysis.
"""

from repro.core.messages import Message, Probe, Release, Response, Update
from repro.core.policies import (
    ABPolicy,
    AlwaysLeasePolicy,
    HeterogeneousABPolicy,
    LeasePolicy,
    NeverLeasePolicy,
    RWWPolicy,
    WriteOncePolicy,
)
from repro.core.mechanism import LeaseNode
from repro.core.runtime import NodeRuntime, Router
from repro.core.engine import (
    AggregationSystem,
    ConcurrentAggregationSystem,
    ExecutionResult,
    ScheduledRequest,
)

__all__ = [
    "Message",
    "Probe",
    "Response",
    "Update",
    "Release",
    "LeasePolicy",
    "RWWPolicy",
    "ABPolicy",
    "AlwaysLeasePolicy",
    "NeverLeasePolicy",
    "WriteOncePolicy",
    "HeterogeneousABPolicy",
    "LeaseNode",
    "NodeRuntime",
    "Router",
    "AggregationSystem",
    "ConcurrentAggregationSystem",
    "ExecutionResult",
    "ScheduledRequest",
]
