"""The paper's primary contribution: the lease-based aggregation mechanism.

* :mod:`repro.core.messages` — the four message types of Figure 1
  (``probe``, ``response``, ``update``, ``release``).
* :mod:`repro.core.mechanism` — :class:`~repro.core.mechanism.LeaseNode`,
  a faithful implementation of the Figure-1 automaton (transitions
  ``T1``–``T6`` and the helper procedures), transport-agnostic.
* :mod:`repro.core.policy` — the policy stub interface (the underlined
  calls in Figure 1).
* :mod:`repro.core.rww` — the paper's online policy **RWW** (Section 4).
* :mod:`repro.core.policies` — the wider policy family: generic
  ``(a, b)``-algorithms on observable workloads, always-lease
  (Astrolabe-like) and never-lease (MDS-2-like) extremes.
* :mod:`repro.core.engine` — sequential (Section 2) and concurrent
  (Section 5) execution engines sharing the same node code.
* :mod:`repro.core.ghost` — Section 5's ghost-log instrumentation
  (``log``/``wlog``/``gwlog``) for the causal-consistency analysis.
"""

from repro.core.messages import Message, Probe, Release, Response, Update
from repro.core.policy import LeasePolicy
from repro.core.rww import RWWPolicy
from repro.core.policies import (
    ABPolicy,
    AlwaysLeasePolicy,
    NeverLeasePolicy,
    WriteOncePolicy,
    HeterogeneousABPolicy,
)
from repro.core.mechanism import LeaseNode
from repro.core.engine import (
    AggregationSystem,
    ConcurrentAggregationSystem,
    ExecutionResult,
    ScheduledRequest,
)

__all__ = [
    "Message",
    "Probe",
    "Response",
    "Update",
    "Release",
    "LeasePolicy",
    "RWWPolicy",
    "ABPolicy",
    "AlwaysLeasePolicy",
    "NeverLeasePolicy",
    "WriteOncePolicy",
    "HeterogeneousABPolicy",
    "LeaseNode",
    "AggregationSystem",
    "ConcurrentAggregationSystem",
    "ExecutionResult",
    "ScheduledRequest",
]
