"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``       run a small aggregation demo and print a summary
``lp``         build and solve the Figure-5 LP (c = 5/2)
``ratio``      run a workload under a policy; report cost vs offline bounds
``exact``      exact competitive ratio of a policy automaton (game solver)
``adversary``  run the Theorem-3 adversary against an (a, b)-algorithm
``baselines``  read-ratio sweep: RWW vs the static baselines
``chaos``      fault-rate sweep under the reliable-delivery layer
``trace``      record / summarize / diff / top-edges on JSONL event traces
``perf``       wall-clock profiling + online cost accounting:
               record / report / flame / compare
``verify``     protocol verification: AST lint, small-scope model checking,
               offline happens-before checking of recorded traces
``serve``      run the tree as real OS processes over TCP (``--chaos`` kills
               and restarts processes mid-run); merges the per-process
               traces and re-verifies them offline

Workload traces can be saved/loaded as JSONL (``ratio --save/--load``), and
``trace record`` exports the full telemetry event stream the same way, so
an experiment run on one machine replays bit-identically on another.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.engine import AggregationSystem
from repro.core.policies import ABPolicy, AlwaysLeasePolicy, NeverLeasePolicy
from repro.core.policies import RWWPolicy
from repro.tree.generators import (
    binary_tree,
    path_tree,
    random_tree,
    star_tree,
)
from repro.util import format_table
from repro.workloads.requests import copy_sequence
from repro.workloads.synthetic import uniform_workload


def make_tree(topology: str, nodes: int, seed: int):
    """Build a topology by name."""
    builders = {
        "path": lambda: path_tree(nodes),
        "star": lambda: star_tree(nodes),
        "binary": lambda: _binary_near(nodes),
        "random": lambda: random_tree(nodes, seed),
    }
    if topology not in builders:
        raise SystemExit(f"unknown topology {topology!r}; pick from {sorted(builders)}")
    return builders[topology]()


def _binary_near(nodes: int):
    import math

    depth = max(0, int(math.log2(max(nodes, 1) + 1)) - 1)
    return binary_tree(depth)


def make_policy_factory(spec: str):
    """Parse a policy spec: rww | always | never | ab:a,b | random:p."""
    if spec == "rww":
        return RWWPolicy, "RWW"
    if spec == "always":
        return AlwaysLeasePolicy, "always-lease"
    if spec == "never":
        return NeverLeasePolicy, "never-lease"
    if spec.startswith("ab:"):
        try:
            a_str, b_str = spec[3:].split(",")
            a, b = int(a_str), int(b_str)
        except ValueError:
            raise SystemExit(f"bad ab spec {spec!r}; expected ab:a,b")
        return (lambda: ABPolicy(a, b)), f"({a},{b})"
    if spec.startswith("random:"):
        from repro.core.randomized import random_break_factory

        try:
            p = float(spec[7:])
        except ValueError:
            raise SystemExit(f"bad random spec {spec!r}; expected random:p")
        return random_break_factory(p), f"random-break[{p}]"
    raise SystemExit(f"unknown policy {spec!r}")


# ----------------------------------------------------------------- helpers
def _warn_violations(monitors) -> int:
    """Print one warning line per monitor violation; return the count."""
    from repro.obs.monitors import all_violations

    violations = all_violations(monitors)
    for v in violations:
        print(f"WARNING: monitor {v.monitor} @ t={v.time}: {v.message}",
              file=sys.stderr)
    return len(violations)


def _export_trace(trace, path: str) -> None:
    from repro.obs.export import export_jsonl

    n = export_jsonl(trace, path)
    print(f"exported {n} trace events to {path}", file=sys.stderr)


# ---------------------------------------------------------------- commands
def cmd_demo(args) -> int:
    from repro.obs.monitors import attach_standard_monitors
    from repro.report import busiest_edges, summarize_run_data
    from repro.workloads.requests import combine, write

    tree = make_tree(args.topology, args.nodes, args.seed)
    system = AggregationSystem(tree, trace_enabled=True, backend=args.backend)
    monitors = attach_standard_monitors(system.trace, strict=False)
    import random as _random

    rng = _random.Random(args.seed)
    for node in tree.nodes():
        system.execute(write(node, float(rng.randrange(100))))
    r1 = system.execute(combine(0))
    r2 = system.execute(combine(0))
    result = system.result()
    if args.json:
        data = summarize_run_data(result, title=f"demo {args.topology}/{tree.n}")
        data["monitors"] = {"violations": _warn_violations(monitors)}
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"tree: {args.topology} with {tree.n} nodes")
        print(f"global aggregate: {r1.retval}")
        print(f"first combine + writes cost {system.stats.total} messages; "
              f"repeat combine cost 0 extra" if r2.retval == r1.retval else "")
        print(f"message breakdown: {system.stats.by_kind()}")
        print(f"leases installed: {sorted(system.lease_graph_edges())}")
        hottest = [(e, n) for e, n in busiest_edges(result, top=3) if n]
        if hottest:
            print("hottest edges: "
                  + ", ".join(f"{u}-{v} ({n} msgs)" for (u, v), n in hottest))
        _warn_violations(monitors)
    if args.trace_out:
        _export_trace(system.trace, args.trace_out)
    return 0


def cmd_lp(args) -> int:
    from repro.analysis.lp import PAPER_POTENTIALS, solve_competitive_lp
    from repro.analysis.potential import verify_potential_on_machine

    solution = solve_competitive_lp()
    print(f"Figure 5 LP: {solution.n_constraints} constraints")
    print(f"optimum: {solution}")
    ok = not verify_potential_on_machine(PAPER_POTENTIALS, 2.5)
    print(f"paper potentials feasible at c = 5/2: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def cmd_ratio(args) -> int:
    from repro.offline.vectorized import (
        nice_lower_bound_fast,
        offline_lease_lower_bound_fast,
    )
    from repro.workloads.traces import load_trace, save_trace

    tree = make_tree(args.topology, args.nodes, args.seed)
    if args.load:
        workload = load_trace(args.load)
        print(f"loaded {len(workload)} requests from {args.load}")
    else:
        workload = uniform_workload(
            tree.n, args.length, read_ratio=args.read_ratio, seed=args.seed
        )
    if args.save:
        save_trace(args.save, workload)
        print(f"saved workload to {args.save}")
    factory, name = make_policy_factory(args.policy)
    system = AggregationSystem(tree, policy_factory=factory)
    result = system.run(copy_sequence(workload))
    opt = offline_lease_lower_bound_fast(tree, workload)
    nice = nice_lower_bound_fast(tree, workload)
    print(f"policy {name} on {args.topology}/{tree.n} nodes, {len(workload)} requests")
    print(f"  messages:         {result.total_messages}")
    print(f"  offline lease OPT >= {opt}"
          + (f"   ratio {result.total_messages / opt:.3f}" if opt else ""))
    print(f"  nice bound        >= {nice}"
          + (f"   ratio {result.total_messages / nice:.3f}" if nice else ""))
    return 0


def cmd_exact(args) -> int:
    from repro.analysis.games import (
        ab_automaton,
        always_lease_automaton,
        exact_competitive_ratio,
        never_lease_automaton,
        rww_automaton,
        ttl_automaton,
    )

    spec = args.policy
    if spec == "rww":
        auto = rww_automaton()
    elif spec == "always":
        auto = always_lease_automaton()
    elif spec == "never":
        auto = never_lease_automaton()
    elif spec.startswith("ab:"):
        a, b = (int(x) for x in spec[3:].split(","))
        auto = ab_automaton(a, b)
    elif spec.startswith("ttl:"):
        auto = ttl_automaton(int(spec[4:]))
    else:
        raise SystemExit(f"unknown automaton spec {spec!r}")
    ratio = exact_competitive_ratio(auto)
    if ratio is None:
        print(f"{auto.name}: competitive ratio UNBOUNDED")
    else:
        print(f"{auto.name}: exact competitive ratio {ratio} ({float(ratio):.4f})")
    return 0


def cmd_adversary(args) -> int:
    from repro.offline.vectorized import offline_lease_lower_bound_fast
    from repro.tree.generators import two_node_tree
    from repro.workloads.adversarial import adv_sequence, adv_sequence_strong

    tree = two_node_tree()
    gen = adv_sequence_strong if args.strong else adv_sequence
    wl = gen(args.a, args.b, rounds=args.rounds)
    system = AggregationSystem(
        tree, policy_factory=lambda: ABPolicy(args.a, args.b)
    )
    cost = system.run(copy_sequence(wl)).total_messages
    opt = offline_lease_lower_bound_fast(tree, wl)
    label = "ADV+N" if args.strong else "ADV"
    print(f"{label}({args.a},{args.b}) x {args.rounds} rounds vs the "
          f"({args.a},{args.b})-algorithm:")
    print(f"  algorithm: {cost}   offline OPT: {opt}   ratio: {cost / opt:.4f}")
    return 0


def cmd_exact_grid(args) -> int:
    from repro.analysis.games import ab_automaton, exact_competitive_ratio

    rows = []
    for a in range(1, args.max_a + 1):
        for b in range(1, args.max_b + 1):
            r = exact_competitive_ratio(ab_automaton(a, b))
            rows.append((a, b, str(r), float(r)))
    print(format_table(["a", "b", "exact ratio", "float"], rows,
                       title="Exact competitive ratios of (a, b)-algorithms:"))
    best = min(rows, key=lambda r: r[3])
    print(f"\nminimum {best[2]} at (a, b) = ({best[0]}, {best[1]})"
          + ("  — RWW" if (best[0], best[1]) == (1, 2) else ""))
    return 0


def cmd_gap(args) -> int:
    from repro.offline.global_dp import relaxation_gap

    tree = make_tree(args.topology, args.nodes, args.seed)
    wl = uniform_workload(tree.n, args.length, read_ratio=args.read_ratio, seed=args.seed)
    relaxed, exact, gap = relaxation_gap(tree, wl)
    print(f"{args.topology}/{tree.n} nodes, {args.length} requests:")
    print(f"  per-edge relaxed bound: {relaxed}")
    print(f"  closure-constrained OPT: {exact}")
    print(f"  gap: {gap:.4f}" + ("  (relaxation tight)" if gap == 1.0 else ""))
    return 0


def cmd_baselines(args) -> int:
    from repro.baselines import (
        StaticLeaseBaseline,
        astrolabe_config,
        mds_config,
        up_tree_config,
    )

    tree = make_tree(args.topology, args.nodes, args.seed)
    rows = []
    for rr in (0.1, 0.3, 0.5, 0.7, 0.9):
        wl = uniform_workload(tree.n, args.length, read_ratio=rr, seed=args.seed)
        rww = AggregationSystem(tree).run(copy_sequence(wl)).total_messages
        astro = StaticLeaseBaseline(tree, astrolabe_config(tree)).run(
            copy_sequence(wl)
        ).total_messages
        mds = StaticLeaseBaseline(tree, mds_config(tree)).run(
            copy_sequence(wl)
        ).total_messages
        root = StaticLeaseBaseline(tree, up_tree_config(tree, 0)).run(
            copy_sequence(wl)
        ).total_messages
        rows.append((rr, rww, astro, mds, root))
    print(
        format_table(
            ["read ratio", "RWW", "Astrolabe", "MDS-2", "RootHier"],
            rows,
            title=f"{args.topology}/{tree.n} nodes, {args.length} requests:",
        )
    )
    return 0


def _cmd_chaos_churn(args) -> int:
    """``chaos --churn``: scheduled crash/recover/partition faults plus
    message drops, healed by the reliable layer and the recovery subsystem.

    Verifies the crash-recovery acceptance bar: the run drains to
    quiescence, every combine either completes or is failed fast (lease
    expiry / deadline — never hung), the recorded trace is causally
    consistent net of declared losses, and time-to-recover is reported.
    """
    import random as _random

    from repro.core.engine import ScheduledRequest, reliable_concurrent_system
    from repro.obs.monitors import attach_standard_monitors
    from repro.recovery import RecoveryConfig
    from repro.sim.channel import constant_latency
    from repro.sim.faults import FaultPlan, crash, heal, partition, recover
    from repro.sim.reliability import ReliabilityConfig
    from repro.verify.causal import check_trace
    from repro.workloads.requests import COMBINE

    if not 0.0 <= args.drop_pct <= 100.0:
        raise SystemExit(f"--drop-pct must be in [0, 100], got {args.drop_pct}")
    tree = make_tree(args.topology, args.nodes, args.seed)
    wl = uniform_workload(tree.n, args.length, read_ratio=args.read_ratio,
                          seed=args.seed)
    horizon = args.gap * len(wl)
    rng = _random.Random(args.seed + 11)
    # Crash/recover cycles on distinct nodes, spread across the run.
    cycles = min(args.churn_cycles, tree.n - 1)
    victims = rng.sample([n for n in tree.nodes() if n != 0], cycles)
    events = []
    for k, node in enumerate(victims):
        t0 = horizon * (k + 1) / (cycles + 2)
        events.append(crash(node, t0))
        events.append(recover(node, t0 + rng.uniform(1.0, 2.5) * args.gap))
    # One partition epoch on a random tree edge, healed two gaps later.
    edge = list(tree.edges)[rng.randrange(len(tree.edges))]
    t_cut = horizon * (cycles + 1) / (cycles + 2)
    events += [partition([edge], t_cut), heal(t_cut + 2 * args.gap)]
    plan = FaultPlan(drop_prob=args.drop_pct / 100, seed=args.seed + 5,
                     events=tuple(events))
    ttl = 2.0 * args.gap
    system = reliable_concurrent_system(
        tree,
        plan,
        config=ReliabilityConfig(
            base_timeout=6.0, backoff=1.5, max_timeout=20.0,
            max_retries=args.max_retries, combine_deadline=3 * args.gap,
        ),
        latency=constant_latency(1.0),
        seed=args.seed,
        trace_enabled=True,
        # Horizon: sweeps must outlive the *request* schedule, not just the
        # fault plan — a round wedged by the last fault can form as late as
        # the last request and needs first-seen + TTL to age into the
        # stuck-round re-probe, plus a TTL of re-probe pacing.
        recovery=RecoveryConfig(
            checkpoint_interval=2 * args.gap,
            lease_ttl=ttl,
            horizon=horizon + 3 * ttl,
        ),
    )
    monitors = attach_standard_monitors(system.trace, strict=False)
    result = system.run([
        ScheduledRequest(time=args.gap * i, request=q)
        for i, q in enumerate(copy_sequence(wl))
    ])
    system.check_quiescent_invariants()
    monitor_violations = _warn_violations(monitors)
    if args.trace_out:
        _export_trace(system.trace, args.trace_out)
    report = check_trace(system.trace.events(), n_nodes=tree.n)
    hung = [q for q in result.requests
            if q.op == COMBINE and q.index < 0 and not q.failed]
    failed = result.failed_requests()
    mgr = system.runtime.recovery
    ttr = mgr.recovery_durations
    data = {
        "seed": args.seed,
        "plan": plan.to_dict(),
        "recovery": {
            "checkpoint_interval": 2 * args.gap,
            "lease_ttl": ttl,
            "recoveries": len(ttr),
            "time_to_recover": ttr,
            "checkpoints": sum(
                1 for e in system.trace.events() if e.kind == "checkpoint"
            ),
        },
        "requests": len(result.requests),
        "failed_fast": len(failed),
        "hung_combines": len(hung),
        "declared_losses": report.declared_losses,
        "causal_violations": [str(v) for v in report.violations],
        "monitor_violations": monitor_violations,
        "ok": (report.ok and not hung and not monitor_violations),
    }
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"chaos --churn on {args.topology}/{tree.n} nodes, "
              f"{args.length} requests, drop {args.drop_pct}%:")
        print(f"  fault plan: {cycles} crash/recover cycles + 1 partition "
              f"epoch (seed {args.seed}, full plan in --json output)")
        print(f"  requests: {len(result.requests)} total, "
              f"{len(failed)} failed fast, {len(hung)} hung")
        print(f"  declared losses: {report.declared_losses}   "
              f"causal violations: {len(report.violations)}")
        if ttr:
            print(f"  time-to-recover: n={len(ttr)} "
                  f"min={min(ttr):g} median={sorted(ttr)[len(ttr) // 2]:g} "
                  f"max={max(ttr):g}")
        for v in report.violations:
            print(f"  VIOLATION {v}", file=sys.stderr)
        print("  churn run clean: zero hung combines, causally consistent"
              if data["ok"] else "  CHURN RUN DEGRADED")
    return 0 if data["ok"] else 1


def cmd_chaos(args) -> int:
    from repro.consistency import check_strict_consistency
    from repro.core.engine import ConcurrentAggregationSystem, ScheduledRequest
    from repro.sim.channel import constant_latency
    from repro.sim.faults import FaultPlan
    from repro.core.engine import reliable_concurrent_system
    from repro.sim.reliability import ReliabilityConfig

    if args.churn:
        return _cmd_chaos_churn(args)
    if args.step_pct < 1:
        raise SystemExit("--step-pct must be >= 1")
    if not 0 <= args.max_rate_pct <= 40:
        raise SystemExit("--max-rate-pct must be in [0, 40] "
                         "(drop + dup + reorder draws must sum to <= 1)")
    tree = make_tree(args.topology, args.nodes, args.seed)
    wl = uniform_workload(tree.n, args.length, read_ratio=args.read_ratio,
                          seed=args.seed)
    schedule = [
        ScheduledRequest(time=args.gap * i, request=q)
        for i, q in enumerate(copy_sequence(wl))
    ]
    ref = ConcurrentAggregationSystem(
        tree, latency=constant_latency(1.0)
    ).run([
        ScheduledRequest(time=args.gap * i, request=q)
        for i, q in enumerate(copy_sequence(wl))
    ])
    config = ReliabilityConfig(
        base_timeout=6.0, backoff=1.5, max_timeout=20.0,
        max_retries=args.max_retries, combine_deadline=args.gap,
    )
    rows = []
    plans = []
    monitor_violations = 0
    rates = [r / 100 for r in range(0, args.max_rate_pct + 1, args.step_pct)]
    for rate in rates:
        # When exporting a trace, record the highest-rate (most eventful) run
        # and attach the lemma monitors to it in warn-only mode.
        tracing = args.trace_out is not None and rate == rates[-1]
        plan = FaultPlan(drop_prob=rate, duplicate_prob=rate / 2,
                         reorder_prob=rate, seed=args.seed + 5)
        plans.append(plan)
        system = reliable_concurrent_system(
            tree,
            plan,
            config=config,
            latency=constant_latency(1.0),
            seed=args.seed,
            trace_enabled=tracing,
        )
        if tracing:
            from repro.obs.monitors import attach_standard_monitors

            monitors = attach_standard_monitors(system.trace, strict=False)
        result = system.run([
            ScheduledRequest(time=sr.time, request=sr.request.copy_unexecuted())
            for sr in schedule
        ])
        system.check_quiescent_invariants()
        if tracing:
            monitor_violations = _warn_violations(monitors)
            _export_trace(system.trace, args.trace_out)
        over = result.stats.overhead_by_kind()
        strict = check_strict_consistency(result.requests, tree.n)
        rows.append((
            f"{rate:.2f}",
            system.network.faults.count(),
            result.stats.goodput,
            "yes" if result.stats.goodput == ref.stats.total else "NO",
            over.get("retransmit", 0),
            over.get("ack", 0),
            over.get("duplicate", 0),
            len(result.failed_requests()),
            "ok" if not strict else f"{len(strict)} VIOLATIONS",
        ))
    bad = [r for r in rows if r[3] == "NO" or r[7] or r[8] != "ok"]
    if args.json:
        # The seed and every run's full fault plan make a failing sweep
        # reproducible from this output alone.
        print(json.dumps({
            "seed": args.seed,
            "topology": args.topology,
            "nodes": tree.n,
            "length": args.length,
            "plans": [p.to_dict() for p in plans],
            "rows": [
                dict(zip(["fault_rate", "faults", "goodput", "matches_ref",
                          "retransmits", "acks", "dups", "failed", "strict"],
                         r))
                for r in rows
            ],
            "monitor_violations": monitor_violations,
            "ok": not bad and not monitor_violations,
        }, indent=2, sort_keys=True))
    else:
        print(format_table(
            ["fault rate", "faults", "goodput", "==ref", "retransmits", "acks",
             "dups", "failed", "strict"],
            rows,
            title=(f"chaos sweep on {args.topology}/{tree.n} nodes, "
                   f"{args.length} requests (fault-free cost {ref.stats.total}):"),
        ))
        print("\nreliable layer held: goodput fault-free-identical, zero failures"
              if not bad else f"\n{len(bad)} rate(s) showed degradation")
    return 0 if not bad and not monitor_violations else 1


def cmd_trace_record(args) -> int:
    """Run a deterministic workload with full telemetry and export the trace.

    The run is seeded end-to-end, so recording the same arguments twice
    yields byte-identical JSONL files — the property the CI golden-trace
    job checks with ``trace diff``.
    """
    from repro.core.engine import ScheduledRequest
    from repro.obs.monitors import attach_standard_monitors
    from repro.report import summarize_run_data
    from repro.sim.channel import constant_latency
    from repro.sim.faults import FaultPlan
    from repro.core.engine import reliable_concurrent_system
    from repro.sim.reliability import ReliabilityConfig

    tree = make_tree(args.topology, args.nodes, args.seed)
    wl = uniform_workload(tree.n, args.length, read_ratio=args.read_ratio,
                          seed=args.seed)
    if args.mode == "seq":
        system = AggregationSystem(tree, trace_enabled=True)
        monitors = attach_standard_monitors(system.trace, strict=False)
        result = system.run(copy_sequence(wl))
    else:
        rate = args.fault_pct / 100
        system = reliable_concurrent_system(
            tree,
            FaultPlan(drop_prob=rate, duplicate_prob=rate / 2, reorder_prob=rate,
                      seed=args.seed + 5),
            config=ReliabilityConfig(base_timeout=6.0, backoff=1.5,
                                     max_timeout=20.0, combine_deadline=args.gap),
            latency=constant_latency(1.0),
            seed=args.seed,
            trace_enabled=True,
        )
        monitors = attach_standard_monitors(system.trace, strict=False)
        result = system.run([
            ScheduledRequest(time=args.gap * i, request=q)
            for i, q in enumerate(copy_sequence(wl))
        ])
    violations = _warn_violations(monitors)
    _export_trace(system.trace, args.out)
    if args.summary_json:
        data = summarize_run_data(
            result, title=f"trace record {args.mode} {args.topology}/{tree.n}")
        data["monitors"] = {"violations": violations}
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote run summary to {args.summary_json}", file=sys.stderr)
    return 1 if violations else 0


def cmd_trace_summarize(args) -> int:
    from repro.obs.export import import_jsonl, trace_summary

    trace = import_jsonl(args.trace_file)
    summary = trace_summary(trace)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    t0, t1 = summary["time_window"]
    print(f"{args.trace_file}: {summary['events']} events, "
          f"{summary['nodes']} nodes, t=[{t0}, {t1}]")
    print(f"logical messages: {summary['logical_messages']}")
    for kind, n in sorted(summary["by_kind"].items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {kind:<20}{n}")
    if summary["spans"]:
        print(f"spans: {summary['spans']}  failed: {summary['failed_spans']}")
    if summary["top_edges"]:
        print("top edges: "
              + ", ".join(f"{u}-{v} ({n})" for (u, v), n in summary["top_edges"]))
    return 0


def cmd_trace_diff(args) -> int:
    from repro.obs.export import import_jsonl, trace_diff

    a = import_jsonl(args.trace_a)
    b = import_jsonl(args.trace_b)
    diffs = trace_diff(a, b, limit=args.limit)
    if not diffs:
        print(f"traces identical ({len(a)} events)")
        return 0
    print(f"traces differ ({len(a)} vs {len(b)} events):")
    for line in diffs:
        print(f"  {line}")
    return 1


def cmd_trace_top_edges(args) -> int:
    from repro.obs.export import import_jsonl, top_edges

    trace = import_jsonl(args.trace_file)
    ranked = top_edges(trace, top=args.top)
    if not ranked:
        print("no logical message traffic in trace")
        return 0
    print(format_table(
        ["edge", "messages"],
        [(f"{u}-{v}", n) for (u, v), n in ranked],
        title=f"busiest undirected edges in {args.trace_file}:",
    ))
    return 0


def cmd_verify_lint(args) -> int:
    from repro.verify.protolint import findings_to_json, run_lint

    findings = run_lint()
    if args.json:
        print(findings_to_json(findings))
    else:
        for f in findings:
            print(f)
        print(f"protolint: {len(findings)} finding(s)"
              if findings else "protolint: clean")
    return 1 if findings else 0


def cmd_verify_explore(args) -> int:
    from repro.verify.explore import Explorer, default_script, parse_script

    tree = make_tree(args.topology, args.nodes, args.seed)
    try:
        if args.script:
            script = parse_script(args.script)
        else:
            script = default_script(tree.n, args.max_ops)
        factory, name = make_policy_factory(args.policy)
        explorer = Explorer(
            tree,
            script,
            policy_factory=factory,
            max_states=args.max_states,
            backend=args.backend,
            independence=args.independence,
        )
    except ValueError as exc:
        raise SystemExit(f"verify explore: {exc}")
    result = explorer.run()
    if args.json:
        data = result.to_dict()
        data["script"] = [str(s) for s in script]
        data["policy"] = name
        data["independence"] = args.independence
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"explore {args.topology}/{tree.n} nodes, policy {name}, "
              f"independence {args.independence}, "
              f"script [{', '.join(str(s) for s in script)}]:")
        print(f"  states explored:      {result.states}")
        print(f"  transitions executed: {result.transitions}")
        print(f"  sleep-set pruned:     {result.slept} "
              f"(reduction ratio {result.reduction_ratio:.2%})")
        print(f"  terminal schedules:   {result.terminals} "
              f"({result.serial_terminals} serial)")
        if result.truncated:
            print(f"  TRUNCATED at {args.max_states} states — not exhaustive",
                  file=sys.stderr)
        for v in result.violations:
            print(f"  VIOLATION [{v.kind}] {v.message}", file=sys.stderr)
            print(f"    schedule: {' ; '.join(v.schedule)}", file=sys.stderr)
        if result.ok:
            print("  all interleavings consistent: lemmas, causal, "
                  "strict-on-serial, no deadlock")
    return 0 if result.ok else 1


def cmd_verify_effects(args) -> int:
    """The extracted protocol reaction graph + derived POR independence —
    the one source of truth the model checker, lint and docs consume."""
    from repro.verify.effects import (
        check_reaction,
        derived_independence,
        reaction_graph_json,
    )

    if args.json:
        print(reaction_graph_json())
        return 0 if not check_reaction() else 1
    from repro.verify.effects import extract_reaction_graph

    graph = extract_reaction_graph()
    indep = derived_independence()
    findings = check_reaction()
    for kind in sorted(graph.core):
        eff = graph.core[kind]
        sends = ", ".join(
            f"{k}→{'/'.join(roles)}" for k, roles in eff.sends
        ) or "—"
        print(f"on {kind}:")
        print(f"  sends:  {sends}")
        print(f"  emits:  {', '.join(sorted(eff.emits)) or '—'}")
        print(f"  reads:  {', '.join(sorted(eff.reads))}")
        print(f"  writes: {', '.join(sorted(eff.writes))}")
    indep_desc = (
        "node-local — deliveries at distinct nodes commute"
        if indep.node_local
        else "DEGRADED to full dependence"
    )
    print(f"independence: {indep_desc}")
    for item in indep.unknown_effects:
        print(f"  non-local effect: {item}", file=sys.stderr)
    for f in findings:
        print(f"  {f}", file=sys.stderr)
    print(f"reaction graph: {len(findings)} finding(s)"
          if findings else "reaction graph: clean (matches reaction_spec)")
    return 1 if findings else 0


def cmd_verify_causal(args) -> int:
    from repro.obs.export import import_jsonl
    from repro.verify.causal import check_trace

    try:
        events = import_jsonl(args.trace_file)
    except OSError as exc:
        raise SystemExit(f"verify causal: cannot read {args.trace_file}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"verify causal: {exc}")
    report = check_trace(events, n_nodes=args.nodes)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"{args.trace_file}: {report.events} events — "
              f"{report.sends} sends / {report.deliveries} deliveries "
              f"(via {report.delivery_kind!r}), {report.writes} writes, "
              f"{report.combines_checked} combines checked")
        for v in report.violations:
            print(f"  VIOLATION [{v.kind}] {v.message}", file=sys.stderr)
        if report.ok:
            print("  exactly-once FIFO delivery and causal visibility hold")
    return 0 if report.ok else 1


# ---------------------------------------------------------------- serve
def cmd_serve_node(args) -> int:
    """Internal: one node process of a live cluster (spawned by ``serve``)."""
    from repro.net.server import serve_node

    return serve_node(args.config, args.proc, args.incarnation)


def cmd_serve(args) -> int:
    """Run the tree as real OS processes over TCP, drive a workload, then
    merge the per-process traces and re-verify them offline."""
    import asyncio
    import pathlib
    import random

    from repro.net.cluster import ClusterConfig, ClusterSupervisor
    from repro.net.merge import merge_run_dir, verify_merged
    from repro.obs.export import _dump_line
    from repro.workloads.requests import COMBINE, WRITE

    tree = make_tree(args.topology, args.nodes, args.seed)
    run_dir = pathlib.Path(args.run_dir)
    config = ClusterConfig.for_tree(
        tree,
        run_dir,
        nodes_per_proc=args.nodes_per_proc,
        policy=args.policy,
        lease_ttl=args.lease_ttl,
        checkpoint_interval=args.checkpoint_interval,
    )

    async def drive():
        sup = ClusterSupervisor(config)
        await sup.start()
        rng = random.Random(args.seed)
        victims: list = []
        kill_at = restart_at = None
        if args.chaos:
            k = min(2, max(1, len(config.procs) - 1))
            victims = rng.sample(config.procs, k)
            kill_at = args.length // 3
            restart_at = (2 * args.length) // 3
        dead: set = set()
        writes = combines = 0
        try:
            for i in range(args.length):
                if kill_at is not None and i == kill_at:
                    for p in victims:
                        await sup.kill_proc(p)
                        dead.add(p)
                if restart_at is not None and i == restart_at:
                    for p in victims:
                        await sup.restart_proc(p)
                        dead.discard(p)
                node = rng.randrange(config.n)
                is_write = rng.random() < args.write_ratio
                if dead and not is_write and rng.random() < 0.7:
                    is_write = True  # bound the dead-window combine timeouts
                timeout = args.chaos_timeout if dead else args.req_timeout
                try:
                    if is_write:
                        writes += 1
                        await sup.submit(
                            node, WRITE, arg=rng.uniform(-10.0, 10.0),
                            timeout=timeout,
                        )
                    else:
                        combines += 1
                        await sup.submit(node, COMBINE, timeout=timeout)
                except (RuntimeError, TimeoutError, ConnectionError, OSError) as exc:
                    sup.failed.append({
                        "req": None, "node": node,
                        "op": WRITE if is_write else COMBINE,
                        "error": str(exc),
                    })
        finally:
            settled = await sup.quiesce(timeout=args.quiesce_timeout)
            await sup.shutdown()
        return sup, settled, writes, combines, victims

    sup, settled, writes, combines, victims = asyncio.run(drive())

    events, files, synthesized = merge_run_dir(run_dir)
    merged_path = run_dir / "merged.jsonl"
    with open(merged_path, "w") as fh:
        for ev in events:
            fh.write(_dump_line(ev) + "\n")
    verdict = verify_merged(events, n_nodes=config.n)

    completed_combines = sum(
        1 for r in sup.results if r.get("op") == COMBINE and "value" in r
    )
    failed_combines = sum(1 for r in sup.failed if r.get("op") == COMBINE)
    combines_accounted = completed_combines + failed_combines == combines
    ok = bool(verdict["ok"] and settled and combines_accounted)
    summary = {
        "nodes": config.n,
        "procs": len(config.procs),
        "chaos": bool(args.chaos),
        "victims": sorted(victims),
        "requests": args.length,
        "writes": writes,
        "combines": combines,
        "completed_combines": completed_combines,
        "failed_requests": len(sup.failed),
        "settled": settled,
        "trace_files": files,
        "merged": str(merged_path),
        "merged_events": len(events),
        "synthesized_losses": synthesized,
        "verify": verdict,
        "ok": ok,
    }
    (run_dir / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"serve: {config.n} nodes across {len(config.procs)} processes "
              f"({'chaos: killed ' + ', '.join(victims) if victims else 'no chaos'})")
        print(f"  requests: {writes} writes + {combines} combines "
              f"({completed_combines} combines completed, "
              f"{len(sup.failed)} requests failed)")
        print(f"  merged {len(events)} events from {len(files)} trace files "
              f"({synthesized} crash losses synthesized) -> {merged_path}")
        causal = verdict["causal"]
        print(f"  verify: causal {'OK' if causal['ok'] else 'FAIL'} "
              f"({causal['combines_checked']} combines checked), "
              f"monitors {'OK' if not verdict['monitor_violations'] else 'FAIL'}")
        for v in causal["violations"]:
            print(f"  VIOLATION [{v['kind']}] {v['message']}", file=sys.stderr)
        for v in verdict["monitor_violations"]:
            print(f"  VIOLATION [monitor] {v}", file=sys.stderr)
        if not settled:
            print("  WARNING: cluster did not settle before shutdown",
                  file=sys.stderr)
    return 0 if ok else 1


# ---------------------------------------------------------------- perf
def _load_profile(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"perf: cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"perf: {path} is not valid JSON: {exc}")
    if not isinstance(data, dict) or "phases" not in data:
        raise SystemExit(f"perf: {path} is not a perf profile (no 'phases' key)")
    return data


def cmd_perf_record(args) -> int:
    """Run a seeded workload with the wall-clock profiler and the online
    cost meter attached; write the profile JSON and a collapsed-stack file.

    The profile captures per-phase wall-clock totals (inclusive and self),
    call counts, named counters, the collapsed stacks, and — for static-tree
    runs — the live cost-vs-OPT report from the streaming cost meter.
    """
    from repro.core.engine import ScheduledRequest, reliable_concurrent_system
    from repro.obs.perf import PerfProfiler
    from repro.sim.channel import constant_latency
    from repro.sim.faults import FaultPlan
    from repro.sim.reliability import ReliabilityConfig

    tree = make_tree(args.topology, args.nodes, args.seed)
    wl = uniform_workload(tree.n, args.length, read_ratio=args.read_ratio,
                          seed=args.seed)
    profiler = PerfProfiler()
    if args.mode == "seq":
        system = AggregationSystem(tree, profiler=profiler, cost_accounting=True)
        result = system.run(copy_sequence(wl))
    else:
        rate = args.fault_pct / 100
        system = reliable_concurrent_system(
            tree,
            FaultPlan(drop_prob=rate, duplicate_prob=rate / 2, reorder_prob=rate,
                      seed=args.seed + 5),
            config=ReliabilityConfig(base_timeout=6.0, backoff=1.5,
                                     max_timeout=20.0, combine_deadline=args.gap),
            latency=constant_latency(1.0),
            seed=args.seed,
            profiler=profiler,
            cost_accounting=True,
        )
        result = system.run([
            ScheduledRequest(time=args.gap * i, request=q)
            for i, q in enumerate(copy_sequence(wl))
        ])
    data = profiler.snapshot()
    data["run"] = {
        "mode": args.mode,
        "topology": args.topology,
        "nodes": tree.n,
        "length": len(wl),
        "read_ratio": args.read_ratio,
        "seed": args.seed,
        "messages": result.total_messages,
    }
    if result.cost is not None:
        data["cost"] = result.cost.to_dict()
    collapsed_path = args.collapsed or (args.out + ".collapsed")
    n_stacks = profiler.write_collapsed(collapsed_path)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote profile to {args.out} "
          f"({len(data['phases'])} phases, {result.total_messages} messages)")
    print(f"wrote {n_stacks} collapsed stacks to {collapsed_path}")
    _print_profile(data, top=5)
    return 0


def _print_profile(data: dict, top: Optional[int] = None) -> None:
    phases = data.get("phases", {})
    rows = sorted(
        ((name, p["count"], p["total_s"], p["self_s"]) for name, p in phases.items()),
        key=lambda r: -r[3],
    )
    if top is not None:
        rows = rows[:top]
    print(format_table(
        ["phase", "count", "total s", "self s"],
        [(n, c, f"{t:.6f}", f"{s:.6f}") for n, c, t, s in rows],
        title="hottest phases (by self time):" if top is not None else "phases:",
    ))
    counters = data.get("counters", {})
    if counters:
        print("counters: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())))
    cost = data.get("cost")
    if cost:
        ratio = cost["competitive_ratio"]
        ratio_txt = f"{ratio:.4f}" if ratio is not None else "inf"
        print(f"cost vs OPT: observed {cost['observed_messages']}, "
              f"lower bound {cost['opt_lower_bound']}, live ratio {ratio_txt}")


def cmd_perf_report(args) -> int:
    data = _load_profile(args.profile)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    run = data.get("run", {})
    if run:
        print(f"profile: {run.get('mode', '?')} "
              f"{run.get('topology', '?')}/{run.get('nodes', '?')} nodes, "
              f"{run.get('length', '?')} requests, seed {run.get('seed', '?')}")
    _print_profile(data)
    return 0


def cmd_perf_flame(args) -> int:
    """Emit the profile's collapsed stacks (``frame;frame weight`` lines) —
    the input format of standard flamegraph renderers."""
    data = _load_profile(args.profile)
    stacks = data.get("stacks", {})
    from repro.obs.perf import _COLLAPSED_SCALE

    lines = [
        f"{key} {round(weight * _COLLAPSED_SCALE)}"
        for key, weight in sorted(stacks.items())
        if round(weight * _COLLAPSED_SCALE) > 0
    ]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"wrote {len(lines)} collapsed stacks to {args.out}")
    else:
        for line in lines:
            print(line)
    return 0


def cmd_perf_compare(args) -> int:
    """Per-phase wall-clock deltas between two profiles; exit 1 when any
    shared phase's self time regressed by more than ``--threshold``."""
    base = _load_profile(args.baseline)
    new = _load_profile(args.candidate)
    base_phases = base.get("phases", {})
    new_phases = new.get("phases", {})
    shared = sorted(set(base_phases) & set(new_phases))
    rows = []
    regressions = []
    for name in shared:
        b, n = base_phases[name]["self_s"], new_phases[name]["self_s"]
        delta = (n - b) / b if b > 0 else (float("inf") if n > 0 else 0.0)
        rows.append((name, f"{b:.6f}", f"{n:.6f}", f"{delta:+.1%}"))
        if b >= args.min_seconds and delta > args.threshold:
            regressions.append((name, delta))
    print(format_table(
        ["phase", "baseline self s", "candidate self s", "delta"],
        rows,
        title=f"{args.baseline} vs {args.candidate}:",
    ))
    only_base = sorted(set(base_phases) - set(new_phases))
    only_new = sorted(set(new_phases) - set(base_phases))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_new:
        print(f"only in candidate: {', '.join(only_new)}")
    if regressions:
        for name, delta in regressions:
            print(f"REGRESSION: {name} self time {delta:+.1%} "
                  f"(threshold {args.threshold:.0%})", file=sys.stderr)
        return 1
    print(f"no phase regressed beyond {args.threshold:.0%}")
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Aggregation over Trees (IPPS 2007) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--topology", default="binary",
                       choices=["path", "star", "binary", "random"])
        p.add_argument("--nodes", type=int, default=15)
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("demo", help="run a small aggregation demo")
    add_common(p)
    p.add_argument("--backend", default="reference",
                   choices=["reference", "flat"],
                   help="execution backend (flat = vectorized engine)")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable run summary (JSON)")
    p.add_argument("--trace-out", help="export the telemetry trace as JSONL")
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("lp", help="solve the Figure-5 LP")
    p.set_defaults(fn=cmd_lp)

    p = sub.add_parser("ratio", help="run a workload and report ratios")
    add_common(p)
    p.add_argument("--length", type=int, default=500)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--policy", default="rww",
                   help="rww | always | never | ab:a,b | random:p")
    p.add_argument("--save", help="save the workload as JSONL")
    p.add_argument("--load", help="replay a JSONL workload")
    p.set_defaults(fn=cmd_ratio)

    p = sub.add_parser("exact", help="exact competitive ratio (game solver)")
    p.add_argument("--policy", default="rww",
                   help="rww | always | never | ab:a,b | ttl:k")
    p.set_defaults(fn=cmd_exact)

    p = sub.add_parser("adversary", help="Theorem-3 adversary run")
    p.add_argument("--a", type=int, default=1)
    p.add_argument("--b", type=int, default=2)
    p.add_argument("--rounds", type=int, default=300)
    p.add_argument("--strong", action="store_true",
                   help="include reader-side noop writes (ADV+N)")
    p.set_defaults(fn=cmd_adversary)

    p = sub.add_parser("baselines", help="read-ratio sweep vs static baselines")
    add_common(p)
    p.add_argument("--length", type=int, default=500)
    p.set_defaults(fn=cmd_baselines)

    p = sub.add_parser("chaos", help="fault sweep under reliable delivery")
    add_common(p)
    p.add_argument("--length", type=int, default=40)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--gap", type=float, default=600.0,
                   help="virtual-time gap between requests (also the combine deadline)")
    p.add_argument("--max-rate-pct", type=int, default=20,
                   help="sweep drop/reorder rates from 0%% to this (dup at half)")
    p.add_argument("--step-pct", type=int, default=5)
    p.add_argument("--max-retries", type=int, default=25)
    p.add_argument("--trace-out",
                   help="export the highest-rate run's telemetry trace as JSONL "
                        "(lemma monitors attached; violations warn and fail)")
    p.add_argument("--churn", action="store_true",
                   help="scheduled crash/recover/partition faults + drops, "
                        "healed by checkpoints and lease TTLs "
                        "(recovery subsystem end-to-end)")
    p.add_argument("--churn-cycles", type=int, default=4,
                   help="churn mode: crash/recover cycles on distinct nodes")
    p.add_argument("--drop-pct", type=float, default=5.0,
                   help="churn mode: message drop rate in percent")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output incl. the seed and the "
                        "full fault plan(s) for exact reproduction")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("exact-grid", help="exact ratios for the (a, b) grid")
    p.add_argument("--max-a", type=int, default=3)
    p.add_argument("--max-b", type=int, default=4)
    p.set_defaults(fn=cmd_exact_grid)

    p = sub.add_parser("gap", help="per-edge relaxation vs exact global OPT")
    add_common(p)
    p.add_argument("--length", type=int, default=25)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.set_defaults(fn=cmd_gap)

    p = sub.add_parser("trace", help="record / inspect JSONL telemetry traces")
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser("record",
                         help="run a seeded workload, export its trace")
    add_common(tp)
    tp.add_argument("--length", type=int, default=60)
    tp.add_argument("--read-ratio", type=float, default=0.5)
    tp.add_argument("--mode", default="seq", choices=["seq", "chaos"],
                    help="sequential engine or concurrent+lossy with the "
                         "reliable-delivery layer")
    tp.add_argument("--fault-pct", type=float, default=10.0,
                    help="chaos mode: drop/reorder rate in percent (dup at half)")
    tp.add_argument("--gap", type=float, default=600.0,
                    help="chaos mode: virtual-time gap between requests")
    tp.add_argument("--out", required=True, help="JSONL output path")
    tp.add_argument("--summary-json",
                    help="also write the machine-readable run summary here")
    tp.set_defaults(fn=cmd_trace_record)

    tp = tsub.add_parser("summarize", help="digest a JSONL trace")
    tp.add_argument("trace_file")
    tp.add_argument("--json", action="store_true")
    tp.set_defaults(fn=cmd_trace_summarize)

    tp = tsub.add_parser("diff", help="compare two JSONL traces event by event")
    tp.add_argument("trace_a")
    tp.add_argument("trace_b")
    tp.add_argument("--limit", type=int, default=20,
                    help="max difference lines to print")
    tp.set_defaults(fn=cmd_trace_diff)

    tp = tsub.add_parser("top-edges", help="busiest undirected edges in a trace")
    tp.add_argument("trace_file")
    tp.add_argument("--top", type=int, default=5)
    tp.set_defaults(fn=cmd_trace_top_edges)

    p = sub.add_parser("perf",
                       help="wall-clock profiling and online cost accounting")
    psub = p.add_subparsers(dest="perf_command", required=True)

    pp = psub.add_parser("record",
                         help="run a seeded workload under the profiler + "
                              "cost meter; write profile JSON + collapsed stacks")
    add_common(pp)
    pp.add_argument("--length", type=int, default=200)
    pp.add_argument("--read-ratio", type=float, default=0.5)
    pp.add_argument("--mode", default="seq", choices=["seq", "chaos"],
                    help="sequential engine or concurrent+lossy with the "
                         "reliable-delivery layer (profiles retransmits too)")
    pp.add_argument("--fault-pct", type=float, default=10.0,
                    help="chaos mode: drop/reorder rate in percent (dup at half)")
    pp.add_argument("--gap", type=float, default=600.0,
                    help="chaos mode: virtual-time gap between requests")
    pp.add_argument("--out", required=True, help="profile JSON output path")
    pp.add_argument("--collapsed",
                    help="collapsed-stack output path (default: <out>.collapsed)")
    pp.set_defaults(fn=cmd_perf_record)

    pp = psub.add_parser("report", help="pretty-print a recorded profile")
    pp.add_argument("profile")
    pp.add_argument("--json", action="store_true")
    pp.set_defaults(fn=cmd_perf_report)

    pp = psub.add_parser("flame",
                         help="emit collapsed stacks (flamegraph input) "
                              "from a recorded profile")
    pp.add_argument("profile")
    pp.add_argument("--out", help="write to a file instead of stdout")
    pp.set_defaults(fn=cmd_perf_flame)

    pp = psub.add_parser("compare",
                         help="per-phase deltas between two profiles; "
                              "nonzero exit on regression")
    pp.add_argument("baseline")
    pp.add_argument("candidate")
    pp.add_argument("--threshold", type=float, default=0.25,
                    help="fail when a phase's self time grows by more than "
                         "this fraction (default 0.25)")
    pp.add_argument("--min-seconds", type=float, default=1e-4,
                    help="ignore phases below this baseline self time")
    pp.set_defaults(fn=cmd_perf_compare)

    p = sub.add_parser("verify",
                       help="protocol verification toolkit (see DESIGN.md)")
    vsub = p.add_subparsers(dest="verify_command", required=True)

    vp = vsub.add_parser("lint",
                         help="AST lint: dispatch completeness, trace schemas, "
                              "layering, deprecated shims")
    vp.add_argument("--json", action="store_true",
                    help="machine-readable findings (JSON array)")
    vp.set_defaults(fn=cmd_verify_lint)

    vp = vsub.add_parser("explore",
                         help="exhaustive small-scope model checking of "
                              "delivery interleavings")
    vp.add_argument("--topology", default="path",
                    choices=["path", "star", "binary", "random"])
    vp.add_argument("--nodes", type=int, default=3)
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--max-ops", type=int, default=4,
                    help="length of the generated request script")
    vp.add_argument("--script",
                    help="explicit script, e.g. 'w0=1,c2,k1,r1,c0' "
                         "(wN=X write, cN combine, kN crash, rN recover; "
                         "overrides --max-ops)")
    vp.add_argument("--policy", default="rww",
                    help="rww | always | never | ab:a,b")
    vp.add_argument("--max-states", type=int, default=500_000)
    vp.add_argument("--backend", default="reference",
                    choices=["reference", "flat"],
                    help="execution backend to explore (flat = vectorized "
                         "engine, checked against the same oracles)")
    vp.add_argument("--independence", default="derived",
                    choices=["derived", "hand"],
                    help="POR independence relation: derived from the "
                         "static effect analysis (default) or the "
                         "original hand-coded one")
    vp.add_argument("--json", action="store_true")
    vp.set_defaults(fn=cmd_verify_explore)

    vp = vsub.add_parser("effects",
                         help="extracted protocol reaction graph, PL50x "
                              "spec check, and the derived POR "
                              "independence relation")
    vp.add_argument("--json", action="store_true",
                    help="full reaction-graph artifact "
                         "(reaction_graph.json for CI)")
    vp.set_defaults(fn=cmd_verify_effects)

    vp = vsub.add_parser("causal",
                         help="offline happens-before check of a recorded "
                              "JSONL trace")
    vp.add_argument("trace_file")
    vp.add_argument("--nodes", type=int,
                    help="tree size (default: inferred from the trace)")
    vp.add_argument("--json", action="store_true")
    vp.set_defaults(fn=cmd_verify_causal)

    p = sub.add_parser("serve",
                       help="run the tree as real OS processes over TCP and "
                            "re-verify the merged traces offline")
    add_common(p)
    p.add_argument("--nodes-per-proc", type=int, default=1,
                   help="node automata hosted per OS process")
    p.add_argument("--policy", default="rww",
                   help="rww | always | never | ab:a,b")
    p.add_argument("--length", type=int, default=40,
                   help="number of write/combine requests to drive")
    p.add_argument("--write-ratio", type=float, default=0.6)
    p.add_argument("--lease-ttl", type=float, default=2.0,
                   help="wall-clock lease TTL seconds (expiry sweep)")
    p.add_argument("--checkpoint-interval", type=float, default=1.0,
                   help="wall-clock seconds between durable checkpoints")
    p.add_argument("--chaos", action="store_true",
                   help="SIGKILL two processes mid-run and restart them")
    p.add_argument("--run-dir", required=True,
                   help="directory for traces, checkpoints and the summary")
    p.add_argument("--req-timeout", type=float, default=30.0)
    p.add_argument("--chaos-timeout", type=float, default=6.0,
                   help="request timeout while processes are down")
    p.add_argument("--quiesce-timeout", type=float, default=30.0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("serve-node",
                       help=argparse.SUPPRESS)
    p.add_argument("--config", required=True)
    p.add_argument("--proc", required=True)
    p.add_argument("--incarnation", type=int, default=0)
    p.set_defaults(fn=cmd_serve_node)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
