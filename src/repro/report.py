"""Human-readable rendering of trees, lease graphs and run summaries.

Plain-ASCII output (no plotting dependencies) used by the examples and the
CLI: :func:`render_tree` draws the rooted topology with lease-direction
annotations, :func:`summarize_run` condenses an
:class:`~repro.core.engine.ExecutionResult` into the numbers a reader
wants first (request mix, per-kind messages, per-request averages, lease
churn).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import AggregationSystem, ExecutionResult
from repro.obs.metrics import DEFAULT_BUCKETS, LATENCY_BUCKETS, Histogram
from repro.obs.spans import span_summary
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE


def render_tree(
    tree: Tree,
    root: int = 0,
    granted: Optional[Sequence[Tuple[int, int]]] = None,
    labels: Optional[Dict[int, str]] = None,
) -> str:
    """ASCII art of the tree rooted at ``root``.

    Each child edge is annotated with the lease directions present in
    ``granted`` (a list of directed pairs ``(u, v)`` meaning ``u`` pushes
    updates to ``v``): ``^`` = lease toward the parent, ``v`` = lease
    toward the child, ``=`` = both, ``-`` = none.
    """
    granted_set = set(granted or ())
    labels = labels or {}
    parents = tree.bfs_parents(root)
    children: Dict[int, List[int]] = {u: [] for u in tree.nodes()}
    for u in tree.nodes():
        if u != root:
            children[parents[u]].append(u)
    for kids in children.values():
        kids.sort()

    lines: List[str] = []

    def node_text(u: int) -> str:
        extra = f" {labels[u]}" if u in labels else ""
        return f"[{u}]{extra}"

    def edge_mark(child: int, parent: int) -> str:
        up = (child, parent) in granted_set
        down = (parent, child) in granted_set
        if up and down:
            return "="
        if up:
            return "^"
        if down:
            return "v"
        return "-"

    def walk(u: int, prefix: str, is_last: bool, mark: str) -> None:
        connector = "" if prefix == "" and mark == "" else ("`-" if is_last else "|-")
        annotated = f"{connector}{mark}{'-' if mark else ''}" if connector else ""
        lines.append(f"{prefix}{annotated}{node_text(u)}")
        ext = "" if prefix == "" and mark == "" else ("   " if is_last else "|  ")
        for i, c in enumerate(children[u]):
            walk(c, prefix + ext, i == len(children[u]) - 1, edge_mark(c, u))

    walk(root, "", True, "")
    return "\n".join(lines)


def render_lease_graph(system: AggregationSystem, root: int = 0) -> str:
    """The system's current topology with its live lease directions."""
    return render_tree(system.tree, root=root, granted=system.lease_graph_edges())


def summarize_run(result: ExecutionResult, title: str = "run summary") -> str:
    """A compact multi-line summary of an executed request sequence."""
    combines = [q for q in result.requests if q.op == COMBINE]
    writes = [q for q in result.requests if q.op == WRITE]
    kinds = result.stats.by_kind()
    n_req = len(result.requests)
    lines = [
        title,
        "-" * len(title),
        f"tree:      {result.tree.n} nodes, diameter {result.tree.diameter()}",
        f"requests:  {n_req}  ({len(combines)} combines, {len(writes)} writes)",
        f"messages:  {result.total_messages}"
        + (f"  ({result.total_messages / n_req:.2f}/request)" if n_req else ""),
    ]
    for kind in ("probe", "response", "update", "release"):
        if kind in kinds:
            lines.append(f"  {kind:<9}{kinds[kind]}")
    overhead = result.stats.overhead_by_kind()
    if overhead:
        lines.append(
            f"recovery:  {result.stats.overhead_total} overhead messages "
            "(excluded from the cost metric above)"
        )
        for kind in sorted(overhead):
            lines.append(f"  {kind:<11}{overhead[kind]}")
    failed = result.failed_requests()
    if failed:
        lines.append(
            f"FAILED:    {len(failed)} request(s) gave up "
            f"(nodes {sorted(q.node for q in failed)})"
        )
    grants = result.trace.count("lease_granted") if len(result.trace) else None
    breaks = result.trace.count("lease_broken") if len(result.trace) else None
    if grants is not None and (grants or breaks):
        lines.append(f"lease churn: {grants} grants, {breaks} breaks (traced)")
    hottest = [(e, n) for e, n in busiest_edges(result, top=3) if n]
    if hottest:
        lines.append(
            "hottest edges: "
            + ", ".join(f"{u}-{v} ({n} msgs)" for (u, v), n in hottest)
        )
    if result.cost is not None:
        cost = result.cost
        ratio = f"{cost.ratio:.3f}" if cost.ratio != float("inf") else "inf"
        partial = " (partial: scoped combines skipped)" if cost.partial else ""
        lines.append(
            f"cost vs OPT: observed {cost.observed}, lower bound "
            f"{cost.opt_lower_bound}, live ratio {ratio}{partial}"
        )
        worst = [(e, obs, opt) for e, obs, opt in cost.regret if obs - opt > 0][:3]
        if worst:
            lines.append(
                "  top regret: "
                + ", ".join(
                    f"{u}->{v} (+{obs - opt})" for (u, v), obs, opt in worst
                )
            )
    if combines:
        last = combines[-1]
        lines.append(f"last combine @ node {last.node}: {last.retval!r}")
    return "\n".join(lines)


def _histogram_dict(result: ExecutionResult, name: str, op: Optional[str] = None) -> Dict[str, Any]:
    """The named histogram from the run's registry, rebuilt from spans when
    the registry never saw it (older results, hand-built ExecutionResults)."""
    metrics = result.metrics
    if metrics is not None:
        for key, hist in metrics.histogram_values(name).items():
            if op is None or dict(key).get("op") == op:
                return hist.to_dict()
    # Fallback: derive from spans.
    hist = Histogram(LATENCY_BUCKETS if name == "combine_latency" else DEFAULT_BUCKETS)
    for s in result.spans:
        if name == "combine_latency" and s.op == COMBINE:
            hist.observe(s.duration)
        elif name == "messages_per_request" and (op is None or s.op == op):
            hist.observe(s.messages)
    return hist.to_dict()


def summarize_run_data(result: ExecutionResult, title: str = "run summary") -> Dict[str, Any]:
    """Machine-readable companion of :func:`summarize_run`.

    The dict is JSON-safe and includes the per-request histograms
    (messages/request split by op, combine virtual-clock latency), the
    hottest edges, the recovery-overhead breakdown and the span rollup —
    the payload behind ``--json`` CLI modes and benchmark artifacts.
    """
    combines = [q for q in result.requests if q.op == COMBINE]
    writes = [q for q in result.requests if q.op == WRITE]
    n_req = len(result.requests)
    failed = result.failed_requests()
    data: Dict[str, Any] = {
        "title": title,
        "tree": {"nodes": result.tree.n, "diameter": result.tree.diameter()},
        "requests": {"total": n_req, "combines": len(combines), "writes": len(writes),
                     "failed": len(failed)},
        "messages": {
            "total": result.total_messages,
            "per_request": (result.total_messages / n_req) if n_req else 0.0,
            "by_kind": dict(sorted(result.stats.by_kind().items())),
        },
        "overhead": {
            "total": result.stats.overhead_total,
            "by_kind": dict(sorted(result.stats.overhead_by_kind().items())),
        },
        "histograms": {
            "messages_per_request": {
                "combine": _histogram_dict(result, "messages_per_request", op=COMBINE),
                "write": _histogram_dict(result, "messages_per_request", op=WRITE),
            },
            "combine_latency": _histogram_dict(result, "combine_latency"),
        },
        "hottest_edges": [
            [list(e), n] for e, n in busiest_edges(result, top=3) if n
        ],
        "spans": span_summary(result.spans),
    }
    if result.cost is not None:
        data["cost"] = result.cost.to_dict()
    if len(result.trace):
        data["lease_churn"] = {
            "grants": result.trace.count("lease_granted"),
            "breaks": result.trace.count("lease_broken"),
        }
    if combines:
        last = combines[-1]
        data["last_combine"] = {"node": last.node, "value": last.retval}
    return data


def busiest_edges(result: ExecutionResult, top: int = 5) -> List[Tuple[Tuple[int, int], int]]:
    """The ``top`` undirected edges by total message volume."""
    totals: Dict[Tuple[int, int], int] = {}
    for u, v in result.tree.edges:
        totals[(u, v)] = result.stats.undirected_edge_total(u, v)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
