"""Reliable FIFO channels with pluggable latency.

Section 2 assumes *reliable FIFO communication channels between neighboring
nodes*.  :class:`FifoChannel` models one **directed** edge: messages are
delivered exactly once, in send order.  With a random latency model, FIFO
order is enforced by clamping each delivery time to be no earlier than the
previous one on the same channel (the standard trick for FIFO links over
i.i.d. delays).
"""

from __future__ import annotations

import random
from functools import partial
from typing import Any, Callable, Optional

from repro.sim.scheduler import Simulator

#: A latency model maps (src, dst, rng) -> a non-negative delay sample.
LatencyModel = Callable[[int, int, random.Random], float]


def constant_latency(delay: float = 1.0) -> LatencyModel:
    """Every message takes exactly ``delay`` time units."""
    if delay < 0:
        raise ValueError(f"delay must be non-negative, got {delay}")
    return lambda _src, _dst, _rng: delay


def uniform_latency(lo: float, hi: float) -> LatencyModel:
    """Latency sampled uniformly from ``[lo, hi]`` per message."""
    if not (0 <= lo <= hi):
        raise ValueError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
    return lambda _src, _dst, rng: rng.uniform(lo, hi)


def exponential_latency(mean: float) -> LatencyModel:
    """Latency sampled from an exponential with the given mean."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    return lambda _src, _dst, rng: rng.expovariate(1.0 / mean)


class FifoChannel:
    """One directed reliable FIFO link ``src -> dst``.

    Parameters
    ----------
    sim:
        The simulator supplying the clock and event queue.
    src, dst:
        Endpoint node ids (for latency models and traces).
    deliver:
        Callback invoked as ``deliver(payload)`` at the delivery time.
    latency:
        A :data:`LatencyModel`; defaults to constant 1.
    rng:
        Random source for the latency model.
    """

    def __init__(
        self,
        sim: Simulator,
        src: int,
        dst: int,
        deliver: Callable[[Any], None],
        latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self._deliver = deliver
        self._latency = latency if latency is not None else constant_latency(1.0)
        self._rng = rng if rng is not None else random.Random(0)
        self._last_delivery = 0.0
        self.sent = 0
        self.delivered = 0

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered."""
        return self.sent - self.delivered

    def send(self, payload: Any) -> float:
        """Enqueue ``payload``; returns its (FIFO-clamped) delivery time."""
        delay = self._latency(self.src, self.dst, self._rng)
        if delay < 0:
            raise ValueError(f"latency model returned negative delay {delay}")
        t = max(self.sim.now + delay, self._last_delivery)
        self._last_delivery = t
        self.sent += 1
        # Bound-method partial (not a closure) so a deep-copied simulator
        # heap delivers into the cloned channel, not the original.
        self.sim.schedule_at(
            t, partial(self._fire, payload), label=f"deliver {self.src}->{self.dst}"
        )
        return t

    def _fire(self, payload: Any) -> None:
        self.delivered += 1
        self._deliver(payload)
