"""Discrete-event simulation substrate.

The paper's setting is a distributed network with reliable FIFO channels; the
cost metric is the total number of messages, so the substrate's job is exact
message accounting plus two execution models:

* **Sequential executions** (Section 2's quiescent-state model): each request
  runs to quiescence before the next is initiated.  The sequential engine in
  :mod:`repro.core.engine` drives nodes directly with a synchronous message
  queue built on :class:`~repro.sim.network.Network`.
* **Concurrent executions** (Section 5): requests overlap in time.  The
  :class:`~repro.sim.scheduler.Simulator` provides a virtual clock and an
  event heap; :class:`~repro.sim.channel.FifoChannel` delivers messages with
  (optionally random) latency while enforcing FIFO order per directed edge.

:class:`~repro.sim.stats.MessageStats` counts messages per directed edge and
per message type — the exact quantities in the paper's cost decomposition
(Lemma 3.9) — and :class:`~repro.sim.trace.TraceLog` records structured
events for debugging and for the consistency checkers.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.scheduler import Simulator, Timer
from repro.sim.channel import FifoChannel, LatencyModel, constant_latency, uniform_latency
from repro.sim.network import Network, SynchronousNetwork
from repro.sim.faults import FaultLog, FaultPlan, FaultyNetwork
from repro.sim.reliability import (
    DeliveryFailure,
    ReliabilityConfig,
    ReliabilitySummary,
    ReliableNetwork,
)
from repro.sim.transport import Transport, TransportConfig, build_transport
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "FifoChannel",
    "LatencyModel",
    "constant_latency",
    "uniform_latency",
    "Network",
    "SynchronousNetwork",
    "FaultLog",
    "FaultPlan",
    "FaultyNetwork",
    "DeliveryFailure",
    "ReliabilityConfig",
    "ReliabilitySummary",
    "ReliableNetwork",
    "Transport",
    "TransportConfig",
    "build_transport",
    "MessageStats",
    "TraceEvent",
    "TraceLog",
]
