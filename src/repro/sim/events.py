"""Event primitives for the discrete-event simulator.

An :class:`Event` is a scheduled callback; the :class:`EventQueue` is a
binary-heap priority queue ordered by ``(time, sequence)``.  The sequence
number makes the order of same-time events deterministic (insertion order),
which keeps every simulation reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, seq)``.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    seq:
        Tie-breaking sequence number (monotone per queue).
    action:
        Zero-argument callable executed when the event fires.
    cancelled:
        Cancelled events are skipped when popped.
    label:
        Optional human-readable label for traces.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time``; returns the (cancellable) event."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """The firing time of the next non-cancelled event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
