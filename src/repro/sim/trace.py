"""Structured execution traces.

A :class:`TraceLog` is an append-only list of :class:`TraceEvent` records —
request initiations/completions, message sends/receives, lease transitions —
used by tests to check the paper's lemmas against actual executions (e.g.
"during this combine exactly |A| probe messages were sent", Lemma 3.3) and by
examples to narrate runs.  Tracing is optional and off by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes
    ----------
    time:
        Virtual time (0.0 in the sequential engine).
    kind:
        Event kind, e.g. ``"send"``, ``"recv"``, ``"request"``, ``"reply"``,
        ``"lease_set"``, ``"lease_break"``.
    node:
        The node at which the event happened.
    detail:
        Free-form payload (message kind, peer, request, values, ...).
    """

    time: float
    kind: str
    node: int
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def emit(self, time: float, kind: str, node: int, **detail: Any) -> None:
        """Append an event (no-op when disabled)."""
        if self.enabled:
            self._events.append(TraceEvent(time=time, kind=kind, node=node, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self._events[i]

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the log."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if node is not None and ev.node != node:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        """Number of events of ``kind``."""
        return sum(1 for ev in self._events if ev.kind == kind)

    def mark(self) -> int:
        """A cursor into the log; use with :meth:`since`."""
        return len(self._events)

    def since(self, mark: int) -> List[TraceEvent]:
        """Events appended after the given :meth:`mark` cursor."""
        return self._events[mark:]

    def clear(self) -> None:
        """Drop all events."""
        self._events.clear()
