"""Structured execution traces — the event bus of the observability layer.

A :class:`TraceLog` is an ordered log of :class:`TraceEvent` records —
request initiations/completions, message sends/receives, lease transitions —
used by tests to check the paper's lemmas against actual executions (e.g.
"during this combine exactly |A| probe messages were sent", Lemma 3.3), by
the live lemma monitors (:mod:`repro.obs.monitors`), and by the JSONL
exporter (:mod:`repro.obs.export`).  Tracing is optional and off by default.

Beyond plain appends the log supports:

* **typed event schemas** — :data:`EVENT_SCHEMAS` names every event kind the
  repo emits together with its required detail fields; ``TraceLog(strict=
  True)`` validates each emit against it (tests run strict, production
  paths default lenient so ad-hoc debugging events stay cheap);
* **a bounded ring-buffer mode** — ``max_events`` caps memory for
  long-running systems; :meth:`TraceLog.mark` cursors stay valid across
  evictions (they are absolute sequence numbers);
* **subscriber callbacks** — :meth:`TraceLog.subscribe` registers live
  consumers (span recorders, lemma monitors, streaming exporters) invoked
  synchronously on every emit;
* **emit-time copying** — mutable detail values (dicts/lists/sets) are
  shallow-copied on emit, so events stay fixed even when the caller keeps
  mutating the object it logged (``uaw`` sets, probe-target sets, ...).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

#: Subscriber callback signature: receives each event as it is emitted.
Subscriber = Callable[["TraceEvent"], None]

#: Every event kind emitted by the repo, mapped to its *required* detail
#: fields.  Emitters may add extra fields; ``strict`` logs reject unknown
#: kinds and missing required fields.  This doubles as the trace-file format
#: reference (see docs/API.md, "Observability").
EVENT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    # transport
    "send": ("dst", "msg"),              # logical or frame-level send
    "recv": ("src", "msg"),              # wire-level arrival
    "deliver": ("src", "msg"),           # reliable layer releases a payload
    "fault": ("dst", "msg", "fault"),    # injected drop/duplicate/reorder
    "retransmit": ("dst", "msg", "seq", "attempt"),
    "dup_suppressed": ("src", "seq"),
    "delivery_failed": ("dst", "msg", "seq", "attempts"),
    "conversation_restart": ("dst", "epoch"),  # edge reseq after a give-up
    # mechanism
    "probe_round": ("requestor", "targets"),
    "combine_done": ("value",),
    "scoped_combine_done": ("toward", "value"),
    "write_done": ("arg",),
    "lease_acquired": ("source",),       # taken[source] := True at node
    "lease_released": ("source",),       # taken[source] := False at node
    "lease_granted": ("grantee",),       # granted[grantee] := True at node
    "lease_broken": ("grantee",),        # granted[grantee] := False at node
    "lease_revoked": ("grantee",),       # dynamic trees: grant voided
    "lease_voided": ("source",),         # dynamic trees: taken side voided
    # engine
    "combine_begin": ("req",),
    "write_begin": ("req",),
    "combine_timeout": ("deadline",),
    "span": ("req", "op", "start", "end", "messages"),
    "quiescent": (),
    # crash-recovery (scheduled faults, checkpoints, lease expiry)
    "node_crash": (),                    # node went down (volatile state lost)
    "node_recover": (),                  # node restored from its checkpoint
    "partition": ("edges",),             # the listed edges are now cut
    "heal": ("edges",),                  # the listed edges carry traffic again
    "checkpoint": ("seq",),              # node persisted a checkpoint
    "lease_expired": ("peer", "side"),   # TTL expiry; side: "taken"|"granted"
    "reprobe": ("dst", "root"),          # sweep re-probed a stuck round
}


def _copy_value(value: Any) -> Any:
    """Shallow-copy mutable containers so emitted events stay immutable."""
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, set):
        return set(value)
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes
    ----------
    time:
        Virtual time (0.0 in the sequential engine).
    kind:
        Event kind — see :data:`EVENT_SCHEMAS` for the catalogue.
    node:
        The node at which the event happened.
    detail:
        Event payload (message kind, peer, request, values, ...).
    """

    time: float
    kind: str
    node: int
    detail: Dict[str, Any] = field(default_factory=dict)


class SchemaError(ValueError):
    """A strict TraceLog rejected an emit (unknown kind / missing field)."""


class TraceLog:
    """Ordered event log with query helpers, ring-buffer mode and subscribers.

    Parameters
    ----------
    enabled:
        When False, :meth:`emit` is a no-op (subscribers still do *not*
        fire) — the zero-overhead default for production runs.
    max_events:
        Optional ring-buffer cap.  When set, only the most recent
        ``max_events`` events are retained; :attr:`dropped` counts
        evictions and :meth:`mark`/:meth:`since` keep working (cursors are
        absolute sequence numbers, clamped to the retained window).
    strict:
        Validate every emit against :data:`EVENT_SCHEMAS`; raises
        :class:`SchemaError` on unknown kinds or missing required fields.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_events: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.enabled = enabled
        self.strict = strict
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._dropped = 0
        self._subscribers: List[Subscriber] = []

    # ------------------------------------------------------------- emitting
    def emit(self, time: float, kind: str, node: int, **detail: Any) -> None:
        """Append an event and notify subscribers (no-op when disabled).

        Mutable detail values are shallow-copied so later caller-side
        mutation never rewrites history.
        """
        if not self.enabled:
            return
        if self.strict:
            required = EVENT_SCHEMAS.get(kind)
            if required is None:
                raise SchemaError(f"unknown trace event kind {kind!r}")
            missing = [f for f in required if f not in detail]
            if missing:
                raise SchemaError(
                    f"event {kind!r} missing required detail field(s) {missing}"
                )
        payload = {k: _copy_value(v) for k, v in detail.items()}
        event = TraceEvent(time=time, kind=kind, node=node, detail=payload)
        if self.max_events is not None and len(self._events) == self.max_events:
            self._dropped += 1
        self._events.append(event)
        for fn in self._subscribers:
            fn(event)

    # ---------------------------------------------------------- subscribers
    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register a live consumer called synchronously on every emit.

        Returns ``fn`` so the call can be used as a decorator.  Subscriber
        exceptions propagate to the emitter — that is how the lemma
        monitors turn a violated invariant into a hard failure in tests.
        """
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # -------------------------------------------------------------- queries
    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since the last :meth:`clear`."""
        return self._dropped

    @property
    def total_emitted(self) -> int:
        """All events ever emitted (retained + evicted)."""
        return len(self._events) + self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self._events[i]

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the retained log."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if node is not None and ev.node != node:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        """Number of retained events of ``kind``."""
        return sum(1 for ev in self._events if ev.kind == kind)

    def mark(self) -> int:
        """A cursor into the log; use with :meth:`since`.

        Cursors are absolute sequence numbers, so they survive ring-buffer
        eviction (events evicted since the mark are simply gone from the
        returned window).
        """
        return self.total_emitted

    def since(self, mark: int) -> List[TraceEvent]:
        """Events appended after the given :meth:`mark` cursor (retained
        portion only, if the ring buffer evicted part of the window)."""
        offset = max(0, mark - self._dropped)
        if offset == 0:
            return list(self._events)
        return list(self._events)[offset:]

    def clear(self) -> None:
        """Drop all events and reset the eviction counter (subscribers stay)."""
        self._events.clear()
        self._dropped = 0
