"""The discrete-event :class:`Simulator` core.

A thin, deterministic event loop: schedule callbacks at virtual times, run
until the queue drains (or a time/event budget is hit).  Nodes and channels
are plain Python objects that capture the simulator and call
:meth:`Simulator.schedule`; there is no process abstraction to keep the hot
path simple and profilable (the guides' advice: simple legible code first,
optimize measured bottlenecks only).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class SimulationLimitError(RuntimeError):
    """Raised when a run exceeds its event budget (likely a livelock bug)."""


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, profiler: Optional[Any] = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        #: Optional wall-clock phase profiler (duck-typed — the sim layer
        #: does not import :mod:`repro.obs`; anything with
        #: ``enabled``/``push``/``pop``/``count`` works, see
        #: :class:`repro.obs.perf.PerfProfiler`).  ``None`` or a disabled
        #: profiler keeps :meth:`run` on the historical tight loop.
        self.profiler = profiler

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual time ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, action, label)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until the queue drains, or until virtual time ``until``.

        Raises :class:`SimulationLimitError` after ``max_events`` events —
        a guard against livelocked protocols rather than a sampling knob.
        """
        prof = self.profiler
        if prof is not None and prof.enabled:
            self._run_profiled(prof, until, max_events)
            return
        budget = max_events
        while True:
            nxt = self._queue.peek_time()
            if nxt is None:
                return
            if until is not None and nxt > until:
                self._now = until
                return
            ev = self._queue.pop()
            assert ev is not None
            self._now = ev.time
            ev.action()
            self._events_processed += 1
            budget -= 1
            if budget <= 0:
                raise SimulationLimitError(
                    f"exceeded {max_events} events at t={self._now}; "
                    "protocol livelock or budget too small"
                )

    def _run_profiled(self, prof: Any, until: Optional[float], max_events: int) -> None:
        """The instrumented twin of :meth:`run`'s tight loop.

        Each event runs inside a ``sim.<label-head>`` phase (the first
        token of the event label — ``deliver``, ``rto``, ``fault``,
        ``watchdog``, … — so per-node labels don't explode cardinality).
        Kept separate so the disabled path stays byte-identical to the
        pre-profiler loop.
        """
        budget = max_events
        while True:
            nxt = self._queue.peek_time()
            if nxt is None:
                return
            if until is not None and nxt > until:
                self._now = until
                return
            ev = self._queue.pop()
            assert ev is not None
            self._now = ev.time
            label = ev.label
            prof.count("sim.events")
            prof.push("sim." + (label.split(" ", 1)[0] if label else "event"))
            try:
                ev.action()
            finally:
                prof.pop()
            self._events_processed += 1
            budget -= 1
            if budget <= 0:
                raise SimulationLimitError(
                    f"exceeded {max_events} events at t={self._now}; "
                    "protocol livelock or budget too small"
                )

    def step(self) -> bool:
        """Execute one event; return False when the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        ev.action()
        self._events_processed += 1
        return True

    def is_quiescent(self) -> bool:
        """True when no events are pending — the paper's quiescent state
        (no pending request, no message in transit)."""
        return len(self._queue) == 0


class Timer:
    """A cancellable, restartable one-shot timer bound to a :class:`Simulator`.

    Wraps the raw :class:`~repro.sim.events.Event` cancellation machinery in
    the shape protocol code wants: ``start`` arms (or re-arms) the timer,
    ``cancel`` disarms it, and a timer that has fired or been cancelled is
    simply inactive.  Restarting an active timer cancels the pending firing
    first, so at most one firing is ever outstanding.  Used by the
    reliable-delivery layer (:mod:`repro.sim.reliability`) for per-segment
    retransmission timeouts.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> t = Timer(sim)
    >>> t.start(5.0, lambda: fired.append("late"))
    >>> t.start(1.0, lambda: fired.append("early"))  # re-arm replaces
    >>> sim.run()
    >>> fired
    ['early']
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._event: Optional["Event"] = None
        self._action: Optional[Callable[[], None]] = None

    @property
    def active(self) -> bool:
        """True while a firing is scheduled and not yet executed/cancelled."""
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time of the pending firing, or ``None`` when inactive."""
        return self._event.time if self.active else None

    def start(self, delay: float, action: Callable[[], None], label: str = "timer") -> None:
        """Arm the timer ``delay`` from now, replacing any pending firing.

        The pending action is held in an attribute and dispatched through
        the bound :meth:`_fire` method (not a closure), so a deep-copied
        simulator clones its timers instead of aliasing the original's.
        """
        self.cancel()
        self._action = action
        self._event = self.sim.schedule(delay, self._fire, label=label)

    def _fire(self) -> None:
        # Only the currently armed event can reach here: start() cancels the
        # previous event before re-arming, and cancelled events never run.
        action = self._action
        self._event = None
        self._action = None
        if action is not None:
            action()

    def cancel(self) -> None:
        """Disarm the timer; a no-op when inactive."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._action = None


class SimClock:
    """The virtual-time clock domain: ``now`` plus a :class:`Timer` factory.

    A *clock domain* is the pair of primitives time-dependent subsystems
    need — a monotone ``now`` and cancellable one-shot timers — abstracted
    away from where time comes from.  :class:`~repro.sim.reliability.ReliableNetwork`
    retransmission timeouts and the recovery layer's
    ``LeaseExpiry`` TTLs both consume this shape; under simulation it is
    backed by a :class:`Simulator` (this class), and the live asyncio
    deployment (:mod:`repro.net`) provides a wall-clock implementation with
    the same interface.  Passing no clock anywhere preserves the historical
    behavior exactly: ``SimClock(sim)`` is pure delegation.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    @property
    def now(self) -> float:
        """Current time in this domain (virtual time of the simulator)."""
        return self.sim.now

    def timer(self) -> Timer:
        """A fresh cancellable one-shot :class:`Timer` in this domain."""
        return Timer(self.sim)
