"""Reliable delivery over lossy channels: ACKs, retransmission, reordering.

The paper assumes *reliable FIFO* channels between neighbors; every
guarantee — strict consistency, Theorem 4's causal consistency, the Figure 2
cost decomposition — is proven under that assumption, and the
fault-injection experiments (:mod:`repro.sim.faults`) show the mechanism
genuinely depends on it: one dropped probe hangs a combine forever.

:class:`ReliableNetwork` *earns* the assumption instead of assuming it.  It
wraps the lossy :class:`~repro.sim.faults.FaultyNetwork` with the classic
sliding-window recovery machinery, restoring the reliable-FIFO contract
end-to-end so the unmodified Figure-1 node automaton runs correctly over
channels that drop, duplicate and reorder:

* **per-directed-edge sequence numbers** — every logical message is wrapped
  in a :class:`Segment` carrying a monotone per-edge ``seq``;
* **receiver-side dedup + reorder buffering** — segments are released to the
  node automaton strictly in ``seq`` order; duplicates (from the channel or
  from retransmissions) are suppressed, out-of-order arrivals buffered;
* **cumulative ACKs** — every segment arrival is answered with an
  :class:`Ack` carrying the highest in-order sequence received; ACKs travel
  over the same lossy channel and may themselves be lost (retransmission
  covers that);
* **timeout-driven retransmission** — each unacknowledged segment holds a
  :class:`~repro.sim.scheduler.Timer`; on expiry it is retransmitted with
  exponential backoff up to a configurable retry budget, after which the
  sender gives up and records a structured :class:`DeliveryFailure`.

Everything is driven by the :class:`~repro.sim.scheduler.Simulator` virtual
clock, so runs stay deterministic for a given seed and
:class:`~repro.sim.faults.FaultPlan`.

Accounting keeps the paper's cost metric honest: each logical message is
recorded **once** as goodput (:meth:`MessageStats.record`) no matter how many
times its segment is retransmitted, while retransmits, ACKs and suppressed
duplicates go to the separate overhead ledger
(:meth:`MessageStats.record_overhead`).  A fault-free run and a
reliability-recovered faulty run of the same schedule therefore report the
same goodput — the competitive-ratio numbers stay comparable — with the
recovery cost visible alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.channel import LatencyModel
from repro.sim.faults import FaultLog, FaultPlan, FaultyNetwork
from repro.sim.network import Receiver
from repro.sim.scheduler import SimClock, Simulator, Timer
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.util.canon import canonical_value

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the reliable-delivery layer.

    Attributes
    ----------
    base_timeout:
        Initial retransmission timeout for a fresh segment.  Should exceed
        one round-trip (data + ACK) of the underlying latency model;
        premature timeouts only cost overhead, never correctness.
    backoff:
        Multiplicative factor applied to the timeout after each expiry
        (exponential backoff).
    max_timeout:
        Cap on the backed-off timeout.
    max_retries:
        Retransmission budget per segment.  Once exhausted the sender gives
        up and records a :class:`DeliveryFailure`; the segment is lost for
        good (the receiver can never advance past the gap).
    combine_deadline:
        Engine-level watchdog: a combine still incomplete this many time
        units after initiation is failed fast with a structured
        :class:`~repro.core.engine.CombineTimeout` instead of hanging.
        ``None`` disables the watchdog.
    """

    base_timeout: float = 4.0
    backoff: float = 2.0
    max_timeout: float = 32.0
    max_retries: int = 12
    combine_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise ValueError(f"base_timeout must be positive, got {self.base_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout < self.base_timeout:
            raise ValueError("max_timeout must be >= base_timeout")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.combine_deadline is not None and self.combine_deadline <= 0:
            raise ValueError("combine_deadline must be positive when set")


@dataclass(frozen=True)
class Segment:
    """One logical message wrapped with a per-edge sequence number.

    ``epoch`` guards crash recovery: when an edge's sequence state is reset
    (see :meth:`ReliableNetwork.reset_edges_for`) the edge's epoch is
    bumped, and frames stamped with an older epoch are discarded on arrival
    — otherwise a pre-reset in-flight ACK with a high cumulative count
    would silently acknowledge post-reset segments that were never
    delivered.
    """

    seq: int
    payload: Any
    epoch: int = 0

    @property
    def kind(self) -> str:
        inner = getattr(self.payload, "kind", type(self.payload).__name__.lower())
        return f"seg:{inner}"


@dataclass(frozen=True)
class Ack:
    """Cumulative acknowledgement: every ``seq <= cum`` arrived in order.

    Carries the epoch of the data edge it acknowledges; stale-epoch ACKs
    are discarded (see :class:`Segment`).
    """

    cum: int
    epoch: int = 0

    @property
    def kind(self) -> str:
        return "ack"


@dataclass(frozen=True)
class DeliveryFailure:
    """A segment whose retry budget ran out — the channel stayed dead."""

    time: float
    src: int
    dst: int
    seq: int
    message_kind: str
    attempts: int


@dataclass
class ReliabilitySummary:
    """Aggregate recovery-layer counters for one run."""

    segments_sent: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    duplicates_suppressed: int = 0
    out_of_order_buffered: int = 0
    give_ups: int = 0

    @property
    def overhead(self) -> int:
        """Recovery events total: retransmits + ACKs + suppressed dups."""
        return self.retransmits + self.acks_sent + self.duplicates_suppressed


class _Outgoing:
    """Sender-side bookkeeping for one unacknowledged segment."""

    __slots__ = ("seq", "payload", "message_kind", "timer", "retries", "timeout")

    def __init__(self, seq: int, payload: Any, message_kind: str, timer: Timer, timeout: float) -> None:
        self.seq = seq
        self.payload = payload
        self.message_kind = message_kind
        self.timer = timer
        self.retries = 0
        self.timeout = timeout


class ReliableNetwork:
    """A transport restoring reliable FIFO delivery over a lossy channel.

    Drop-in replacement for :class:`~repro.sim.network.Network` (same
    ``send`` / ``in_flight`` / ``is_quiescent`` interface) whose wire is a
    :class:`~repro.sim.faults.FaultyNetwork` injecting drops, duplicates and
    reordering per ``plan``.  The node automaton above it observes exactly
    the paper's channel model: every logical message delivered exactly once,
    in per-edge send order.

    Parameters mirror :class:`~repro.sim.faults.FaultyNetwork` plus
    ``config``; ``stats`` receives goodput via :meth:`MessageStats.record`
    and recovery overhead via :meth:`MessageStats.record_overhead`.
    """

    def __init__(
        self,
        tree: Tree,
        sim: Simulator,
        receiver: Receiver,
        config: ReliabilityConfig,
        plan: Optional[FaultPlan] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
        metrics=None,
        profiler=None,
        clock=None,
    ) -> None:
        self.tree = tree
        self.sim = sim
        self._receiver = receiver
        self.config = config
        #: The clock domain driving retransmission timeouts and trace
        #: timestamps (``now`` + ``timer()`` — the same shape
        #: ``LeaseExpiry`` consumers pass ``now`` values from).  Defaults
        #: to :class:`~repro.sim.scheduler.SimClock` over ``sim``, which is
        #: byte-identical to the historical hard-coded virtual-time path.
        self.clock = clock if clock is not None else SimClock(sim)
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` receiving
        #: retransmit counters and reorder-buffer-depth gauges per edge.
        self.metrics = metrics
        #: Optional wall-clock phase profiler (duck-typed, like
        #: :attr:`repro.sim.scheduler.Simulator.profiler`): the retransmit
        #: path runs inside a ``reliability.retransmit`` phase when enabled.
        self.profiler = profiler
        self.summary = ReliabilitySummary()
        self.failures: List[DeliveryFailure] = []
        # The wire: lossy transport carrying Segment/Ack frames.  It gets a
        # private MessageStats so frame-level accounting (every copy on the
        # wire) never pollutes the protocol-level goodput/overhead ledgers.
        self.inner = FaultyNetwork(
            tree,
            sim,
            receiver=self._on_frame,
            plan=plan if plan is not None else FaultPlan(),
            latency=latency,
            seed=seed,
            stats=MessageStats(),
            trace=self.trace,
        )
        self._next_seq: Dict[Edge, int] = {}
        self._unacked: Dict[Edge, Dict[int, _Outgoing]] = {}
        self._expected: Dict[Edge, int] = {}
        self._reorder: Dict[Edge, Dict[int, Any]] = {}
        self._epoch: Dict[Edge, int] = {}
        for edge in tree.directed_edges():
            self._init_edge(edge)

    def _init_edge(self, edge: Edge) -> None:
        self._next_seq[edge] = 0
        self._unacked[edge] = {}
        self._expected[edge] = 0
        self._reorder[edge] = {}
        self._epoch[edge] = 0

    # ------------------------------------------------------------- interface
    @property
    def faults(self) -> FaultLog:
        """The wire's injected-fault log."""
        return self.inner.faults

    @property
    def plan(self) -> FaultPlan:
        return self.inner.plan

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send one logical message with guaranteed in-order delivery."""
        edge = (src, dst)
        if edge not in self._next_seq:
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.stats.record(src, dst, kind)  # goodput: once per logical message
        self.trace.emit(self.clock.now, "send", src, dst=dst, msg=kind)
        seq = self._next_seq[edge]
        self._next_seq[edge] = seq + 1
        out = _Outgoing(seq, message, kind, self.clock.timer(), self.config.base_timeout)
        self._unacked[edge][seq] = out
        self._transmit(edge, out, first=True)

    def in_flight(self) -> int:
        """Frames on the wire plus segments awaiting acknowledgement."""
        return self.inner.in_flight() + sum(len(d) for d in self._unacked.values())

    def is_quiescent(self) -> bool:
        """True when nothing is in transit and nothing awaits an ACK.

        Segments whose retry budget ran out are *not* counted: they are
        recorded in :attr:`failures` and will never drain.
        """
        return self.in_flight() == 0

    def sender(self, src: int, dst: int):
        """A precomputed send callable for the directed edge ``src -> dst``."""
        if (src, dst) not in self._next_seq:
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (dynamic attach/detach/rename).

        New directed edges start fresh sequence-number state; state for
        removed edges is dropped (and the lossy wire below is re-keyed the
        same way).  Must be called at quiescence — nothing may be unacked.
        """
        if not self.is_quiescent():
            raise RuntimeError("cannot change topology with segments unacknowledged")
        self.tree = tree
        wanted = set(tree.directed_edges())
        for edge in [e for e in self._next_seq if e not in wanted]:
            del self._next_seq[edge]
            del self._unacked[edge]
            del self._expected[edge]
            del self._reorder[edge]
            del self._epoch[edge]
        for edge in tree.directed_edges():
            if edge not in self._next_seq:
                self._init_edge(edge)
        self.inner.set_topology(tree)

    def rename_node(self, old: int, new: int) -> None:
        """Re-key the wire's crash/partition state after a dynamic rename
        (edge-level sequence state is re-keyed by :meth:`set_topology`)."""
        self.inner.rename_node(old, new)

    # --------------------------------------------------------- crash recovery
    @property
    def crashed(self):
        """The wire's crashed-node set."""
        return self.inner.crashed

    def crash_node(self, node: int) -> None:
        """Direct-API crash: black-hole the node's traffic on the wire."""
        self.inner.crash_node(node)

    def recover_node(self, node: int) -> None:
        """Direct-API recover: reopen the wire (callers should follow with
        :meth:`reset_edges_for` — the node's conversation state is gone)."""
        self.inner.recover_node(node)

    def reset_edges_for(self, node: int) -> None:
        """Zero the sequence state of every edge touching ``node``.

        Called when ``node`` recovers from a crash: the node's reliable
        conversation state died with it, so both directions of each
        incident edge restart from seq 0 in a **new epoch** (stale
        in-flight frames of the old epoch are discarded on arrival — see
        :class:`Segment`).  Every still-unacknowledged segment on those
        edges is a declared loss: its retransmission timer is cancelled and
        a ``delivery_failed`` trace event announces the casualty.
        Reorder-buffered arrivals are dropped silently — their sender-side
        unacked entry already declares the loss.
        """
        for edge in self._next_seq:
            if node not in edge:
                continue
            src, dst = edge
            for seq in sorted(self._unacked[edge]):
                out = self._unacked[edge][seq]
                out.timer.cancel()
                self.summary.give_ups += 1
                self.failures.append(
                    DeliveryFailure(
                        time=self.clock.now, src=src, dst=dst,
                        seq=seq, message_kind=out.message_kind, attempts=out.retries,
                    )
                )
                self.trace.emit(
                    self.clock.now, "delivery_failed", src,
                    dst=dst, msg=out.message_kind, seq=seq, attempts=out.retries,
                )
            self._unacked[edge] = {}
            self._next_seq[edge] = 0
            self._expected[edge] = 0
            self._reorder[edge] = {}
            self._epoch[edge] += 1

    def pending_snapshot(self) -> Tuple[Any, ...]:
        """Canonical, hashable rendering of the reliable layer's per-edge
        conversation state: sequence counters, epoch, unacked segments
        (payload + retry count) and the reorder buffer, sorted by edge.
        Used by :meth:`NodeRuntime.state_snapshot` and the fork parity
        tests; wire frames in flight below are simulator events and are
        not part of this snapshot."""
        out = []
        for edge in sorted(self._next_seq):
            out.append(
                (
                    edge,
                    self._next_seq[edge],
                    self._epoch[edge],
                    self._expected[edge],
                    tuple(
                        (seq, canonical_value(o.payload), o.retries)
                        for seq, o in sorted(self._unacked[edge].items())
                    ),
                    tuple(
                        (seq, canonical_value(p))
                        for seq, p in sorted(self._reorder[edge].items())
                    ),
                )
            )
        return tuple(out)

    # ---------------------------------------------------------- sender side
    def _transmit(self, edge: Edge, out: _Outgoing, first: bool) -> None:
        src, dst = edge
        prof = self.profiler
        profiled = prof is not None and prof.enabled and not first
        if profiled:
            prof.count("reliability.retransmits")
            prof.push("reliability.retransmit")
        try:
            if first:
                self.summary.segments_sent += 1
            else:
                self.summary.retransmits += 1
                self.stats.record_overhead(src, dst, "retransmit")
                if self.metrics is not None:
                    self.metrics.counter("retransmits_total", src=src, dst=dst).inc()
                self.trace.emit(
                    self.clock.now, "retransmit", src,
                    dst=dst, msg=out.message_kind, seq=out.seq, attempt=out.retries,
                )
            self.inner.send(
                src, dst,
                Segment(seq=out.seq, payload=out.payload, epoch=self._epoch[edge]),
            )
            out.timer.start(
                out.timeout,
                partial(self._on_timeout, edge, out),
                label=f"rto {src}->{dst} #{out.seq}",
            )
        finally:
            if profiled:
                prof.pop()

    def _on_timeout(self, edge: Edge, out: _Outgoing) -> None:
        if self._unacked[edge].get(out.seq) is not out:
            return  # acknowledged (or superseded) in the meantime
        out.retries += 1
        if out.retries > self.config.max_retries:
            del self._unacked[edge][out.seq]
            self.summary.give_ups += 1
            src, dst = edge
            self.failures.append(
                DeliveryFailure(
                    time=self.clock.now, src=src, dst=dst,
                    seq=out.seq, message_kind=out.message_kind, attempts=out.retries,
                )
            )
            self.trace.emit(
                self.clock.now, "delivery_failed", src,
                dst=dst, msg=out.message_kind, seq=out.seq, attempts=out.retries,
            )
            self._restart_conversation(edge)
            return
        out.timeout = min(out.timeout * self.config.backoff, self.config.max_timeout)
        self._transmit(edge, out, first=False)

    def _restart_conversation(self, edge: Edge) -> None:
        """Re-sequence a directed edge after a give-up left a gap.

        A given-up segment leaves a hole the receiver can never advance
        past: every later segment buffers behind it, cumulative ACKs stay
        pinned below the gap, and each in turn exhausts its own retry
        budget — one give-up would wedge the edge *forever* (observed as
        probe rounds stuck across a partition long after it healed).

        The fix reuses the crash-recovery epoch machinery: bump the edge's
        epoch, renumber the surviving unacked segments from 0 in send
        order, and retransmit them.  Old-epoch frames and ACKs still on
        the wire are discarded on arrival by the existing epoch checks, so
        every surviving message is still delivered exactly once, in order
        — only the declared-lost segment is missing from the stream.
        """
        src, dst = edge
        survivors = [self._unacked[edge][s] for s in sorted(self._unacked[edge])]
        for out in survivors:
            out.timer.cancel()
        self._epoch[edge] += 1
        self._next_seq[edge] = 0
        self._expected[edge] = 0
        self._reorder[edge].clear()
        self._unacked[edge] = {}
        self.trace.emit(
            self.clock.now, "conversation_restart", src,
            dst=dst, epoch=self._epoch[edge], resent=len(survivors),
        )
        for out in survivors:
            out.seq = self._next_seq[edge]
            self._next_seq[edge] += 1
            out.retries = 0
            out.timeout = self.config.base_timeout
            self._unacked[edge][out.seq] = out
            self._transmit(edge, out, first=False)

    def _on_ack(self, ack_src: int, ack_dst: int, ack: Ack) -> None:
        # The ACK traveled ack_src -> ack_dst; it acknowledges data on the
        # reverse edge (ack_dst -> ack_src).
        data_edge = (ack_dst, ack_src)
        if ack.epoch != self._epoch[data_edge]:
            return  # stale epoch: predates a recovery-time edge reset
        pending = self._unacked[data_edge]
        for seq in [s for s in pending if s <= ack.cum]:
            pending[seq].timer.cancel()
            del pending[seq]

    # -------------------------------------------------------- receiver side
    def _on_frame(self, src: int, dst: int, frame: Any) -> None:
        if isinstance(frame, Ack):
            self._on_ack(src, dst, frame)
            return
        edge = (src, dst)
        if frame.epoch != self._epoch[edge]:
            # A pre-reset segment still on the wire; its loss was already
            # declared when the edge was reset.
            self.stats.record_overhead(src, dst, "stale_epoch")
            self.trace.emit(
                self.clock.now, "dup_suppressed", dst, src=src, seq=frame.seq,
                stale_epoch=True,
            )
            return
        seq = frame.seq
        expected = self._expected[edge]
        buffer = self._reorder[edge]
        if seq < expected or seq in buffer:
            # Channel duplicate or a retransmission of something we hold:
            # suppress, but re-ACK so the sender can stop retransmitting.
            self.summary.duplicates_suppressed += 1
            self.stats.record_overhead(src, dst, "duplicate")
            self.trace.emit(self.clock.now, "dup_suppressed", dst, src=src, seq=seq)
            self._send_ack(edge)
            return
        buffer[seq] = frame.payload
        if seq != expected:
            self.summary.out_of_order_buffered += 1
        if self.metrics is not None:
            self.metrics.gauge(
                "reorder_buffer_depth", src=src, dst=dst
            ).set(len(buffer))
        while self._expected[edge] in buffer:
            payload = buffer.pop(self._expected[edge])
            self._expected[edge] += 1
            kind = getattr(payload, "kind", type(payload).__name__.lower())
            self.trace.emit(self.clock.now, "deliver", dst, src=src, msg=kind)
            self._receiver(src, dst, payload)
        if self.metrics is not None:
            self.metrics.gauge("reorder_buffer_depth", src=src, dst=dst).set(len(buffer))
        self._send_ack(edge)

    def _send_ack(self, edge: Edge) -> None:
        src, dst = edge
        self.summary.acks_sent += 1
        self.stats.record_overhead(dst, src, "ack")
        self.inner.send(
            dst, src, Ack(cum=self._expected[edge] - 1, epoch=self._epoch[edge])
        )

