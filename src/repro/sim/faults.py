"""Fault injection for the concurrent network substrate.

The paper's model assumes *reliable FIFO* channels; every guarantee
(strict consistency, causal consistency, the message-count lemmas) is
proven under that assumption.  :class:`FaultyNetwork` makes the assumption
testable by injecting three classic link faults:

* **drop** — a message silently vanishes;
* **duplicate** — a message is delivered twice;
* **reorder** — a message's delivery skips the FIFO clamp, so it may
  overtake earlier messages on the same channel.

Injected faults are recorded (:class:`FaultLog`) so tests can correlate
observed protocol damage (hung combines, consistency violations, broken
invariants) with specific faults — the failure-injection experiments in
``tests/test_faults.py`` demonstrate both that the mechanism *depends* on
the assumptions and that the consistency checkers *detect* the fallout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.channel import LatencyModel, constant_latency
from repro.sim.network import Receiver
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities (mutually exclusive draws).

    Attributes
    ----------
    drop_prob:
        Probability a message is dropped.
    duplicate_prob:
        Probability a message is delivered twice.
    reorder_prob:
        Probability a message bypasses the FIFO ordering clamp.
    seed:
        RNG seed for the fault stream (independent of latency draws).
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "reorder_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_prob + self.duplicate_prob + self.reorder_prob > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")

    @property
    def is_faultless(self) -> bool:
        return self.drop_prob == self.duplicate_prob == self.reorder_prob == 0.0


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault."""

    time: float
    kind: str  # "drop" | "duplicate" | "reorder"
    src: int
    dst: int
    message_kind: str


class FaultLog:
    """Record of every injected fault."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, time: float, kind: str, src: int, dst: int, message_kind: str) -> None:
        self.events.append(FaultEvent(time, kind, src, dst, message_kind))

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)


class FaultyNetwork:
    """A latency-ful transport with injected drop/duplicate/reorder faults.

    Drop-in replacement for :class:`repro.sim.network.Network` (same
    ``send`` interface, same stats accounting: duplicates count as extra
    deliveries, drops still count as sends — the sender paid for them).
    """

    def __init__(
        self,
        tree: Tree,
        sim: Simulator,
        receiver: Receiver,
        plan: FaultPlan,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.tree = tree
        self.sim = sim
        self._receiver = receiver
        self.plan = plan
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.faults = FaultLog()
        self._latency = latency if latency is not None else constant_latency(1.0)
        self._master_rng = random.Random(seed)
        self._lat_rng: Dict[Tuple[int, int], random.Random] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        for edge in tree.directed_edges():
            self._lat_rng[edge] = random.Random(self._master_rng.getrandbits(64))
            self._last_delivery[edge] = 0.0
        self._fault_rng = random.Random(plan.seed)
        self._in_flight = 0

    def _classify(self) -> str:
        x = self._fault_rng.random()
        if x < self.plan.drop_prob:
            return "drop"
        x -= self.plan.drop_prob
        if x < self.plan.duplicate_prob:
            return "duplicate"
        x -= self.plan.duplicate_prob
        if x < self.plan.reorder_prob:
            return "reorder"
        return "ok"

    def send(self, src: int, dst: int, message: Any) -> None:
        edge = (src, dst)
        if edge not in self._lat_rng:
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.stats.record(src, dst, kind)
        self.trace.emit(self.sim.now, "send", src, dst=dst, msg=kind)
        fate = self._classify()
        if fate != "ok":
            self.faults.record(self.sim.now, fate, src, dst, kind)
            self.trace.emit(self.sim.now, "fault", src, dst=dst, msg=kind, fault=fate)
        if fate == "drop":
            return
        copies = 2 if fate == "duplicate" else 1
        for copy in range(copies):
            if copy == 1:
                # The duplicated copy is an extra delivery the receiver pays
                # for (see class docstring) — count it like any other send.
                self.stats.record(src, dst, kind)
            delay = self._latency(src, dst, self._lat_rng[edge])
            t = self.sim.now + delay
            if fate != "reorder":
                t = max(t, self._last_delivery[edge])
                self._last_delivery[edge] = t
            self._in_flight += 1

            def deliver(m=message, s=src, d=dst, k=kind) -> None:
                self._in_flight -= 1
                self.trace.emit(self.sim.now, "recv", d, src=s, msg=k)
                self._receiver(s, d, m)

            self.sim.schedule_at(t, deliver, label=f"faulty {src}->{dst}")

    def in_flight(self) -> int:
        return self._in_flight

    def is_quiescent(self) -> bool:
        return self._in_flight == 0

    def sender(self, src: int, dst: int):
        """A precomputed send callable for the directed edge ``src -> dst``."""
        if (src, dst) not in self._lat_rng:
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (dynamic attach/detach/rename).

        New directed edges get latency RNG streams derived from the
        continuing master stream (existing edges keep theirs); per-edge
        state for removed edges is dropped.  Must be called at quiescence.
        """
        if not self.is_quiescent():
            raise RuntimeError("cannot change topology with messages in flight")
        self.tree = tree
        wanted = set(tree.directed_edges())
        for edge in [e for e in self._lat_rng if e not in wanted]:
            del self._lat_rng[edge]
            del self._last_delivery[edge]
        for edge in tree.directed_edges():
            if edge not in self._lat_rng:
                self._lat_rng[edge] = random.Random(self._master_rng.getrandbits(64))
                self._last_delivery[edge] = 0.0

