"""Fault injection for the concurrent network substrate.

The paper's model assumes *reliable FIFO* channels and permanently-live
nodes; every guarantee (strict consistency, causal consistency, the
message-count lemmas) is proven under those assumptions.
:class:`FaultyNetwork` makes them testable by injecting three classic
link faults:

* **drop** — a message silently vanishes;
* **duplicate** — a message is delivered twice;
* **reorder** — a message's delivery skips the FIFO clamp, so it may
  overtake earlier messages on the same channel;

plus *scheduled* process/link failures declared up front in the
:class:`FaultPlan` (built with the :func:`crash` / :func:`recover` /
:func:`partition` / :func:`heal` helpers):

* **crash(node, t)** — from ``t`` on, all traffic to or from the node is
  black-holed until a matching recover;
* **recover(node, t)** — the node is reachable again (state restoration is
  the recovery layer's job — the wire only reopens);
* **partition(edges, t0)** / **heal(t1)** — the listed tree edges stop
  carrying traffic in both directions, then carry it again.

Every black-holed message is a **declared loss**: the wire emits a
``delivery_failed`` trace event for it, so the offline causal checker
(:mod:`repro.verify.causal`) can tell an announced crash casualty from a
silent protocol bug.  Fault lifecycle events (``node_crash``,
``node_recover``, ``partition``, ``heal``) are traced here too — the wire
is the single source of truth for *when* a scheduled fault took effect —
and forwarded to registered fault listeners (the recovery manager, the
engines) that own the node-level consequences.

Injected faults are recorded (:class:`FaultLog`) so tests can correlate
observed protocol damage (hung combines, consistency violations, broken
invariants) with specific faults — the failure-injection experiments in
``tests/test_faults.py`` demonstrate both that the mechanism *depends* on
the assumptions and that the consistency checkers *detect* the fallout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sim.channel import LatencyModel, constant_latency
from repro.sim.network import Receiver
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree

#: Scheduled-fault kinds understood by :class:`FaultyNetwork`.
SCHEDULED_KINDS = ("crash", "recover", "partition", "heal")


@dataclass(frozen=True)
class ScheduledFault:
    """One deterministic fault event: at ``time``, apply ``kind``.

    ``crash``/``recover`` name a ``node``; ``partition``/``heal`` name
    undirected ``edges`` (``heal`` with no edges heals every cut edge).
    Build these with the :func:`crash`/:func:`recover`/:func:`partition`/
    :func:`heal` helpers rather than by hand.
    """

    time: float
    kind: str
    node: Optional[int] = None
    edges: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULED_KINDS:
            raise ValueError(
                f"unknown scheduled fault kind {self.kind!r}; "
                f"expected one of {SCHEDULED_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind in ("crash", "recover"):
            if self.node is None:
                raise ValueError(f"{self.kind} fault needs a node")
        elif self.kind == "partition" and not self.edges:
            raise ValueError("partition fault needs at least one edge")

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.node is not None:
            d["node"] = self.node
        if self.edges:
            d["edges"] = [list(e) for e in self.edges]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScheduledFault":
        return cls(
            time=float(d["time"]),
            kind=d["kind"],
            node=d.get("node"),
            edges=tuple((int(u), int(v)) for u, v in d.get("edges", ())),
        )


def crash(node: int, t: float) -> ScheduledFault:
    """Schedule node ``node`` to crash at virtual time ``t``."""
    return ScheduledFault(time=t, kind="crash", node=node)


def recover(node: int, t: float) -> ScheduledFault:
    """Schedule node ``node`` to recover at virtual time ``t``."""
    return ScheduledFault(time=t, kind="recover", node=node)


def partition(edges: Any, t0: float) -> ScheduledFault:
    """Schedule the undirected ``edges`` to be cut from time ``t0``."""
    return ScheduledFault(
        time=t0, kind="partition", edges=tuple((int(u), int(v)) for u, v in edges)
    )


def heal(t1: float, edges: Any = ()) -> ScheduledFault:
    """Schedule a heal at ``t1``; with no ``edges``, heal every cut edge."""
    return ScheduledFault(
        time=t1, kind="heal", edges=tuple((int(u), int(v)) for u, v in edges)
    )


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities plus scheduled fault events.

    Attributes
    ----------
    drop_prob:
        Probability a message is dropped.
    duplicate_prob:
        Probability a message is delivered twice.
    reorder_prob:
        Probability a message bypasses the FIFO ordering clamp.
    seed:
        RNG seed for the fault stream (independent of latency draws).
    events:
        Deterministic :class:`ScheduledFault` timeline (crashes,
        recoveries, partitions, heals), applied by the wire at the stated
        virtual times.
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    seed: int = 0
    events: Tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "reorder_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_prob + self.duplicate_prob + self.reorder_prob > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_faultless(self) -> bool:
        return (
            self.drop_prob == self.duplicate_prob == self.reorder_prob == 0.0
            and not self.events
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; embed this in reports so a failing chaos run is
        reproducible from the report line alone."""
        d: Dict[str, Any] = {
            "drop_prob": self.drop_prob,
            "duplicate_prob": self.duplicate_prob,
            "reorder_prob": self.reorder_prob,
            "seed": self.seed,
        }
        if self.events:
            d["events"] = [e.to_dict() for e in self.events]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        return cls(
            drop_prob=float(d.get("drop_prob", 0.0)),
            duplicate_prob=float(d.get("duplicate_prob", 0.0)),
            reorder_prob=float(d.get("reorder_prob", 0.0)),
            seed=int(d.get("seed", 0)),
            events=tuple(
                ScheduledFault.from_dict(e) for e in d.get("events", ())
            ),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault."""

    time: float
    kind: str  # "drop" | "duplicate" | "reorder" | "blackhole"
    src: int
    dst: int
    message_kind: str


class FaultLog:
    """Record of every injected fault."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, time: float, kind: str, src: int, dst: int, message_kind: str) -> None:
        self.events.append(FaultEvent(time, kind, src, dst, message_kind))

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)


#: Fault-listener callback: invoked after the wire applies a scheduled fault.
FaultListener = Callable[[ScheduledFault], None]


class FaultyNetwork:
    """A latency-ful transport with injected and scheduled faults.

    Drop-in replacement for :class:`repro.sim.network.Network` (same
    ``send`` interface, same stats accounting: duplicates count as extra
    deliveries, drops still count as sends — the sender paid for them).

    Scheduled faults from ``plan.events`` are applied at their virtual
    times: crashed nodes and partitioned edges black-hole traffic at both
    send time and delivery time (a message already in flight toward a node
    that crashes dies on the wire).  Each black-holed message emits a
    ``delivery_failed`` trace event — a *declared* loss the offline causal
    checker discounts.
    """

    def __init__(
        self,
        tree: Tree,
        sim: Simulator,
        receiver: Receiver,
        plan: FaultPlan,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.tree = tree
        self.sim = sim
        self._receiver = receiver
        self.plan = plan
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.faults = FaultLog()
        self._latency = latency if latency is not None else constant_latency(1.0)
        self._master_rng = random.Random(seed)
        self._lat_rng: Dict[Tuple[int, int], random.Random] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        for edge in tree.directed_edges():
            self._lat_rng[edge] = random.Random(self._master_rng.getrandbits(64))
            self._last_delivery[edge] = 0.0
        self._fault_rng = random.Random(plan.seed)
        self._in_flight = 0
        self.crashed: Set[int] = set()
        self._cut: Set[Tuple[int, int]] = set()  # directed black-holed edges
        self._fault_listeners: List[FaultListener] = []
        for ev in plan.events:
            sim.schedule_at(
                ev.time,
                partial(self._apply_fault, ev),
                label=f"fault {ev.kind}",
            )

    # ------------------------------------------------------ scheduled faults
    def add_fault_listener(self, fn: FaultListener) -> FaultListener:
        """Register a callback fired after each scheduled fault is applied."""
        self._fault_listeners.append(fn)
        return fn

    def _both_ways(self, edges: Any) -> Set[Tuple[int, int]]:
        out: Set[Tuple[int, int]] = set()
        for u, v in edges:
            out.add((u, v))
            out.add((v, u))
        return out

    def _apply_fault(self, ev: ScheduledFault) -> None:
        now = self.sim.now
        if ev.kind == "crash":
            self.crashed.add(ev.node)  # type: ignore[arg-type]
            self.trace.emit(now, "node_crash", ev.node)  # type: ignore[arg-type]
        elif ev.kind == "recover":
            self.crashed.discard(ev.node)  # type: ignore[arg-type]
            self.trace.emit(now, "node_recover", ev.node)  # type: ignore[arg-type]
        elif ev.kind == "partition":
            self._cut |= self._both_ways(ev.edges)
            self.trace.emit(now, "partition", -1, edges=[list(e) for e in ev.edges])
        elif ev.kind == "heal":
            if ev.edges:
                self._cut -= self._both_ways(ev.edges)
                healed = [list(e) for e in ev.edges]
            else:
                healed = sorted([u, v] for (u, v) in self._cut if u < v)
                self._cut.clear()
            self.trace.emit(now, "heal", -1, edges=healed)
        for fn in self._fault_listeners:
            fn(ev)

    def crash_node(self, node: int) -> None:
        """Direct-API crash (dynamic engines): black-hole the node's
        traffic.  Trace emission is the caller's job on this path —
        scheduled faults trace through :meth:`_apply_fault` instead."""
        self.crashed.add(node)

    def recover_node(self, node: int) -> None:
        """Direct-API recover: the node's traffic flows again."""
        self.crashed.discard(node)

    def _blackholed(self, src: int, dst: int) -> bool:
        return (
            src in self.crashed
            or dst in self.crashed
            or (src, dst) in self._cut
        )

    def _declare_loss(self, src: int, dst: int, kind: str) -> None:
        self.faults.record(self.sim.now, "blackhole", src, dst, kind)
        self.trace.emit(
            self.sim.now, "fault", src, dst=dst, msg=kind, fault="blackhole"
        )
        self.trace.emit(
            self.sim.now, "delivery_failed", src, dst=dst, msg=kind, seq=-1, attempts=0
        )

    # --------------------------------------------------------------- sending
    def _classify(self) -> str:
        x = self._fault_rng.random()
        if x < self.plan.drop_prob:
            return "drop"
        x -= self.plan.drop_prob
        if x < self.plan.duplicate_prob:
            return "duplicate"
        x -= self.plan.duplicate_prob
        if x < self.plan.reorder_prob:
            return "reorder"
        return "ok"

    def send(self, src: int, dst: int, message: Any) -> None:
        edge = (src, dst)
        if edge not in self._lat_rng:
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.stats.record(src, dst, kind)
        self.trace.emit(self.sim.now, "send", src, dst=dst, msg=kind)
        if self._blackholed(src, dst):
            self._declare_loss(src, dst, kind)
            return
        fate = self._classify()
        if fate != "ok":
            self.faults.record(self.sim.now, fate, src, dst, kind)
            self.trace.emit(self.sim.now, "fault", src, dst=dst, msg=kind, fault=fate)
        if fate == "drop":
            return
        copies = 2 if fate == "duplicate" else 1
        for copy in range(copies):
            if copy == 1:
                # The duplicated copy is an extra delivery the receiver pays
                # for (see class docstring) — count it like any other send.
                self.stats.record(src, dst, kind)
            delay = self._latency(src, dst, self._lat_rng[edge])
            t = self.sim.now + delay
            if fate != "reorder":
                t = max(t, self._last_delivery[edge])
                self._last_delivery[edge] = t
            self._in_flight += 1
            self.sim.schedule_at(
                t,
                partial(self._deliver, message, src, dst, kind),
                label=f"faulty {src}->{dst}",
            )

    def _deliver(self, message: Any, src: int, dst: int, kind: str) -> None:
        self._in_flight -= 1
        if self._blackholed(src, dst):
            # The fault landed while this message was in flight: it dies on
            # the wire, as a declared loss.
            self._declare_loss(src, dst, kind)
            return
        self.trace.emit(self.sim.now, "recv", dst, src=src, msg=kind)
        self._receiver(src, dst, message)

    def in_flight(self) -> int:
        return self._in_flight

    def is_quiescent(self) -> bool:
        return self._in_flight == 0

    def sender(self, src: int, dst: int):
        """A precomputed send callable for the directed edge ``src -> dst``."""
        if (src, dst) not in self._lat_rng:
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (dynamic attach/detach/rename).

        New directed edges get latency RNG streams derived from the
        continuing master stream (existing edges keep theirs); per-edge
        state for removed edges is dropped.  Must be called at quiescence.
        """
        if not self.is_quiescent():
            raise RuntimeError("cannot change topology with messages in flight")
        self.tree = tree
        wanted = set(tree.directed_edges())
        for edge in [e for e in self._lat_rng if e not in wanted]:
            del self._lat_rng[edge]
            del self._last_delivery[edge]
        for edge in tree.directed_edges():
            if edge not in self._lat_rng:
                self._lat_rng[edge] = random.Random(self._master_rng.getrandbits(64))
                self._last_delivery[edge] = 0.0
        live = set(tree.nodes())
        self.crashed &= live
        self._cut = {e for e in self._cut if e in wanted}

    def rename_node(self, old: int, new: int) -> None:
        """Re-key crash/partition state after a dynamic-tree id rename."""
        if old in self.crashed:
            self.crashed.discard(old)
            self.crashed.add(new)
        remap = lambda n: new if n == old else n  # noqa: E731
        self._cut = {(remap(u), remap(v)) for (u, v) in self._cut}
