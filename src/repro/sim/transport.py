"""The composable transport stack and its single assembly point.

Every execution model in the repo moves messages through one of four
transports, which form a layered stack:

* :class:`~repro.sim.network.SynchronousNetwork` — zero-latency global
  FIFO queue (the sequential model of Section 2);
* :class:`~repro.sim.network.Network` — per-directed-edge FIFO channels
  with a latency model under a virtual clock (Section 5);
* :class:`~repro.sim.faults.FaultyNetwork` — the latency-ful wire plus
  injected drop/duplicate/reorder faults;
* :class:`~repro.sim.reliability.ReliableNetwork` — ACK/retransmit
  recovery wrapped around the faulty wire, restoring reliable FIFO.

Historically each entry point (the engines, ``faulty_concurrent_system``,
the CLI) hand-assembled its own stack, which is how the core↔sim import
cycle crept in.  :func:`build_transport` is now the single factory: a
:class:`TransportConfig` names the stack declaratively and any engine can
run over any stack.

>>> cfg = TransportConfig()                          # synchronous FIFO
>>> cfg = TransportConfig.simulated()                # latency-ful channels
>>> cfg = TransportConfig.simulated(plan=FaultPlan(drop_prob=0.1))
>>> cfg = TransportConfig.simulated(plan=plan, reliability=ReliabilityConfig())

All transports share one interface: ``send(src, dst, message)``,
``is_quiescent()``, ``sender(src, dst)`` (a precomputed per-edge send
callable), ``set_topology(tree)`` (dynamic attach/detach/rename at
quiescence), and ``stats`` / ``trace`` attributes.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

from repro.sim.channel import LatencyModel
from repro.sim.faults import FaultPlan, FaultyNetwork
from repro.sim.network import Network, Receiver, SynchronousNetwork
from repro.sim.reliability import ReliabilityConfig, ReliableNetwork
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree

#: Anything :func:`build_transport` can return.  External kinds (see
#: :func:`register_transport_kind`) may return any object honoring the
#: shared transport interface.
Transport = Union[SynchronousNetwork, Network, FaultyNetwork, ReliableNetwork, Any]

#: Registry of externally provided transport stacks, keyed by
#: :attr:`TransportConfig.kind`.  A factory has the same signature as
#: :func:`build_transport` minus ``config`` being first.  Plugins register
#: themselves on import; :data:`_KIND_MODULES` lets :func:`build_transport`
#: lazily import the providing module by dotted name the first time a kind
#: is requested, so the sim layer never *statically* imports upper layers
#: (the PL301 inversion is preserved — this is a plugin seam, not a
#: dependency).
_EXTERNAL_KINDS: Dict[str, Callable[..., Any]] = {}
_KIND_MODULES: Dict[str, str] = {"asyncio": "repro.net"}


def register_transport_kind(kind: str, factory: Callable[..., Any]) -> None:
    """Register an external transport stack under ``kind``.

    ``factory(config, tree, receiver, *, sim, seed, stats, trace, metrics,
    profiler)`` must return an object implementing the shared transport
    interface (``send`` / ``sender`` / ``is_quiescent`` / ``set_topology`` /
    ``stats`` / ``trace``).  Called by plugin packages at import time —
    :mod:`repro.net` registers ``"asyncio"``.
    """
    _EXTERNAL_KINDS[kind] = factory


@dataclass(frozen=True)
class TransportConfig:
    """Declarative description of a transport stack.

    Attributes
    ----------
    synchronous:
        ``True`` selects the zero-latency global-FIFO transport of the
        sequential model; no simulator is involved and the latency/fault/
        reliability layers are unavailable (they need virtual time).
    latency:
        Latency model for the simulated wire (default: constant 1.0).
    plan:
        Fault-injection plan.  Without ``reliability`` the resulting
        transport is a bare lossy wire (combines can hang — drive it with
        ``run_with_faults``); with ``reliability`` the losses are healed.
    reliability:
        Reliable-delivery configuration wrapping the wire in
        :class:`~repro.sim.reliability.ReliableNetwork`.  Implies a lossy
        wire even when ``plan`` is omitted (a faultless plan is used).
    seed:
        Seed for the transport's latency RNG streams.  ``None`` inherits
        the engine's seed (the engines preserve the historical convention:
        plain transports use ``seed``, fault-injected ones ``seed + 1``).
    kind:
        ``"builtin"`` selects one of the four in-repo stacks above;
        any other value names an externally registered stack (see
        :func:`register_transport_kind`) — e.g. ``"asyncio"`` for the
        live socket transport of :mod:`repro.net`.  External kinds run on
        their own clock domain and need no :class:`Simulator`.
    options:
        Kind-specific configuration object handed verbatim to the external
        factory.  Unused by builtin stacks.
    """

    synchronous: bool = True
    latency: Optional[LatencyModel] = None
    plan: Optional[FaultPlan] = None
    reliability: Optional[ReliabilityConfig] = None
    seed: Optional[int] = None
    kind: str = "builtin"
    options: Any = None

    def __post_init__(self) -> None:
        if self.synchronous and (
            self.latency is not None
            or self.plan is not None
            or self.reliability is not None
        ):
            raise ValueError(
                "the synchronous transport has no virtual clock; latency, "
                "fault and reliability layers need TransportConfig.simulated()"
            )
        if self.kind != "builtin" and (
            self.latency is not None
            or self.plan is not None
            or self.reliability is not None
        ):
            raise ValueError(
                "external transport kinds bring their own wire; the "
                "latency/fault/reliability layers are builtin-only"
            )

    @classmethod
    def external(cls, kind: str, options: Any = None) -> "TransportConfig":
        """An externally registered stack (e.g. ``"asyncio"``), running on
        its own clock domain — no :class:`Simulator` involved."""
        if kind == "builtin":
            raise ValueError("'builtin' is not an external kind")
        return cls(synchronous=False, kind=kind, options=options)

    @classmethod
    def simulated(
        cls,
        latency: Optional[LatencyModel] = None,
        plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        seed: Optional[int] = None,
    ) -> "TransportConfig":
        """A simulated (virtual-clock) stack: ``Network`` by default,
        ``FaultyNetwork`` when ``plan`` is set, ``ReliableNetwork`` on top
        when ``reliability`` is set."""
        return cls(
            synchronous=False,
            latency=latency,
            plan=plan,
            reliability=reliability,
            seed=seed,
        )

    @property
    def needs_sim(self) -> bool:
        """Whether the stack runs under a :class:`Simulator` clock."""
        return not self.synchronous and self.kind == "builtin"

    @property
    def layers(self) -> "tuple[str, ...]":
        """The stack bottom-up, for diagnostics and docs."""
        if self.kind != "builtin":
            return (self.kind,)
        if self.synchronous:
            return ("synchronous",)
        stack = ["latency"]
        if self.plan is not None or self.reliability is not None:
            stack.append("faults")
        if self.reliability is not None:
            stack.append("reliable")
        return tuple(stack)


def build_transport(
    config: TransportConfig,
    tree: Tree,
    receiver: Receiver,
    *,
    sim: Optional[Simulator] = None,
    seed: int = 0,
    stats: Optional[MessageStats] = None,
    trace: Optional[TraceLog] = None,
    metrics: Any = None,
    profiler: Any = None,
) -> Transport:
    """Assemble the transport stack described by ``config``.

    Parameters
    ----------
    config:
        The declarative stack description.
    tree:
        Topology the transport validates sends against.
    receiver:
        ``(src, dst, message) -> None`` callback for delivered messages.
    sim:
        Virtual clock; required iff ``config.needs_sim``.
    seed:
        Fallback RNG seed when ``config.seed`` is ``None``.
    stats / trace / metrics:
        Shared accounting objects threaded through every layer.
    profiler:
        Optional wall-clock phase profiler (duck-typed); currently only
        the reliable layer's retransmit path consumes it.
    """
    transport_seed = config.seed if config.seed is not None else seed
    if config.kind != "builtin":
        factory = _EXTERNAL_KINDS.get(config.kind)
        if factory is None and config.kind in _KIND_MODULES:
            importlib.import_module(_KIND_MODULES[config.kind])
            factory = _EXTERNAL_KINDS.get(config.kind)
        if factory is None:
            raise ValueError(
                f"unknown transport kind {config.kind!r}; registered: "
                f"{sorted(_EXTERNAL_KINDS) or '(none)'}"
            )
        return factory(
            config, tree, receiver,
            sim=sim, seed=transport_seed, stats=stats, trace=trace,
            metrics=metrics, profiler=profiler,
        )
    if config.synchronous:
        return SynchronousNetwork(tree, receiver, stats=stats, trace=trace)
    if sim is None:
        raise ValueError("a simulated transport stack needs a Simulator")
    if config.reliability is not None:
        return ReliableNetwork(
            tree,
            sim,
            receiver=receiver,
            config=config.reliability,
            plan=config.plan,
            latency=config.latency,
            seed=transport_seed,
            stats=stats,
            trace=trace,
            metrics=metrics,
            profiler=profiler,
        )
    if config.plan is not None:
        return FaultyNetwork(
            tree,
            sim,
            receiver=receiver,
            plan=config.plan,
            latency=config.latency,
            seed=transport_seed,
            stats=stats,
            trace=trace,
        )
    return Network(
        tree,
        sim,
        receiver=receiver,
        latency=config.latency,
        seed=transport_seed,
        stats=stats,
        trace=trace,
    )


__all__ = [
    "Transport",
    "TransportConfig",
    "build_transport",
    "register_transport_kind",
]
