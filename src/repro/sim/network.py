"""Message transports binding a tree topology to delivery semantics.

Two transports share one interface (``send(src, dst, message)`` plus message
accounting) so the same node automaton runs under both execution models:

* :class:`SynchronousNetwork` — the sequential model of Section 2.  Messages
  go into a global FIFO queue; :meth:`SynchronousNetwork.run_to_quiescence`
  drains it, which realizes the paper's quiescent-state semantics exactly
  (global FIFO trivially preserves per-channel FIFO).
* :class:`Network` — the concurrent model of Section 5.  One
  :class:`~repro.sim.channel.FifoChannel` per directed edge delivers with
  latency under a :class:`~repro.sim.scheduler.Simulator` clock.

Both transports validate that every send travels along a tree edge.
"""

from __future__ import annotations

import random
from collections import deque
from functools import partial
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.channel import FifoChannel, LatencyModel, constant_latency
from repro.sim.scheduler import Simulator
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree
from repro.util.canon import canonical_value

#: Receiver callback: (src, dst, message) -> None.
Receiver = Callable[[int, int, Any], None]


class SynchronousNetwork:
    """Zero-latency transport draining a global FIFO queue to quiescence."""

    def __init__(
        self,
        tree: Tree,
        receiver: Receiver,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.tree = tree
        self._receiver = receiver
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._queue: Deque[Tuple[int, int, Any]] = deque()
        self._delivering = False
        self.crashed: set = set()

    def send(self, src: int, dst: int, message: Any) -> None:
        """Enqueue ``message`` from ``src`` to its neighbor ``dst``.

        Traffic to or from a crashed node is black-holed as a *declared
        loss*: the send is still traced and counted (the sender paid for
        it), then a ``delivery_failed`` event announces the casualty so
        the offline causal checker can discount it.
        """
        if not self.tree.has_edge(src, dst):
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.stats.record(src, dst, kind)
        self.trace.emit(0.0, "send", src, dst=dst, msg=kind)
        if src in self.crashed or dst in self.crashed:
            self.trace.emit(
                0.0, "delivery_failed", src, dst=dst, msg=kind, seq=-1, attempts=0
            )
            return
        self._queue.append((src, dst, message))

    # ------------------------------------------------------- crash/recovery
    def crash_node(self, node: int) -> None:
        """Black-hole the node: queued messages to it die as declared
        losses; future traffic to or from it is discarded at send time."""
        self.crashed.add(node)
        survivors: Deque[Tuple[int, int, Any]] = deque()
        for src, dst, message in self._queue:
            if dst == node:
                kind = getattr(message, "kind", type(message).__name__.lower())
                self.trace.emit(
                    0.0, "delivery_failed", src, dst=dst, msg=kind, seq=-1, attempts=0
                )
            else:
                survivors.append((src, dst, message))
        self._queue = survivors

    def recover_node(self, node: int) -> None:
        """Reopen the wire to ``node`` (state restoration happens above)."""
        self.crashed.discard(node)

    def rename_node(self, old: int, new: int) -> None:
        """Re-key crash state after a dynamic-tree id rename."""
        if old in self.crashed:
            self.crashed.discard(old)
            self.crashed.add(new)

    def run_to_quiescence(self, max_messages: int = 10_000_000) -> int:
        """Deliver queued messages (and those they trigger) until none remain.

        Returns the number of messages delivered.  Re-entrant calls (a
        receiver triggering delivery) are flattened into the outer loop.
        """
        if self._delivering:
            return 0
        self._delivering = True
        delivered = 0
        try:
            while self._queue:
                src, dst, message = self._queue.popleft()
                kind = getattr(message, "kind", type(message).__name__.lower())
                self.trace.emit(0.0, "recv", dst, src=src, msg=kind)
                self._receiver(src, dst, message)
                delivered += 1
                if delivered > max_messages:
                    raise RuntimeError(
                        f"exceeded {max_messages} deliveries; protocol livelock?"
                    )
        finally:
            self._delivering = False
        return delivered

    def is_quiescent(self) -> bool:
        """True when no message is queued (Section 2's condition (2))."""
        return not self._queue

    # ------------------------------------------------- frontier enumeration
    # The hooks the small-scope model checker (repro.verify.explore) drives:
    # instead of draining the whole queue in arrival order, an explorer
    # enumerates the directed edges with a message in flight and chooses
    # which edge delivers next.  Delivering the *oldest* message of the
    # chosen edge preserves per-channel FIFO, so every schedule the explorer
    # generates is a legal execution of the paper's network model.

    def pending_edges(self) -> List[Tuple[int, int]]:
        """Directed edges with at least one queued message — the explorer's
        delivery frontier.  Ordered by oldest queued message, deduplicated,
        so enumeration is deterministic."""
        seen: List[Tuple[int, int]] = []
        for src, dst, _ in self._queue:
            edge = (src, dst)
            if edge not in seen:
                seen.append(edge)
        return seen

    def deliver_next(self, src: int, dst: int) -> None:
        """Deliver the oldest queued message on edge ``src -> dst`` only.

        Messages the receiver sends in response stay queued (the explorer
        decides their delivery order later).  Raises ``ValueError`` when the
        edge has nothing in flight.
        """
        for i, (s, d, message) in enumerate(self._queue):
            if (s, d) == (src, dst):
                del self._queue[i]
                kind = getattr(message, "kind", type(message).__name__.lower())
                self.trace.emit(0.0, "recv", dst, src=src, msg=kind)
                self._receiver(src, dst, message)
                return
        raise ValueError(f"no message in flight on edge ({src}, {dst})")

    def pending_snapshot(self) -> Tuple[Any, ...]:
        """Canonical, hashable rendering of the in-flight messages: per-edge
        FIFO queues, sorted by edge.

        The cross-edge interleaving of the global deque is deliberately
        erased — under :meth:`deliver_next` future behavior depends only on
        the per-edge queues, so two states differing only in that
        interleaving are the same state to the explorer (this is what makes
        deliveries to distinct nodes commute *exactly*, the independence
        relation of the sleep-set reduction).
        """
        per_edge: Dict[Tuple[int, int], List[Any]] = {}
        for src, dst, message in self._queue:
            per_edge.setdefault((src, dst), []).append(canonical_value(message))
        snap: Tuple[Any, ...] = tuple(
            (edge, tuple(messages)) for edge, messages in sorted(per_edge.items())
        )
        if self.crashed:
            # Shape-stable: crash-free states keep their historical snapshot.
            snap += (("crashed", tuple(sorted(self.crashed))),)
        return snap

    def sender(self, src: int, dst: int) -> Callable[[Any], None]:
        """A precomputed send callable for the directed edge ``src -> dst``.

        Nodes bind one of these per neighbor instead of allocating a
        closure per send (see :class:`repro.core.mechanism.LeaseNode`).
        """
        if not self.tree.has_edge(src, dst):
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (dynamic attach/detach/rename).

        Must be called at quiescence — the queue carries ``(src, dst)``
        pairs of the old topology.
        """
        if not self.is_quiescent():
            raise RuntimeError("cannot change topology with messages queued")
        self.tree = tree


class Network:
    """Latency-ful transport: one FIFO channel per directed tree edge."""

    def __init__(
        self,
        tree: Tree,
        sim: Simulator,
        receiver: Receiver,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.tree = tree
        self.sim = sim
        self._receiver = receiver
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._latency = latency if latency is not None else constant_latency(1.0)
        self._master_rng = random.Random(seed)
        self._channels: Dict[Tuple[int, int], FifoChannel] = {}
        for u, v in tree.directed_edges():
            self._add_channel(u, v)

    def _add_channel(self, u: int, v: int) -> None:
        # Each directed channel gets its own derived RNG stream so the
        # latency draws on one edge never perturb another edge's stream.
        ch_rng = random.Random(self._master_rng.getrandbits(64))
        self._channels[(u, v)] = FifoChannel(
            self.sim,
            u,
            v,
            deliver=partial(self._deliver, u, v),
            latency=self._latency,
            rng=ch_rng,
        )

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.trace.emit(self.sim.now, "recv", dst, src=src, msg=kind)
        self._receiver(src, dst, message)

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send ``message`` on the directed channel ``src -> dst``."""
        channel = self._channels.get((src, dst))
        if channel is None:
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.stats.record(src, dst, kind)
        self.trace.emit(self.sim.now, "send", src, dst=dst, msg=kind)
        channel.send(message)

    def in_flight(self) -> int:
        """Total messages currently in transit across all channels."""
        return sum(ch.in_flight for ch in self._channels.values())

    def is_quiescent(self) -> bool:
        """True when no message is in transit."""
        return self.in_flight() == 0

    def sender(self, src: int, dst: int) -> Callable[[Any], None]:
        """A precomputed send callable for the directed edge ``src -> dst``."""
        if (src, dst) not in self._channels:
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (dynamic attach/detach/rename).

        New directed edges get fresh channels with RNG streams derived from
        the continuing master stream (existing edges keep their streams);
        channels for edges no longer present are dropped.  Must be called
        at quiescence.
        """
        if not self.is_quiescent():
            raise RuntimeError("cannot change topology with messages in flight")
        self.tree = tree
        wanted = set(tree.directed_edges())
        for edge in [e for e in self._channels if e not in wanted]:
            del self._channels[edge]
        for u, v in tree.directed_edges():
            if (u, v) not in self._channels:
                self._add_channel(u, v)
