"""Message accounting.

The paper's cost metric is *the total number of messages exchanged among
nodes* (Section 2), and its analysis decomposes that count per ordered edge
and per message type (Lemma 3.9 / Figure 2).  :class:`MessageStats` counts at
exactly that granularity: ``counts[(src, dst)][kind]``.

Two ledgers, one object
-----------------------
With the reliable-delivery layer (:mod:`repro.sim.reliability`) in play, a
run exchanges two classes of traffic:

* **goodput** — the protocol's own messages (probe/response/update/release),
  the quantity every cost lemma and competitive ratio is stated in.  Recorded
  with :meth:`MessageStats.record`; :attr:`MessageStats.total` counts only
  these, so numbers stay comparable with fault-free runs.
* **recovery overhead** — retransmissions, ACKs and suppressed duplicates
  spent restoring the reliable-FIFO contract over a lossy channel.  Recorded
  with :meth:`MessageStats.record_overhead` into a separate ledger exposed
  through :attr:`MessageStats.overhead_total` / :meth:`overhead_by_kind`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple

Edge = Tuple[int, int]


class MessageStats:
    """Per-directed-edge, per-kind message counters.

    ``kind`` is a free-form string; the lease mechanism uses ``"probe"``,
    ``"response"``, ``"update"`` and ``"release"``.
    """

    def __init__(self) -> None:
        self._counts: Dict[Edge, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._total = 0
        self._overhead: Dict[Edge, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._overhead_total = 0

    def record(self, src: int, dst: int, kind: str) -> None:
        """Count one message of ``kind`` on directed edge ``(src, dst)``."""
        self._counts[(src, dst)][kind] += 1
        self._total += 1

    def record_many(self, src: int, dst: int, kind: str, n: int) -> None:
        """Count ``n`` messages of ``kind`` on ``(src, dst)`` at once.

        The bulk entry point batch-oriented senders use (the flat
        backend's drain loop flushes its per-edge counters through here);
        equivalent to ``n`` calls of :meth:`record`.
        """
        self._counts[(src, dst)][kind] += n
        self._total += n

    def record_overhead(self, src: int, dst: int, kind: str) -> None:
        """Count one *recovery-overhead* event on ``(src, dst)``.

        Overhead events (``"ack"``, ``"retransmit"``, ``"duplicate"`` for
        receiver-side suppressed duplicates) live in a separate ledger so
        :attr:`total` — the paper's cost metric — stays comparable with
        fault-free runs.
        """
        self._overhead[(src, dst)][kind] += 1
        self._overhead_total += 1

    @property
    def total(self) -> int:
        """Total protocol messages recorded — the paper's cost ``C_A(σ)``."""
        return self._total

    @property
    def goodput(self) -> int:
        """Alias of :attr:`total`: protocol messages only, no recovery traffic."""
        return self._total

    @property
    def overhead_total(self) -> int:
        """Total recovery-overhead events (retransmits, ACKs, dups suppressed)."""
        return self._overhead_total

    def overhead_by_kind(self) -> Dict[str, int]:
        """Overhead totals aggregated by event kind."""
        out: Dict[str, int] = defaultdict(int)
        for kinds in self._overhead.values():
            for kind, c in kinds.items():
                out[kind] += c
        return dict(out)

    def overhead_count(self, src: int, dst: int, kind: str) -> int:
        """Overhead events of ``kind`` on directed edge ``(src, dst)``."""
        return self._overhead.get((src, dst), {}).get(kind, 0)

    def edge_total(self, src: int, dst: int) -> int:
        """Messages sent on directed edge ``(src, dst)``."""
        return sum(self._counts.get((src, dst), {}).values())

    def undirected_edge_total(self, u: int, v: int) -> int:
        """Messages exchanged between ``u`` and ``v``, both directions."""
        return self.edge_total(u, v) + self.edge_total(v, u)

    def count(self, src: int, dst: int, kind: str) -> int:
        """Messages of ``kind`` on directed edge ``(src, dst)``."""
        return self._counts.get((src, dst), {}).get(kind, 0)

    def by_kind(self) -> Dict[str, int]:
        """Totals aggregated by message kind."""
        out: Dict[str, int] = defaultdict(int)
        for kinds in self._counts.values():
            for kind, c in kinds.items():
                out[kind] += c
        return dict(out)

    def directional_cost(self, u: int, v: int) -> int:
        """The paper's ``C_A(σ, u, v)`` for this run: probes and releases
        from ``v`` to ``u`` plus responses and updates from ``u`` to ``v``.

        (Definition preceding Lemma 3.9.)
        """
        return (
            self.count(v, u, "probe")
            + self.count(u, v, "response")
            + self.count(u, v, "update")
            + self.count(v, u, "release")
        )

    def edges(self) -> Iterable[Edge]:
        """Directed edges with at least one recorded message."""
        return self._counts.keys()

    def snapshot(self) -> Mapping[Edge, Mapping[str, int]]:
        """A deep-copied snapshot of the counters."""
        return {e: dict(kinds) for e, kinds in self._counts.items()}

    def diff_total(self, earlier: "MessageStats") -> int:
        """Total messages recorded here beyond ``earlier``'s total."""
        return self._total - earlier._total

    def reset(self) -> None:
        """Zero all counters (both ledgers)."""
        self._counts.clear()
        self._total = 0
        self._overhead.clear()
        self._overhead_total = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f", overhead={self._overhead_total}" if self._overhead_total else ""
        return f"MessageStats(total={self._total}, by_kind={self.by_kind()!r}{extra})"
