"""Vectorized offline comparators (numpy fast paths).

The scalar comparators in :mod:`repro.offline.edge_dp` loop per edge per
request — O(|σ|·|E|) Python-level work that dominates large sweeps (the
guides' rule: profile, then vectorize the measured bottleneck).  These
functions run the same recurrences with numpy across **all ordered edges
simultaneously**, one pass over the request sequence:

* :func:`offline_lease_lower_bound_fast` — the two-state min-cost DP;
* :func:`rww_analytic_cost_fast` — RWW's deterministic config replay;
* :func:`nice_lower_bound_fast` — the epoch counter.

All three are exact drop-in equivalents of their scalar counterparts
(property-tested in ``tests/test_vectorized.py``) and are what
`analysis.competitive` uses on big inputs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request


def edge_side_matrix(tree: Tree) -> Tuple[List[Tuple[int, int]], np.ndarray]:
    """Ordered edge list and boolean matrix ``side[e, x]`` = node ``x`` lies
    in ``subtree(u, v)`` for ordered edge e = (u, v)."""
    edges = list(tree.directed_edges())
    side = np.zeros((len(edges), tree.n), dtype=bool)
    for i, (u, v) in enumerate(edges):
        members = tree.subtree(u, v)
        side[i, list(members)] = True
    return edges, side


def _validate(sequence: Sequence[Request]) -> None:
    for q in sequence:
        if q.op not in (COMBINE, WRITE):
            raise ValueError(f"cannot project op {q.op!r}")


def offline_lease_lower_bound_fast(tree: Tree, sequence: Sequence[Request]) -> int:
    """Vectorized equivalent of
    :func:`repro.offline.edge_dp.offline_lease_lower_bound`."""
    _validate(sequence)
    _, side = edge_side_matrix(tree)
    n_edges = side.shape[0]
    INF = np.float64(np.inf)
    dp0 = np.zeros(n_edges)  # no lease
    dp1 = np.full(n_edges, INF)  # lease held
    for q in sequence:
        on_u_side = side[:, q.node]
        if q.op == COMBINE:
            mask = ~on_u_side  # R token on these edges
            ndp0 = dp0[mask] + 2.0
            ndp1 = np.minimum(dp0[mask] + 2.0, dp1[mask])
            dp0[mask] = ndp0
            dp1[mask] = ndp1
        else:
            w = on_u_side  # W token
            dp0_w = np.minimum(dp0[w], dp1[w] + 2.0)
            dp1_w = dp1[w] + 1.0
            dp0[w] = dp0_w
            dp1[w] = dp1_w
            n = ~on_u_side  # N token
            dp0[n] = np.minimum(dp0[n], dp1[n] + 1.0)
    return int(np.minimum(dp0, dp1).sum())


def rww_analytic_cost_fast(tree: Tree, sequence: Sequence[Request]) -> int:
    """Vectorized equivalent of
    :func:`repro.offline.edge_dp.rww_analytic_cost`."""
    _validate(sequence)
    _, side = edge_side_matrix(tree)
    n_edges = side.shape[0]
    config = np.zeros(n_edges, dtype=np.int64)  # F_RWW per edge
    total = 0
    for q in sequence:
        on_u_side = side[:, q.node]
        if q.op == COMBINE:
            mask = ~on_u_side
            total += 2 * int((config[mask] == 0).sum())
            config[mask] = 2
        else:
            w = on_u_side
            cw = config[w]
            total += int((cw == 2).sum()) + 2 * int((cw == 1).sum())
            config[w] = np.maximum(cw - 1, 0)
    return total


def nice_lower_bound_fast(tree: Tree, sequence: Sequence[Request]) -> int:
    """Vectorized equivalent of
    :func:`repro.offline.nice_bound.nice_lower_bound`."""
    _validate(sequence)
    _, side = edge_side_matrix(tree)
    n_edges = side.shape[0]
    # prev token per edge: 0 = none/other, 1 = R, 2 = W (noops transparent).
    prev = np.zeros(n_edges, dtype=np.int8)
    epochs = 0
    for q in sequence:
        on_u_side = side[:, q.node]
        if q.op == COMBINE:
            mask = ~on_u_side
            epochs += int((prev[mask] == 2).sum())
            prev[mask] = 1
        else:
            prev[on_u_side] = 2
    return epochs
