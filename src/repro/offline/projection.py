"""Per-ordered-edge request projection — ``σ(u, v)`` with noop tokens.

Section 3.2 defines, for an ordered pair of neighbors ``(u, v)``, the
subsequence ``σ(u, v)`` containing the write requests at nodes in
``subtree(u, v)`` and the combine requests at nodes in ``subtree(v, u)``.
Figure 2 additionally associates a *noop* (N) with each write in
``σ(v, u)``: the only moments a lease-based algorithm can break the lease
``u → v`` for cost 1 (a lone release).

The projection therefore maps every request of σ to one of three tokens for
the ordered pair (u, v):

* ``R`` — a combine at a node in ``subtree(v, u)``  (pull across the edge),
* ``W`` — a write at a node in ``subtree(u, v)``    (push across the edge),
* ``N`` — a write at a node in ``subtree(v, u)``    (break opportunity),

and drops combines at nodes in ``subtree(u, v)`` (Lemma 3.8(4): they cannot
affect ``u.granted[v]`` and exchange no messages of the (u, v) cost class).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

#: Token constants.
READ = "R"
WRITE_TOKEN = "W"
NOOP = "N"

Token = str
EdgeTokens = Dict[Tuple[int, int], List[Token]]


def project_sequence(tree: Tree, sequence: Sequence[Request], u: int, v: int) -> List[Token]:
    """Project ``sequence`` onto the ordered edge ``(u, v)``.

    Returns the R/W/N token stream defined above.  ``(u, v)`` must be a
    tree edge.
    """
    side_u = tree.subtree(u, v)  # nodes on u's side
    tokens: List[Token] = []
    for q in sequence:
        if q.scope is not None:
            raise ValueError("scoped combines have no per-edge projection; "
                             "the offline comparators apply to global workloads")
        on_u_side = q.node in side_u
        if q.op == WRITE:
            tokens.append(WRITE_TOKEN if on_u_side else NOOP)
        elif q.op == COMBINE:
            if not on_u_side:
                tokens.append(READ)
        else:
            raise ValueError(f"cannot project op {q.op!r}")
    return tokens


def project_all_edges(tree: Tree, sequence: Sequence[Request]) -> EdgeTokens:
    """Project ``sequence`` onto every ordered edge of the tree.

    A single pass per request classifies it against each edge using the
    cached ``subtree`` membership sets; the result maps each ordered pair
    ``(u, v)`` to its token stream.
    """
    sides = {(u, v): tree.subtree(u, v) for u, v in tree.directed_edges()}
    out: EdgeTokens = {edge: [] for edge in sides}
    for q in sequence:
        if q.scope is not None:
            raise ValueError("scoped combines have no per-edge projection; "
                             "the offline comparators apply to global workloads")
        for (u, v), side_u in sides.items():
            on_u_side = q.node in side_u
            if q.op == WRITE:
                out[(u, v)].append(WRITE_TOKEN if on_u_side else NOOP)
            elif q.op == COMBINE:
                if not on_u_side:
                    out[(u, v)].append(READ)
            else:
                raise ValueError(f"cannot project op {q.op!r}")
    return out


def strip_noops(tokens: Sequence[Token]) -> List[Token]:
    """The R/W-only stream — the paper's plain ``σ(u, v)`` subsequence."""
    return [t for t in tokens if t != NOOP]
