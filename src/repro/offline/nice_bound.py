"""The nice-algorithm lower bound of Theorem 2.

A *nice* algorithm provides strict consistency in sequential executions
(Section 2).  Theorem 2's proof partitions each ordered edge's projected
sequence into *epochs* — an epoch ends at a write → combine transition in
``σ(u, v)`` — and argues any nice algorithm must send at least one message
per completed epoch across that edge (the combine after the write must
observe the write, so information must cross the edge inside the epoch's
window).  Summed over ordered edges this lower-bounds the optimal nice
offline algorithm NOPT.
"""

from __future__ import annotations

from typing import Sequence

from repro.offline.projection import NOOP, READ, WRITE_TOKEN, Token, project_all_edges
from repro.tree.topology import Tree
from repro.workloads.requests import Request


def edge_epochs(tokens: Sequence[Token]) -> int:
    """Number of completed epochs (write → combine transitions) in one
    ordered edge's R/W token stream (noops are transparent)."""
    epochs = 0
    prev = None
    for tok in tokens:
        if tok == NOOP:
            continue
        if tok == READ and prev == WRITE_TOKEN:
            epochs += 1
        prev = tok
    return epochs


def nice_lower_bound(tree: Tree, sequence: Sequence[Request]) -> int:
    """``Σ over ordered edges of edge_epochs`` — a message lower bound for
    every strictly consistent algorithm on ``sequence``.

    Each (u, v)-epoch forces at least one ``u -> v`` message in a time
    window disjoint from every other (u, v)-epoch's window, and windows of
    the two directions of an edge count different message directions, so
    the per-ordered-edge counts add without double counting.
    """
    projections = project_all_edges(tree, sequence)
    return sum(edge_epochs(toks) for toks in projections.values())
