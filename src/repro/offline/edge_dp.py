"""Optimal offline lease schedules per ordered edge (the paper's OPT).

Figure 2 gives, for one ordered pair ``(u, v)``, the exact message cost any
lease-based algorithm pays per request of ``σ(u, v)`` as a function of
whether ``u.granted[v]`` holds before and after the request:

====================  ===========================  ====
state before          request / state after        cost
====================  ===========================  ====
false                 R → false or true            2
false                 W or N → false               0
true                  R → true                     0
true                  W → false                    2
true                  W → true                     1
true                  N → false                    1
true                  N → true                     0
====================  ===========================  ====

An offline lease-based algorithm chooses the transitions; the cheapest
choice sequence is a two-state shortest path, computed here by
:func:`edge_dp_cost` in O(len) time.  By the cost decomposition (Lemma 3.9)
summing the per-edge optima over all ordered edges lower-bounds every
lease-based algorithm — and it is exactly the comparator the paper's
potential-function proof (Figure 4/5) measures RWW against.

:func:`brute_force_edge_cost` enumerates all ``2^len`` transition choices as
a test oracle; :func:`rww_edge_cost` replays RWW's deterministic
configuration (the ``F_RWW`` definition before Lemma 4.4) for analytic
cross-checks against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import inf
from typing import Dict, List, Sequence, Tuple

from repro.offline.projection import NOOP, READ, WRITE_TOKEN, Token, project_all_edges
from repro.tree.topology import Tree
from repro.workloads.requests import Request

#: (state_before, token) -> list of (state_after, cost) choices (Figure 2).
TRANSITIONS: Dict[Tuple[int, str], List[Tuple[int, int]]] = {
    (0, READ): [(0, 2), (1, 2)],
    (0, WRITE_TOKEN): [(0, 0)],
    (0, NOOP): [(0, 0)],
    (1, READ): [(1, 0)],
    (1, WRITE_TOKEN): [(1, 1), (0, 2)],
    (1, NOOP): [(1, 0), (0, 1)],
}


@dataclass(frozen=True)
class EdgeDPResult:
    """Outcome of the per-edge DP.

    Attributes
    ----------
    cost:
        Minimal total cost over all lease schedules.
    schedule:
        One optimal state sequence (lease held after each token),
        ``len(tokens)`` entries; useful for diagnostics.
    """

    cost: int
    schedule: Tuple[int, ...]


def edge_dp_cost(tokens: Sequence[Token]) -> EdgeDPResult:
    """Minimal offline lease cost for one ordered edge's token stream.

    Standard two-state DP with backpointers; the initial state is 0
    (no lease — Figure 1's initialization).
    """
    INF = inf
    dp = [0.0, INF]  # dp[state] = min cost so far
    back: List[Tuple[int, int]] = []  # back[i] = (pred_of_state0, pred_of_state1)
    for tok in tokens:
        ndp = [INF, INF]
        pred = [-1, -1]
        for s in (0, 1):
            if dp[s] == INF:
                continue
            for s2, cost in TRANSITIONS[(s, tok)]:
                cand = dp[s] + cost
                if cand < ndp[s2]:
                    ndp[s2] = cand
                    pred[s2] = s
        dp = ndp
        back.append((pred[0], pred[1]))
    final = 0 if dp[0] <= dp[1] else 1
    total = dp[final]
    # Reconstruct one optimal schedule.
    states: List[int] = []
    s = final
    for i in range(len(tokens) - 1, -1, -1):
        states.append(s)
        s = back[i][s]
    states.reverse()
    return EdgeDPResult(cost=int(total), schedule=tuple(states))


def brute_force_edge_cost(tokens: Sequence[Token]) -> int:
    """Test oracle: exhaustively try every transition-choice sequence.

    Exponential — intended for token streams of length <= ~16.
    """
    if len(tokens) > 20:
        raise ValueError("brute force is exponential; use edge_dp_cost for long streams")
    best = inf
    # Choice index per position: at most 2 options per transition.
    option_counts = []
    # The reachable option count depends on the running state, so enumerate
    # full binary choice vectors and skip invalid indices.
    for choices in product((0, 1), repeat=len(tokens)):
        state, total = 0, 0
        ok = True
        for tok, pick in zip(tokens, choices):
            options = TRANSITIONS[(state, tok)]
            if pick >= len(options):
                ok = False
                break
            state, cost = options[pick]
            total += cost
        if ok and total < best:
            best = total
    return int(best)


#: RWW's deterministic per-request cost as a function of its configuration
#: F_RWW in {0, 1, 2} (the definition preceding Lemma 4.4 + Figure 2).
def rww_edge_cost(tokens: Sequence[Token]) -> int:
    """Replay RWW's configuration over one edge's token stream analytically.

    * R: pay 2 when no lease (config 0), else 0; config becomes 2.
    * W: config 2 -> 1 for cost 1 (update); config 1 -> 0 for cost 2
      (update + release); config 0 stays free.
    * N: no cost, no config change (Lemma 4.1).
    """
    config, total = 0, 0
    for tok in tokens:
        if tok == READ:
            if config == 0:
                total += 2
            config = 2
        elif tok == WRITE_TOKEN:
            if config == 2:
                total += 1
                config = 1
            elif config == 1:
                total += 2
                config = 0
        elif tok == NOOP:
            pass
        else:
            raise ValueError(f"unknown token {tok!r}")
    return total


def offline_lease_lower_bound(tree: Tree, sequence: Sequence[Request]) -> int:
    """``Σ over ordered edges of edge_dp_cost`` — the OPT comparator.

    By Lemma 3.9 any lease-based algorithm's total cost is the sum of its
    per-ordered-edge costs; each term is at least the per-edge optimum, so
    this sum lower-bounds the optimal offline lease-based algorithm.
    """
    projections = project_all_edges(tree, sequence)
    return sum(edge_dp_cost(toks).cost for toks in projections.values())


def rww_analytic_cost(tree: Tree, sequence: Sequence[Request]) -> int:
    """``Σ over ordered edges of rww_edge_cost`` — RWW's total cost,
    predicted without running the simulator (Lemma 4.5 + Lemma 3.9)."""
    projections = project_all_edges(tree, sequence)
    return sum(rww_edge_cost(toks) for toks in projections.values())
