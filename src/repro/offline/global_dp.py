"""Exact global offline lease-based OPT (closure-constrained DP).

The per-edge DP (:mod:`repro.offline.edge_dp`) relaxes one real
constraint: the mechanism only grants ``u → v`` when every other neighbor
of ``u`` has granted to ``u`` (Lemma 3.2), so a *joint* lease configuration
must be closed under upstream grants — per-edge choices are not free.  The
paper's 5/2 analysis deliberately uses the relaxation (its state machine is
per-edge), which makes the relaxed bound the right comparator for the
theorem; but a natural systems question remains: **how much cheaper is the
relaxation than any real offline lease-based algorithm?**

This module answers it exactly, for small instances: dynamic programming
over the lattice of *legal* configurations (granted-edge sets satisfying
the closure), with per-request transition costs assembled from the same
Figure-2 per-edge rows.  The number of legal configurations grows quickly
(it is ≥ 2^(n-1) on stars), so this is a measurement tool for trees of ~5
nodes — enough to quantify the gap.  Measured answer (EXT-GAP benchmark and
property tests): the gap is exactly 1.0 on every sampled instance — the
relaxation is tight, because an upstream edge's projected write set is a
subset (and combine set a superset) of any downstream edge that requires
it, so the closure never binds an optimal schedule.
"""

from __future__ import annotations

from math import inf
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.offline.projection import NOOP, READ, WRITE_TOKEN
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

Edge = Tuple[int, int]
Config = FrozenSet[Edge]

#: (held_before, token, held_after) -> cost, or absent if illegal
#: (the Figure-2 rows, reindexed for joint transitions).
EDGE_MOVE_COST: Dict[Tuple[int, str, int], int] = {
    (0, READ, 0): 2,
    (0, READ, 1): 2,
    (0, WRITE_TOKEN, 0): 0,
    (0, NOOP, 0): 0,
    (1, READ, 1): 0,
    (1, WRITE_TOKEN, 1): 1,
    (1, WRITE_TOKEN, 0): 2,
    (1, NOOP, 1): 0,
    (1, NOOP, 0): 1,
}


def is_closed(tree: Tree, config: Config) -> bool:
    """Lemma 3.2's closure: every granted edge's upstream grants exist."""
    for u, v in config:
        for w in tree.neighbors(u):
            if w != v and (w, u) not in config:
                return False
    return True


def legal_configs(tree: Tree, max_edges: int = 12) -> List[Config]:
    """All legal granted-edge sets.  Guarded: 2^(2(n-1)) subsets are
    enumerated, so trees with more than ``max_edges`` directed edges are
    rejected."""
    edges = list(tree.directed_edges())
    if len(edges) > max_edges:
        raise ValueError(
            f"{len(edges)} directed edges exceeds max_edges={max_edges}; "
            "the global DP is exponential — use a smaller tree"
        )
    out: List[Config] = []
    for bits in range(1 << len(edges)):
        config = frozenset(e for i, e in enumerate(edges) if bits >> i & 1)
        if is_closed(tree, config):
            out.append(config)
    return out


def global_offline_cost(tree: Tree, sequence: Sequence[Request]) -> int:
    """Minimum total messages of any offline lease-based algorithm whose
    configurations respect the Lemma-3.2 closure throughout."""
    edges = list(tree.directed_edges())
    sides = {e: tree.subtree(*e) for e in edges}
    configs = legal_configs(tree)
    index = {c: i for i, c in enumerate(configs)}
    # Precompute per-edge membership bits per config for speed.
    membership = [
        tuple(1 if e in c else 0 for e in edges) for c in configs
    ]
    dp = [inf] * len(configs)
    dp[index[frozenset()]] = 0.0
    for q in sequence:
        if q.op == WRITE:
            tokens = [WRITE_TOKEN if q.node in sides[e] else NOOP for e in edges]
        elif q.op == COMBINE:
            tokens = [READ if q.node not in sides[e] else None for e in edges]
        else:
            raise ValueError(f"cannot project op {q.op!r}")
        ndp = [inf] * len(configs)
        for ci, cost_so_far in enumerate(dp):
            if cost_so_far == inf:
                continue
            held = membership[ci]
            for cj in range(len(configs)):
                nxt = membership[cj]
                total = cost_so_far
                ok = True
                for k, tok in enumerate(tokens):
                    if tok is None:
                        # Combines on the edge's u-side exchange no class
                        # messages and cannot change the lease (Lemma 3.8(4)).
                        if held[k] != nxt[k]:
                            ok = False
                            break
                        continue
                    move = EDGE_MOVE_COST.get((held[k], tok, nxt[k]))
                    if move is None:
                        ok = False
                        break
                    total += move
                if ok and total < ndp[cj]:
                    ndp[cj] = total
        dp = ndp
    best = min(dp)
    if best == inf:  # pragma: no cover - empty config is always reachable
        raise RuntimeError("global DP found no feasible schedule")
    return int(best)


def relaxation_gap(tree: Tree, sequence: Sequence[Request]) -> Tuple[int, int, float]:
    """``(per_edge_bound, global_opt, gap_ratio)`` where ``gap_ratio`` is
    ``global_opt / per_edge_bound`` (1.0 = the relaxation is tight)."""
    from repro.offline.edge_dp import offline_lease_lower_bound

    relaxed = offline_lease_lower_bound(tree, sequence)
    exact = global_offline_cost(tree, sequence)
    return relaxed, exact, (exact / relaxed if relaxed else 1.0)
