"""Offline comparators for the competitive analysis.

* :mod:`repro.offline.projection` — the per-ordered-edge projection
  ``σ(u, v)`` of Section 3.2, extended with the *noop* (N) tokens of
  Figure 2 (break opportunities created by writes in ``σ(v, u)``).
* :mod:`repro.offline.edge_dp` — the optimal offline lease schedule for one
  ordered edge: a two-state min-cost dynamic program over the Figure-2 cost
  automaton.  Summed over all ordered edges (Lemma 3.9) this is the
  comparator the paper's 5/2 bound is proven against.
* :mod:`repro.offline.nice_bound` — Theorem 2's lower bound on any *nice*
  (strictly consistent) algorithm: at least one message per epoch per
  ordered edge, where an epoch ends at a write→combine transition.
"""

from repro.offline.projection import (
    NOOP,
    READ,
    WRITE_TOKEN,
    project_sequence,
    project_all_edges,
)
from repro.offline.edge_dp import (
    EdgeDPResult,
    brute_force_edge_cost,
    edge_dp_cost,
    offline_lease_lower_bound,
    rww_edge_cost,
)
from repro.offline.nice_bound import edge_epochs, nice_lower_bound

__all__ = [
    "READ",
    "WRITE_TOKEN",
    "NOOP",
    "project_sequence",
    "project_all_edges",
    "EdgeDPResult",
    "edge_dp_cost",
    "brute_force_edge_cost",
    "rww_edge_cost",
    "offline_lease_lower_bound",
    "edge_epochs",
    "nice_lower_bound",
]
