"""`AsyncioTransport`: the live transport behind the transport seam.

Implements the shared transport interface (``send`` / ``sender`` /
``is_quiescent`` / ``set_topology`` / ``stats`` / ``trace``) over asyncio.
Two modes share one class:

* **in-process** (the default, and what
  ``TransportConfig.external("asyncio")`` builds through the seam): every
  node is local; ``send`` enqueues and :meth:`run_to_quiescence` drives a
  real asyncio event loop until the queue drains.  The delivery order is
  the same global FIFO as :class:`~repro.sim.network.SynchronousNetwork`,
  so the engines produce identical results and message counts over either
  — the equivalence tests in ``tests/test_net.py`` pin this.
* **multi-process** (:class:`~repro.net.server.NodeServer`): only the
  hosted nodes are local; sends to remote nodes are handed to the server's
  socket layer via ``remote_send`` and arrive back through
  :meth:`deliver_remote` on the peer.

Every logical send is stamped with a per-directed-edge sequence number and
the sender's process incarnation; both ride the wire frame and are recorded
as *extra* detail fields on the ``send``/``deliver`` trace events (the
schema registry allows extras).  The offline merge tool
(:mod:`repro.net.merge`) uses them to FIFO-match sends to deliveries
exactly and to synthesize ``delivery_failed`` events for messages that died
with a killed process.

The module also owns the length-prefixed frame codec: 4-byte big-endian
length, then a canonical JSON object (sorted keys — same conventions as
the JSONL trace export).
"""

from __future__ import annotations

import asyncio
import json
import struct
from collections import deque
from functools import partial
from typing import Any, Callable, Deque, Dict, FrozenSet, Optional, Set, Tuple

from repro.net.codec import decode_message, encode_message
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.tree.topology import Tree

Edge = Tuple[int, int]

_LEN = struct.Struct(">I")

#: Refuse absurd frames early (a desynced stream reads garbage lengths).
MAX_FRAME = 16 * 1024 * 1024

#: Once a frame header has arrived, the payload must follow promptly: a
#: peer that died mid-frame must not wedge the reader forever (asynclint
#: PL603).  Waiting *for the next header* is unbounded by design — an idle
#: but healthy connection is legal — unless the caller passes ``timeout``.
FRAME_PAYLOAD_TIMEOUT = 5.0


def frame_bytes(obj: Dict[str, Any]) -> bytes:
    """Length-prefixed canonical-JSON frame for one wire object."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    return _LEN.pack(len(payload)) + payload


def write_frame(writer: asyncio.StreamWriter, obj: Dict[str, Any]) -> None:
    """Queue one frame on a stream (caller drains at its own cadence)."""
    writer.write(frame_bytes(obj))


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    timeout: Optional[float] = None,
    payload_timeout: float = FRAME_PAYLOAD_TIMEOUT,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean or torn EOF.

    ``timeout`` bounds the wait for the *header* (i.e. connection
    idleness) and raises :class:`asyncio.TimeoutError` — idle policy
    belongs to the caller.  ``payload_timeout`` bounds the header-to-
    payload gap; a frame torn by a dying peer reads as EOF (``None``),
    the same as a torn connection.
    """
    try:
        header = await asyncio.wait_for(reader.readexactly(_LEN.size), timeout)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        payload = await asyncio.wait_for(
            reader.readexactly(length), payload_timeout
        )
    except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
        return None
    frame: Dict[str, Any] = json.loads(payload.decode())
    return frame


def message_frame(src: int, dst: int, message: Any, seq: int, inc: int, hlc: float) -> Dict[str, Any]:
    """The ``msg`` wire frame for one protocol message."""
    return {
        "type": "msg",
        "src": src,
        "dst": dst,
        "seq": seq,
        "inc": inc,
        "hlc": hlc,
        "m": encode_message(message),
    }


def message_from_frame(frame: Dict[str, Any]) -> Any:
    return decode_message(frame["m"])


class AsyncioTransport:
    """The live transport: asyncio delivery for local nodes, pluggable
    socket egress for remote ones.

    Parameters
    ----------
    tree:
        Topology sends are validated against.
    receiver:
        ``(src, dst, message) -> None`` — the node router.
    clock:
        Zero-argument callable stamping trace events (a
        :meth:`~repro.net.clock.HybridClock.tick` in live mode).  Default
        stamps 0.0, matching the synchronous transport's convention so
        in-process runs diff cleanly against the reference backend.
    local_nodes:
        Node ids delivered in-process.  ``None`` means *all* (in-process
        mode).
    remote_send:
        ``(src, dst, message, seq) -> None`` egress for non-local
        destinations; required when ``local_nodes`` is a proper subset.
    incarnation:
        This process's spawn generation; stamped on every send.
    """

    #: Multi-task mutation license (asynclint PL604): ``send`` is handed to
    #: every hosted node as its egress callable, so any task delivering a
    #: message appends to ``_queue`` and flips ``_pump_scheduled``; the
    #: scheduled ``_pump`` callback pops.  Single event loop, and neither
    #: send nor _pump awaits while touching them — each step is atomic.
    _ASYNC_SHARED: FrozenSet[str] = frozenset({"_queue", "_pump_scheduled"})

    def __init__(
        self,
        tree: Tree,
        receiver: Callable[[int, int, Any], None],
        *,
        clock: Optional[Callable[[], float]] = None,
        stats: Optional[MessageStats] = None,
        trace: Optional[TraceLog] = None,
        local_nodes: Optional[Set[int]] = None,
        remote_send: Optional[Callable[[int, int, Any, int], None]] = None,
        incarnation: int = 0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self.tree = tree
        self._receiver = receiver
        self._clock = clock
        self.stats = stats if stats is not None else MessageStats()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._all_local = local_nodes is None
        self.local_nodes: Set[int] = (
            set(local_nodes) if local_nodes is not None else set(tree.nodes())
        )
        self._remote_send = remote_send
        self.incarnation = incarnation
        self._loop = loop
        self._edges: Set[Edge] = set(tree.directed_edges())
        self._next_seq: Dict[Edge, int] = {}
        # Receiver-side dedup: highest (inc, seq) delivered per edge.  TCP
        # never duplicates, but a reconnect race could replay a frame; the
        # guard keeps delivery exactly-once cheaply.
        self._delivered: Dict[Edge, Tuple[int, int]] = {}
        self._queue: Deque[Tuple[int, int, Any, int, int]] = deque()
        self._draining = False
        self._pump_scheduled = False

    # ------------------------------------------------------------- interface
    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send one logical message (local: async FIFO; remote: socket)."""
        edge = (src, dst)
        if edge not in self._edges:
            raise ValueError(f"({src}, {dst}) is not a tree edge; cannot send")
        kind = getattr(message, "kind", type(message).__name__.lower())
        seq = self._next_seq.get(edge, 0)
        self._next_seq[edge] = seq + 1
        self.stats.record(src, dst, kind)
        self.trace.emit(
            self._now(), "send", src,
            dst=dst, msg=kind, seq=seq, inc=self.incarnation,
        )
        if dst in self.local_nodes:
            self._queue.append((src, dst, message, seq, self.incarnation))
            self._schedule_pump()
        else:
            if self._remote_send is None:
                raise RuntimeError(
                    f"node {dst} is not hosted here and no remote egress is wired"
                )
            self._remote_send(src, dst, message, seq)

    def sender(self, src: int, dst: int) -> Callable[[Any], None]:
        """A precomputed send callable for the directed edge ``src -> dst``."""
        if (src, dst) not in self._edges:
            raise ValueError(f"({src}, {dst}) is not a tree edge")
        return partial(self.send, src, dst)

    def in_flight(self) -> int:
        return len(self._queue)

    def is_quiescent(self) -> bool:
        """True when no local delivery is pending.  Remote frames in kernel
        buffers are invisible here — cross-process quiescence is the
        supervisor's job (stable status polls)."""
        return not self._queue

    def set_topology(self, tree: Tree) -> None:
        """Swap the tree under the transport (new edges start at seq 0)."""
        if self._queue:
            raise RuntimeError("cannot change topology with deliveries pending")
        self.tree = tree
        self._edges = set(tree.directed_edges())
        if self._all_local:
            self.local_nodes = set(tree.nodes())
        for edge in [e for e in self._next_seq if e not in self._edges]:
            del self._next_seq[edge]
        for edge in [e for e in self._delivered if e not in self._edges]:
            del self._delivered[edge]

    # -------------------------------------------------------------- delivery
    def _deliver(self, src: int, dst: int, message: Any, seq: int, inc: int) -> None:
        last = self._delivered.get((src, dst))
        if last is not None and (inc, seq) <= last:
            return  # replayed frame; already delivered
        self._delivered[(src, dst)] = (inc, seq)
        kind = getattr(message, "kind", type(message).__name__.lower())
        self.trace.emit(
            self._now(), "deliver", dst, src=src, msg=kind, seq=seq, inc=inc,
        )
        self._receiver(src, dst, message)

    def deliver_remote(self, src: int, dst: int, message: Any, seq: int, inc: int) -> None:
        """Ingress for a frame from a peer process (called by the server)."""
        self._deliver(src, dst, message, seq, inc)

    def _schedule_pump(self) -> None:
        """In server mode, drain the local queue on the running loop; the
        in-process mode drains from :meth:`run_to_quiescence` instead."""
        if self._loop is None or self._pump_scheduled:
            return
        self._pump_scheduled = True
        self._loop.call_soon(self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        while self._queue:
            self._deliver(*self._queue.popleft())

    async def _drain_async(self) -> None:
        while self._queue:
            item = self._queue.popleft()
            # One trip through the loop per delivery: deliveries interleave
            # with any other scheduled callbacks, like a real server.
            await asyncio.sleep(0)
            self._deliver(*item)

    def run_to_quiescence(self) -> None:
        """Drive a fresh asyncio event loop until every local delivery
        (including ones triggered by deliveries) has run.  The in-process
        engine drain — the live analog of ``Simulator.run()``."""
        if self._loop is not None:
            raise RuntimeError(
                "run_to_quiescence is for in-process mode; a NodeServer "
                "drains its transport on its own running loop"
            )
        if self._draining:
            return
        self._draining = True
        try:
            asyncio.run(self._drain_async())
        finally:
            self._draining = False


def _build_from_config(
    config: Any,
    tree: Tree,
    receiver: Callable[[int, int, Any], None],
    *,
    sim: Any = None,
    seed: int = 0,
    stats: Optional[MessageStats] = None,
    trace: Optional[TraceLog] = None,
    metrics: Any = None,
    profiler: Any = None,
) -> AsyncioTransport:
    """The ``build_transport`` factory for ``kind="asyncio"``.

    ``config.options`` may be a dict of :class:`AsyncioTransport` keyword
    arguments (``clock``, ``local_nodes``, ``remote_send``, ``incarnation``,
    ``loop``); engines normally pass none and get the in-process mode.
    """
    options = dict(config.options) if config.options else {}
    return AsyncioTransport(tree, receiver, stats=stats, trace=trace, **options)


__all__ = [
    "AsyncioTransport",
    "frame_bytes",
    "write_frame",
    "read_frame",
    "message_frame",
    "message_from_frame",
    "MAX_FRAME",
]
