"""Offline merge + verification of per-process JSONL traces.

A live run leaves one trace file per process *incarnation*
(``trace-<proc>.<inc>.jsonl``) plus the supervisor's own stream
(``trace-supervisor.jsonl`` — ``node_crash`` / ``node_recover`` marks and
the final ``quiescent`` event).  This module merges them back into one
happens-before-consistent event sequence and runs the exact same offline
checkers the simulator uses: :func:`repro.verify.causal.check_trace` and
the lemma monitors of :mod:`repro.obs.monitors`.

**Merge order.**  Every process stamps events with its hybrid logical
clock (:class:`~repro.net.clock.HybridClock`): per process strictly
monotone, and every wire frame carries the sender's stamp which the
receiver folds in before stamping the delivery.  Sorting the union by
``(time, file, line)`` therefore puts every delivery after its send and
preserves each process's emission order — exactly the property
``check_trace`` needs.

**Loss synthesis.**  A SIGKILLed process takes its queued frames with it;
unlike the simulator there is no omniscient channel to announce the
casualties.  They are reconstructed here instead: sends and deliveries
carry per-directed-edge ``seq`` numbers and the sender's ``inc``arnation,
so an exact FIFO match identifies every send that never delivered.  For
edges that a crash touched, a ``delivery_failed`` event is synthesized per
casualty — inserted *before* the first delivery of a later send on that
edge (so the checker's FIFO matcher retires the right send) and after the
``node_crash`` that explains it (so the delivery-contract monitor excuses
rather than flags it).  Unmatched sends on edges **no** crash touched are
left alone: those are real bugs and must surface as violations.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.export import event_from_dict
from repro.obs.monitors import all_violations, attach_standard_monitors
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.trace import TraceEvent, TraceLog
from repro.verify.causal import check_trace

Edge = Tuple[int, int]


def load_events(path: Union[str, pathlib.Path]) -> List[TraceEvent]:
    """Load one JSONL trace, tolerating a torn final line (SIGKILL mid-write)."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # torn tail of a killed process
    return events


def merge_traces(paths: Sequence[Any]) -> List[TraceEvent]:
    """Merge per-process traces into one HLC-ordered event sequence."""
    keyed: List[Tuple[float, int, int, TraceEvent]] = []
    for fi, path in enumerate(sorted(str(p) for p in paths)):
        for li, ev in enumerate(load_events(path)):
            keyed.append((ev.time, fi, li, ev))
    keyed.sort(key=lambda k: (k[0], k[1], k[2]))
    return [k[3] for k in keyed]


def _stamped(ev: TraceEvent) -> Optional[Tuple[int, int]]:
    """The (incarnation, seq) stamp of a send/deliver event, if present."""
    seq = ev.detail.get("seq")
    inc = ev.detail.get("inc")
    if isinstance(seq, int) and isinstance(inc, int):
        return (inc, seq)
    return None


def synthesize_losses(events: List[TraceEvent]) -> Tuple[List[TraceEvent], int]:
    """Insert ``delivery_failed`` events for crash casualties (see module doc).

    Returns the augmented event list and the number of synthesized events.
    """
    sends: Dict[Edge, List[Tuple[int, Tuple[int, int], str]]] = {}
    delivers: Dict[Edge, List[Tuple[int, Tuple[int, int]]]] = {}
    crashed_at: Dict[int, List[int]] = {}  # node -> indices of its crashes
    last_quiescent: Optional[int] = None
    for i, ev in enumerate(events):
        if ev.kind == "send":
            stamp = _stamped(ev)
            if stamp is not None:
                edge = (ev.node, ev.detail["dst"])
                sends.setdefault(edge, []).append((i, stamp, ev.detail["msg"]))
        elif ev.kind == "deliver":
            stamp = _stamped(ev)
            if stamp is not None:
                edge = (ev.detail["src"], ev.node)
                delivers.setdefault(edge, []).append((i, stamp))
        elif ev.kind == "node_crash":
            crashed_at.setdefault(ev.node, []).append(i)
        elif ev.kind == "quiescent":
            last_quiescent = i

    insertions: List[Tuple[int, TraceEvent]] = []
    for edge in sorted(sends):
        src, dst = edge
        if src not in crashed_at and dst not in crashed_at:
            continue  # losses here would be real bugs: let the checkers flag them
        delivered = {stamp for _, stamp in delivers.get(edge, [])}
        for send_idx, stamp, msg in sends[edge]:
            if stamp in delivered:
                continue
            # Before the first delivery of a LATER send on this edge (edge
            # deliveries arrive in stamp order, so this is also after every
            # earlier send's delivery)...
            bound = len(events) if last_quiescent is None else last_quiescent
            for d_idx, d_stamp in delivers.get(edge, []):
                if d_stamp > stamp:
                    bound = min(bound, d_idx)
                    break
            # ... and after a crash of an edge endpoint when one fits, so
            # the delivery-contract monitor sees the excuse first.
            ins = bound
            crash_idxs = crashed_at.get(src, []) + crashed_at.get(dst, [])
            if not any(c < ins for c in crash_idxs):
                after = min((c for c in crash_idxs if c >= send_idx), default=None)
                if after is not None and after + 1 <= bound:
                    ins = after + 1
            when = events[ins - 1].time if ins > 0 else events[send_idx].time
            insertions.append((
                ins,
                TraceEvent(
                    time=when,
                    kind="delivery_failed",
                    node=src,
                    detail={
                        "dst": dst,
                        "msg": msg,
                        "seq": stamp[1],
                        "inc": stamp[0],
                        "attempts": 0,
                        "synthesized": True,
                    },
                ),
            ))

    if not insertions:
        return events, 0
    insertions.sort(key=lambda item: item[0])
    out: List[TraceEvent] = []
    cursor = 0
    for ins, ev in insertions:
        out.extend(events[cursor:ins])
        out.append(ev)
        cursor = ins
    out.extend(events[cursor:])
    return out, len(insertions)


def merge_run_dir(
    run_dir: Union[str, pathlib.Path],
) -> Tuple[List[TraceEvent], List[str], int]:
    """Merge every ``trace-*.jsonl`` under a serve run directory.

    Returns ``(events, trace_files, synthesized_losses)`` with loss
    synthesis already applied.
    """
    run_dir = pathlib.Path(run_dir)
    files = sorted(str(p) for p in run_dir.glob("trace-*.jsonl"))
    events = merge_traces(files)
    events, synthesized = synthesize_losses(events)
    return events, files, synthesized


def verify_merged(
    events: Sequence[TraceEvent],
    op: AggregationOperator = SUM,
    n_nodes: Optional[int] = None,
) -> Dict[str, Any]:
    """Run ``check_trace`` + the lemma monitors over a merged event sequence.

    Monitors run in collect mode (``strict=False``); the returned summary
    has ``ok`` true iff neither family found a violation.
    """
    report = check_trace(list(events), op=op, n_nodes=n_nodes)
    log = TraceLog(enabled=True)
    monitors = attach_standard_monitors(log, strict=False)
    for ev in events:
        log.emit(ev.time, ev.kind, ev.node, **ev.detail)
    monitor_violations = all_violations(monitors)
    return {
        "events": len(events),
        "causal": report.to_dict(),
        "monitor_violations": [str(v) for v in monitor_violations],
        "monitors": {
            m.name: {"ok": m.ok, "violations": len(m.violations)} for m in monitors
        },
        "ok": report.ok and not monitor_violations,
    }


__all__ = [
    "load_events",
    "merge_traces",
    "synthesize_losses",
    "merge_run_dir",
    "verify_merged",
]
