"""Declarative cluster description and the process supervisor.

:class:`ClusterConfig` is the single JSON-serializable artifact a live run
needs: topology, node→process assignment, ports, policy, clock-domain knobs
(lease TTL, checkpoint interval) and the run directory.  The supervisor
writes it to ``<run_dir>/cluster.json``; every node process is spawned as
``python -m repro serve-node --config <path> --proc <name> --incarnation
<k>`` and reads everything else from the file, so a run is reproducible
from one artifact.

:class:`ClusterSupervisor` spawns, monitors, kills and restarts the node
processes, acts as the client frontend (it owns one control connection per
process for write/combine requests and status polls), and keeps its own
JSONL trace stream: ``node_crash`` / ``node_recover`` events for chaos
kills — which the lemma monitors use to excuse crash-edge losses — and the
final ``quiescent`` event the monitors check on.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

#: Upper bound on any single control-socket await (drain): a wedged node
#: process surfaces as an error, never as a hung supervisor (PL603).
CTRL_IO_TIMEOUT = 10.0

from repro.core.policies import AlwaysLeasePolicy, NeverLeasePolicy, RWWPolicy
from repro.net.clock import HybridClock
from repro.net.transport import read_frame, write_frame
from repro.obs.export import _dump_line
from repro.sim.trace import TraceEvent
from repro.tree.topology import Tree

#: The runtime's system-node id for run-scoped events (quiescent).
SYSTEM_NODE = -1


def policy_factory_for(spec: str) -> Callable[[], Any]:
    """Parse a policy spec (``rww | always | never | ab:a,b``) into a
    zero-argument factory — the serve-mode subset of the CLI's specs."""
    if spec == "rww":
        return RWWPolicy
    if spec == "always":
        return AlwaysLeasePolicy
    if spec == "never":
        return NeverLeasePolicy
    if spec.startswith("ab:"):
        from repro.core.policies import ABPolicy

        a_str, b_str = spec[3:].split(",")
        a, b = int(a_str), int(b_str)
        return lambda: ABPolicy(a, b)
    raise ValueError(f"unknown policy spec {spec!r}")


def free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """OS-assigned free TCP ports (bound briefly, then released)."""
    socks: List[socket.socket] = []
    ports: List[int] = []
    try:
        for _ in range(count):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.bind((host, 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
    finally:
        for s in socks:
            s.close()
    return ports


@dataclass
class ClusterConfig:
    """Everything a live run needs, in one JSON-serializable object.

    Attributes
    ----------
    n, edges:
        The aggregation tree.
    assignment:
        Process name -> sorted list of hosted node ids.
    ports:
        Process name -> TCP port (one listener per process, carrying peer
        protocol traffic and supervisor control frames alike).
    host:
        Bind/connect address (localhost deployments).
    policy:
        Lease policy spec (see :func:`policy_factory_for`).
    lease_ttl:
        Wall-clock seconds a lease survives peer silence before the TTL
        sweep expires it (PaxosLease-style liveness).
    checkpoint_interval:
        Wall-clock seconds between durable checkpoints of each node's
        volatile state.
    run_dir:
        Directory for per-process trace streams, checkpoints, metrics and
        the merged trace.
    """

    n: int
    edges: List[Tuple[int, int]]
    assignment: Dict[str, List[int]] = field(default_factory=dict)
    ports: Dict[str, int] = field(default_factory=dict)
    host: str = "127.0.0.1"
    policy: str = "rww"
    lease_ttl: float = 2.0
    checkpoint_interval: float = 1.0
    run_dir: str = "."

    @classmethod
    def for_tree(
        cls,
        tree: Tree,
        run_dir: str,
        *,
        nodes_per_proc: int = 1,
        policy: str = "rww",
        lease_ttl: float = 2.0,
        checkpoint_interval: float = 1.0,
        host: str = "127.0.0.1",
    ) -> "ClusterConfig":
        """One process per ``nodes_per_proc`` consecutive node ids, with
        OS-assigned free ports."""
        nodes = list(tree.nodes())
        assignment: Dict[str, List[int]] = {}
        for i in range(0, len(nodes), nodes_per_proc):
            chunk = nodes[i : i + nodes_per_proc]
            assignment[f"p{len(assignment)}"] = chunk
        ports = dict(zip(assignment, free_ports(len(assignment), host)))
        return cls(
            n=tree.n,
            edges=[tuple(e) for e in tree.edges],
            assignment=assignment,
            ports=ports,
            host=host,
            policy=policy,
            lease_ttl=lease_ttl,
            checkpoint_interval=checkpoint_interval,
            run_dir=str(run_dir),
        )

    @property
    def tree(self) -> Tree:
        return Tree(self.n, [tuple(e) for e in self.edges])

    @property
    def procs(self) -> List[str]:
        return sorted(self.assignment)

    def proc_of(self, node: int) -> str:
        for proc, nodes in self.assignment.items():
            if node in nodes:
                return proc
        raise KeyError(f"node {node} is not assigned to any process")

    def addr(self, proc: str) -> Tuple[str, int]:
        return (self.host, self.ports[proc])

    # -------------------------------------------------------------- persist
    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "edges": [list(e) for e in self.edges],
            "assignment": {p: list(ns) for p, ns in self.assignment.items()},
            "ports": dict(self.ports),
            "host": self.host,
            "policy": self.policy,
            "lease_ttl": self.lease_ttl,
            "checkpoint_interval": self.checkpoint_interval,
            "run_dir": self.run_dir,
        }

    def save(self, path: os.PathLike) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: os.PathLike) -> "ClusterConfig":
        d = json.loads(pathlib.Path(path).read_text())
        return cls(
            n=d["n"],
            edges=[tuple(e) for e in d["edges"]],
            assignment={p: list(ns) for p, ns in d["assignment"].items()},
            ports={p: int(v) for p, v in d["ports"].items()},
            host=d.get("host", "127.0.0.1"),
            policy=d.get("policy", "rww"),
            lease_ttl=float(d.get("lease_ttl", 2.0)),
            checkpoint_interval=float(d.get("checkpoint_interval", 1.0)),
            run_dir=d.get("run_dir", "."),
        )


class _ProcClient:
    """One control connection to a node process, with a reader task that
    resolves request/status futures."""

    def __init__(
        self,
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.req_futures: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self.status_waiters: List["asyncio.Future[Dict[str, Any]]"] = []
        self.task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        while True:
            frame = await read_frame(self.reader)
            if frame is None:
                break
            ftype = frame.get("type")
            if ftype == "req_done":
                fut = self.req_futures.pop(frame["req"], None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
            elif ftype == "status_reply":
                if self.status_waiters:
                    fut = self.status_waiters.pop(0)
                    if not fut.done():
                        fut.set_result(frame)
        # Torn connection: fail whatever is still waiting.
        for fut in list(self.req_futures.values()) + self.status_waiters:
            if not fut.done():
                fut.set_exception(ConnectionError(f"{self.name} went away"))
        self.req_futures.clear()
        self.status_waiters.clear()

    def close(self) -> None:
        self.task.cancel()
        try:
            self.writer.close()
        except Exception:
            pass


class ClusterSupervisor:
    """Spawns and controls the node processes of one live run."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.run_dir = pathlib.Path(config.run_dir)
        self.procs: Dict[str, "subprocess.Popen[bytes]"] = {}
        self.incarnations: Dict[str, int] = {p: 0 for p in config.procs}
        self.clients: Dict[str, _ProcClient] = {}
        self.hlc = HybridClock()
        self._next_req = 0
        self._trace_fh: Optional[TextIO] = None
        self.results: List[Dict[str, Any]] = []
        self.failed: List[Dict[str, Any]] = []

    # -------------------------------------------------------------- tracing
    def emit(self, kind: str, node: int, **detail: Any) -> None:
        """Append one event to the supervisor's JSONL trace stream."""
        if self._trace_fh is None:
            return
        ev = TraceEvent(time=self.hlc.tick(), kind=kind, node=node, detail=detail)
        self._trace_fh.write(_dump_line(ev) + "\n")
        self._trace_fh.flush()

    # ------------------------------------------------------------ lifecycle
    def _spawn(self, proc: str) -> None:
        inc = self.incarnations[proc]
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        log = (self.run_dir / f"proc-{proc}.{inc}.log").open("wb")
        self.procs[proc] = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-node",
                "--config", str(self.run_dir / "cluster.json"),
                "--proc", proc,
                "--incarnation", str(inc),
            ],
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
            cwd=str(self.run_dir),
        )

    async def start(self, ready_timeout: float = 30.0) -> None:
        """Write the config, spawn every process, wait until all answer."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.config.save(self.run_dir / "cluster.json")
        self._trace_fh = (self.run_dir / "trace-supervisor.jsonl").open("w")
        for proc in self.config.procs:
            self._spawn(proc)
        for proc in self.config.procs:
            await self._connect(proc, timeout=ready_timeout)

    async def _connect(self, proc: str, timeout: float = 30.0) -> _ProcClient:
        existing = self.clients.get(proc)
        if existing is not None and not existing.task.done():
            return existing
        host, port = self.config.addr(proc)
        deadline = time.monotonic() + timeout
        last_exc: Optional[BaseException] = None
        while time.monotonic() < deadline:
            child = self.procs.get(proc)
            if child is not None and child.poll() is not None:
                raise RuntimeError(
                    f"process {proc} exited with {child.returncode} before "
                    f"becoming ready (see {self.run_dir}/proc-{proc}.*.log)"
                )
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=max(deadline - time.monotonic(), 0.05),
                )
                write_frame(writer, {"type": "hello", "proc": "supervisor", "inc": 0})
                await asyncio.wait_for(writer.drain(), CTRL_IO_TIMEOUT)
                client = _ProcClient(proc, reader, writer)
                self.clients[proc] = client
                # One status round-trip proves the server loop is live.
                await self._status(client)
                return client
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_exc = exc
                await asyncio.sleep(0.05)
        raise TimeoutError(f"process {proc} not ready after {timeout}s: {last_exc}")

    # -------------------------------------------------------------- requests
    async def submit(
        self, node: int, op: str, arg: Any = None, timeout: float = 30.0
    ) -> Dict[str, Any]:
        """Submit one write/combine to the hosting process; await its
        ``req_done``.  A timeout marks the request failed (recorded, not
        raised) — the chaos acceptance counts these."""
        req_id = self._next_req
        self._next_req += 1
        proc = self.config.proc_of(node)
        client = await self._connect(proc)
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        client.req_futures[req_id] = fut
        write_frame(
            client.writer,
            {
                "type": "req", "req": req_id, "node": node, "op": op,
                "arg": arg, "hlc": self.hlc.tick(),
            },
        )
        await asyncio.wait_for(client.writer.drain(), CTRL_IO_TIMEOUT)
        try:
            frame = await asyncio.wait_for(fut, timeout)
        except (asyncio.TimeoutError, ConnectionError) as exc:
            record = {"req": req_id, "node": node, "op": op, "error": str(exc) or "timeout"}
            self.failed.append(record)
            client.req_futures.pop(req_id, None)
            return record
        self.hlc.observe(frame.get("hlc", 0.0))
        self.results.append(frame)
        return frame

    async def _status(self, client: _ProcClient) -> Dict[str, Any]:
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        client.status_waiters.append(fut)
        write_frame(client.writer, {"type": "status"})
        await asyncio.wait_for(client.writer.drain(), CTRL_IO_TIMEOUT)
        frame = await asyncio.wait_for(fut, 10.0)
        self.hlc.observe(frame.get("hlc", 0.0))
        return frame

    async def quiesce(
        self, *, stable_polls: int = 2, gap: float = 0.2, timeout: float = 30.0
    ) -> bool:
        """Poll every process until all report idle with stable event
        counts for ``stable_polls`` consecutive rounds."""
        deadline = time.monotonic() + timeout
        stable = 0
        last_sig: Optional[Tuple[Any, ...]] = None
        while time.monotonic() < deadline:
            sigs: List[Tuple[Any, ...]] = []
            idle = True
            for proc in self.config.procs:
                try:
                    st = await self._status(await self._connect(proc, timeout=5.0))
                except (TimeoutError, ConnectionError, OSError, RuntimeError):
                    idle = False
                    sigs.append((proc, "down"))
                    continue
                idle = idle and st.get("idle", False)
                sigs.append((proc, st.get("events"), st.get("inc")))
            sig = tuple(sigs)
            if idle and sig == last_sig:
                stable += 1
                if stable >= stable_polls:
                    return True
            else:
                stable = 0
            last_sig = sig
            await asyncio.sleep(gap)
        return False

    # ----------------------------------------------------------------- chaos
    async def kill_proc(self, proc: str) -> None:
        """SIGKILL a node process mid-run (no cleanup, no flushing —
        volatile state is genuinely gone)."""
        child = self.procs.get(proc)
        if child is None or child.poll() is not None:
            return
        child.send_signal(signal.SIGKILL)
        child.wait()
        client = self.clients.pop(proc, None)
        if client is not None:
            client.close()
        for node in self.config.assignment[proc]:
            self.emit("node_crash", node)

    async def restart_proc(self, proc: str, ready_timeout: float = 30.0) -> None:
        """Respawn a killed process with a bumped incarnation; it restores
        its checkpoint and runs the lease reconciliation round itself."""
        self.incarnations[proc] += 1
        for node in self.config.assignment[proc]:
            self.emit("node_recover", node)
        self._spawn(proc)
        await self._connect(proc, timeout=ready_timeout)

    # -------------------------------------------------------------- shutdown
    async def shutdown(self, *, quiescent_event: bool = True) -> None:
        """Settle, stamp the final ``quiescent`` event, stop every process."""
        if quiescent_event:
            self.emit("quiescent", SYSTEM_NODE)
        for proc, client in list(self.clients.items()):
            try:
                write_frame(client.writer, {"type": "shutdown"})
                await asyncio.wait_for(client.writer.drain(), CTRL_IO_TIMEOUT)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
        deadline = time.monotonic() + 10.0
        for proc, child in self.procs.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda c=child, r=remaining: c.wait(timeout=r)
                )
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()
        for client in self.clients.values():
            client.close()
        self.clients.clear()
        if self._trace_fh is not None:
            self._trace_fh.close()
            self._trace_fh = None


__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "policy_factory_for",
    "free_ports",
    "SYSTEM_NODE",
]
