"""Canonical wire codec for the lease-mechanism messages.

Every :class:`~repro.core.messages.Message` subclass has an entry in
:data:`_ENCODERS` / :data:`_DECODERS`, keyed by class and by ``kind``
string respectively.  Completeness is enforced statically by the
``protolint`` rule PL102 (mirroring PL101's dispatch-coverage rule): a new
message type without a codec entry fails ``python -m repro verify lint``
before it can ever reach a socket.

The encoding reuses the JSONL trace machinery's conventions
(:func:`repro.obs.export._jsonify` canonicalization): frozensets become
sorted lists, tuples become lists, and payload dicts are emitted with
sorted keys so a frame's bytes are a pure function of the message value.
Ghost ``wlog`` snapshots (Section 5 instrumentation) carry
:class:`~repro.workloads.requests.Request` entries; they round-trip
faithfully, though the live deployment never enables ghosts.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.core.messages import Message, Probe, Release, Response, Revoke, Update
from repro.workloads.requests import Request


def _request_to_dict(req: Request) -> Dict[str, Any]:
    return {
        "node": req.node,
        "op": req.op,
        "arg": req.arg,
        "retval": req.retval,
        "index": req.index,
        "initiated_at": req.initiated_at,
        "completed_at": req.completed_at,
        "scope": req.scope,
        "failed": req.failed,
    }


def _request_from_dict(d: Dict[str, Any]) -> Request:
    return Request(
        node=d["node"],
        op=d["op"],
        arg=d.get("arg"),
        retval=d.get("retval"),
        index=d.get("index", -1),
        initiated_at=d.get("initiated_at", 0.0),
        completed_at=d.get("completed_at", 0.0),
        scope=d.get("scope"),
        failed=d.get("failed", False),
    )


def _wlog_to_list(wlog: Optional[Tuple[Any, ...]]) -> Optional[list]:
    if wlog is None:
        return None
    return [_request_to_dict(r) for r in wlog]


def _wlog_from_list(data: Optional[list]) -> Optional[Tuple[Any, ...]]:
    if data is None:
        return None
    return tuple(_request_from_dict(d) for d in data)


# --------------------------------------------------------------- per-class
def _encode_probe(m: Probe) -> Dict[str, Any]:
    return {}


def _decode_probe(d: Dict[str, Any]) -> Probe:
    return Probe()


def _encode_response(m: Response) -> Dict[str, Any]:
    return {"x": m.x, "flag": m.flag, "wlog": _wlog_to_list(m.wlog)}


def _decode_response(d: Dict[str, Any]) -> Response:
    return Response(x=d["x"], flag=d["flag"], wlog=_wlog_from_list(d.get("wlog")))


def _encode_update(m: Update) -> Dict[str, Any]:
    return {"x": m.x, "id": m.id, "wlog": _wlog_to_list(m.wlog)}


def _decode_update(d: Dict[str, Any]) -> Update:
    return Update(x=d["x"], id=d["id"], wlog=_wlog_from_list(d.get("wlog")))


def _encode_revoke(m: Revoke) -> Dict[str, Any]:
    return {}


def _decode_revoke(d: Dict[str, Any]) -> Revoke:
    return Revoke()


def _encode_release(m: Release) -> Dict[str, Any]:
    return {"S": sorted(m.S)}


def _decode_release(d: Dict[str, Any]) -> Release:
    return Release(S=frozenset(d["S"]))


#: Class -> field encoder.  PL102 statically checks this dict covers every
#: ``Message`` subclass in ``core/messages.py`` (keys must be plain class
#: names, mirroring the ``_DISPATCH`` registration checked by PL101).
_ENCODERS: Dict[Type[Message], Callable[[Any], Dict[str, Any]]] = {
    Probe: _encode_probe,
    Response: _encode_response,
    Update: _encode_update,
    Revoke: _encode_revoke,
    Release: _encode_release,
}

#: Kind string -> field decoder (the inverse registry).
_DECODERS: Dict[str, Callable[[Dict[str, Any]], Message]] = {
    Probe().kind: _decode_probe,
    Response(x=None, flag=False).kind: _decode_response,
    Update(x=None, id=0).kind: _decode_update,
    Revoke().kind: _decode_revoke,
    Release(S=frozenset()).kind: _decode_release,
}


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode a message to its canonical JSON-ready dict (with ``kind``)."""
    enc = _ENCODERS.get(type(message))
    if enc is None:
        raise TypeError(
            f"no wire codec for {type(message).__name__}; add an entry to "
            "repro.net.codec._ENCODERS (PL102 enforces this)"
        )
    body = enc(message)
    body["kind"] = message.kind
    return body


def decode_message(data: Dict[str, Any]) -> Message:
    """Decode a dict produced by :func:`encode_message`."""
    kind = data.get("kind")
    dec = _DECODERS.get(kind)
    if dec is None:
        raise ValueError(f"unknown message kind on the wire: {kind!r}")
    return dec(data)


def dumps_message(message: Message) -> str:
    """Canonical JSON text for one message (sorted keys, no whitespace)."""
    return json.dumps(encode_message(message), sort_keys=True, separators=(",", ":"))


def loads_message(text: str) -> Message:
    return decode_message(json.loads(text))


__all__ = [
    "encode_message",
    "decode_message",
    "dumps_message",
    "loads_message",
]
