"""`NodeServer`: one OS process hosting a slice of the aggregation tree.

Each server process owns:

* the **hosted** :class:`~repro.core.mechanism.LeaseNode` automata (one or
  more node ids from the :class:`~repro.net.cluster.ClusterConfig`
  assignment), driven unmodified — the automaton cannot tell sockets from
  the simulator;
* an :class:`~repro.net.transport.AsyncioTransport` built through the
  transport seam (``TransportConfig.external("asyncio")``): hosted-to-
  hosted messages loop back through the asyncio event loop, everything else
  is framed onto a per-peer-process TCP connection;
* a per-process **JSONL trace stream**
  (``trace-<proc>.<incarnation>.jsonl``), flushed line-per-event so a
  SIGKILL loses at most one partial line (the merge tool tolerates torn
  tails);
* **wall-clock lease TTL sweeps** mirroring
  :class:`~repro.recovery.manager.RecoveryManager`: the existing
  :class:`~repro.recovery.lease_ttl.LeaseExpiry` abstraction renewed by
  trace traffic, expiring taken leases before granted ones (the same
  holder-first grace), plus the stuck-round re-probe pacing;
* **durable checkpoints** (:class:`~repro.recovery.checkpoint.Checkpoint`
  pickled per node) captured every ``checkpoint_interval`` seconds; a
  restarted incarnation restores them and runs
  :meth:`LeaseNode.recover_reconcile` before serving;
* per-process **metrics** (the standard
  :class:`~repro.obs.metrics.MetricsBridge` over the trace), dumped to
  ``metrics-<proc>.<incarnation>.json`` at shutdown.

Messages to a peer that is down are *dropped after a short dial grace* —
exactly the simulator's crash semantics, where
``ReliableNetwork.reset_edges_for`` declares unacked segments lost.  The
loss shows up offline: the merge tool FIFO-matches the ``seq``/``inc``
stamps and synthesizes ``delivery_failed`` events on crash-touched edges.
"""

from __future__ import annotations

import asyncio
import pathlib
import pickle
import time
from collections import deque
from functools import partial
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    TextIO,
    Tuple,
)

from repro.core.mechanism import LeaseNode
from repro.core.messages import Probe
from repro.core.runtime import Router
from repro.net.cluster import ClusterConfig, policy_factory_for
from repro.net.clock import HybridClock, WallClock
from repro.net.codec import decode_message
from repro.net.transport import (
    AsyncioTransport,
    message_frame,
    read_frame,
    write_frame,
)
from repro.obs.export import _dump_line
from repro.obs.metrics import MetricsBridge, MetricsRegistry
from repro.ops.standard import SUM
from repro.recovery.checkpoint import Checkpoint, CheckpointStore
from repro.recovery.lease_ttl import LeaseExpiry
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.sim.transport import TransportConfig, build_transport
from repro.workloads.requests import COMBINE, WRITE, Request

#: How long a dead peer's dial is retried before frames are dropped as
#: losses (the live analog of the sim's declared-lost unacked segments).
DIAL_GRACE = 0.25

#: Upper bound on any single peer-socket await (``drain``, one dial
#: attempt): a dead peer must surface as a reconnect, never as a wedged
#: writer task (asynclint PL603).
PEER_IO_TIMEOUT = 5.0


class _TraceStreamer:
    """Trace subscriber appending one flushed JSONL line per event."""

    def __init__(self, path: pathlib.Path) -> None:
        self.fh: TextIO = open(path, "w")
        self.count = 0
        #: Event count excluding periodic housekeeping (checkpoints) — the
        #: supervisor's quiescence poll compares this across rounds, and a
        #: checkpoint tick must not read as protocol activity.
        self.activity = 0

    def __call__(self, ev: Any) -> None:
        self.fh.write(_dump_line(ev) + "\n")
        self.fh.flush()
        self.count += 1
        if ev.kind != "checkpoint":
            self.activity += 1

    def close(self) -> None:
        try:
            self.fh.close()
        except Exception:
            pass


class NodeServer:
    """Hosts the ``proc`` slice of a cluster on one asyncio event loop."""

    #: Fields deliberately mutated from more than one task (asynclint
    #: PL604 license).  Everything runs on ONE event loop, so these are
    #: not memory races — the hazard is interleaving across ``await``
    #: points, and each entry's discipline rules that out:
    #:
    #: ``nodes``        LeaseNode mutations are synchronous call chains
    #:                  (`_serve_conn` delivery, `_sweep_task` expiry);
    #:                  no handler ever awaits mid-mutation, so each
    #:                  automaton step is atomic on the loop.
    #: ``_out_queues``  append (any sender) vs popleft (only the peer's
    #:                  single writer task): a one-reader queue.
    #: ``_out_wake``    Event set by producers, cleared only by the one
    #:                  consumer.
    #: ``_down_until``  monotonic-time marker: writer task sets it on dial
    #:                  failure, `_serve_conn` deletes it on a hello; both
    #:                  transitions are idempotent and self-correcting.
    #: ``_tasks``       append-only retention list, pruned/cancelled in
    #:                  one place (`_retain` / `run` teardown).
    _ASYNC_SHARED: FrozenSet[str] = frozenset(
        {"nodes", "_out_queues", "_out_wake", "_down_until", "_tasks"}
    )

    def __init__(self, config: ClusterConfig, proc: str, incarnation: int = 0) -> None:
        self.config = config
        self.proc = proc
        self.incarnation = incarnation
        self.hosted: Set[int] = set(config.assignment[proc])
        self.tree = config.tree
        self.hlc = HybridClock()
        self.wall = WallClock(self.hlc)
        self.stats = MessageStats()
        self.trace = TraceLog(enabled=True)
        self.metrics = MetricsRegistry()
        self.trace.subscribe(MetricsBridge(self.metrics))
        self.run_dir = pathlib.Path(config.run_dir)
        self.streamer = _TraceStreamer(
            self.run_dir / f"trace-{proc}.{incarnation}.jsonl"
        )
        self.trace.subscribe(self.streamer)
        self.router = Router()
        self.nodes: Dict[int, LeaseNode] = {}
        self.transport: Optional[AsyncioTransport] = None
        self.store = CheckpointStore()
        self.expiry = LeaseExpiry(config.lease_ttl)
        self.trace.subscribe(self._renew_on_traffic)
        self._round_seen: Dict[Tuple[int, int], float] = {}
        self._reprobed: Dict[Tuple[int, int], float] = {}
        self._out_queues: Dict[str, Deque[Dict[str, Any]]] = {}
        self._out_wake: Dict[str, asyncio.Event] = {}
        self._down_until: Dict[str, float] = {}
        self._stopping = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Future[Any]"] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _retain(self, task: "asyncio.Future[Any]") -> None:
        """Keep a strong reference to a background task (the event loop
        holds only a weak one), pruning completed entries as we go."""
        self._tasks = [t for t in self._tasks if not t.done()]
        self._tasks.append(task)

    # ---------------------------------------------------------------- setup
    def _build_nodes(self) -> None:
        assert self._loop is not None
        self.transport = build_transport(
            TransportConfig.external(
                "asyncio",
                options={
                    "clock": self.hlc.tick,
                    "local_nodes": self.hosted,
                    "remote_send": self._remote_send,
                    "incarnation": self.incarnation,
                    "loop": self._loop,
                },
            ),
            self.tree,
            receiver=self.router.route,
            stats=self.stats,
            trace=self.trace,
        )
        policy_factory = policy_factory_for(self.config.policy)
        for nid in sorted(self.hosted):
            node = LeaseNode(
                nid,
                self.tree,
                SUM,
                policy_factory(),
                send=partial(self.transport.send, nid),
                trace=self.trace,
                clock=self.hlc.tick,
            )
            self.nodes[nid] = node
            self.router.add(node)

    async def _recover_from_checkpoints(self) -> None:
        """A restarted incarnation restores durable checkpoints, then runs
        the reconciliation round (Release(∅) + Revoke per neighbor, fresh
        probes) — identical to the simulator's recovery path.  File reads
        go through the executor; the node mutations stay on the loop
        (``recover_reconcile`` sends through ``_remote_send``, which
        touches loop-owned ``asyncio.Event``s)."""
        loop = asyncio.get_running_loop()
        for nid, node in sorted(self.nodes.items()):
            cp_path = self.run_dir / f"checkpoint-n{nid}.pkl"
            try:
                data = await loop.run_in_executor(None, cp_path.read_bytes)
            except OSError:
                data = None  # no checkpoint yet
            if data is not None:
                try:
                    cp: Checkpoint = pickle.loads(data)
                    cp.restore(node)
                except Exception:
                    pass  # torn checkpoint (killed mid-write): start fresh
            node.recover_reconcile(reestablish=True)
        now = self.wall.now
        for nid in self.hosted:
            for v in self.tree.neighbors(nid):
                self.expiry.renew((nid, v), now)
                self.expiry.renew((v, nid), now)

    # -------------------------------------------------------------- lease TTL
    def _renew_on_traffic(self, ev: Any) -> None:
        # Mirrors RecoveryManager._on_trace: traffic in either direction
        # renews the edge's lease timers.
        if ev.kind in ("recv", "deliver"):
            src = ev.detail.get("src")
            if src is not None and src >= 0:
                self.expiry.renew((ev.node, src), ev.time)
        elif ev.kind == "send":
            dst = ev.detail.get("dst")
            if dst is not None and dst >= 0:
                self.expiry.renew((ev.node, dst), ev.time)
        elif ev.kind == "lease_acquired":
            self.expiry.renew((ev.node, ev.detail["source"]), ev.time)
        elif ev.kind == "lease_granted":
            self.expiry.renew((ev.node, ev.detail["grantee"]), ev.time)

    def _sweep_body(self) -> None:
        """Wall-clock twin of RecoveryManager._sweep_body for the hosted
        nodes: expire silent peers' leases (holder before granter) and
        re-probe stuck rounds, paced at one per TTL per edge."""
        now = self.wall.now
        ttl = self.config.lease_ttl
        grace = ttl / 2
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            for v in list(node.nbrs):
                if node.taken.get(v, False) and not self.expiry.alive((nid, v), now):
                    node.expire_taken(v)
                    self.metrics.counter(
                        "lease_expirations_total", node=nid, side="taken"
                    ).inc()
                if node.granted.get(v, False) and not self.expiry.alive(
                    (nid, v), now - grace
                ):
                    node.expire_granted(v)
                    self.metrics.counter(
                        "lease_expirations_total", node=nid, side="granted"
                    ).inc()
            for root in sorted(node.pndg):
                first = self._round_seen.setdefault((nid, root), now)
                if now - first < ttl:
                    continue
                for w in sorted(node.snt.get(root, ())):
                    last = self._reprobed.get((nid, w))
                    if last is not None and now - last < ttl:
                        continue
                    self._reprobed[(nid, w)] = now
                    self.trace.emit(self.hlc.tick(), "reprobe", nid, dst=w, root=root)
                    node.send(w, Probe())
        self._round_seen = {
            key: t0
            for key, t0 in self._round_seen.items()
            if key[0] in self.nodes and key[1] in self.nodes[key[0]].pndg
        }

    async def _sweep_task(self) -> None:
        step = self.config.lease_ttl / 2
        while not self._stopping.is_set():
            try:
                await asyncio.wait_for(self._stopping.wait(), timeout=step)
                return
            except asyncio.TimeoutError:
                pass
            self._sweep_body()

    # ------------------------------------------------------------ checkpoints
    def _capture_checkpoints(self) -> List[Tuple[pathlib.Path, bytes]]:
        """Snapshot every hosted node *synchronously on the loop* (the
        capture must not interleave with message delivery) and return the
        serialized blobs for out-of-loop persistence."""
        now = self.wall.now
        blobs: List[Tuple[pathlib.Path, bytes]] = []
        for nid, node in sorted(self.nodes.items()):
            cp = Checkpoint.capture(node, self.store.next_seq(nid), now)
            self.store.save(cp)
            cp_path = self.run_dir / f"checkpoint-n{nid}.pkl"
            blobs.append((cp_path, pickle.dumps(cp)))
            self.trace.emit(self.hlc.tick(), "checkpoint", nid, seq=cp.seq)
            self.metrics.counter("checkpoints_total", node=nid).inc()
        return blobs

    @staticmethod
    def _persist_blobs(blobs: List[Tuple[pathlib.Path, bytes]]) -> None:
        """Write checkpoint blobs durably (tmp + rename so a SIGKILL never
        tears a checkpoint).  Runs in the executor: pure file I/O, no
        node or loop state touched."""
        for cp_path, data in blobs:
            tmp = cp_path.with_suffix(".pkl.tmp")
            tmp.write_bytes(data)
            tmp.replace(cp_path)

    async def _checkpoint_now(self) -> None:
        blobs = self._capture_checkpoints()
        if blobs:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._persist_blobs, blobs)

    async def _checkpoint_task(self) -> None:
        step = self.config.checkpoint_interval
        while not self._stopping.is_set():
            try:
                await asyncio.wait_for(self._stopping.wait(), timeout=step)
                return
            except asyncio.TimeoutError:
                pass
            await self._checkpoint_now()

    # ----------------------------------------------------------- remote egress
    def _remote_send(self, src: int, dst: int, message: Any, seq: int) -> None:
        peer = self.config.proc_of(dst)
        frame = message_frame(src, dst, message, seq, self.incarnation, self.hlc.tick())
        self._out_queues[peer].append(frame)
        self._out_wake[peer].set()

    async def _dial(
        self, peer: str
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        host, port = self.config.addr(peer)
        deadline = time.monotonic() + DIAL_GRACE
        while time.monotonic() < deadline:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=max(deadline - time.monotonic(), 0.01),
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                await asyncio.sleep(0.03)
                continue
            write_frame(
                writer,
                {"type": "hello", "proc": self.proc, "inc": self.incarnation},
            )
            # Drain the peer's frames too: it may answer nothing, but a
            # torn connection surfaces as EOF on the reader — the writer
            # task checks ``reader.at_eof()`` before every frame, because a
            # write into a connection whose peer already died buffers
            # silently (the reset only fails the write *after* the lost
            # one).
            self._retain(asyncio.ensure_future(self._sink(reader)))
            return reader, writer
        return None

    @staticmethod
    async def _sink(reader: asyncio.StreamReader) -> None:
        while await read_frame(reader) is not None:
            pass

    async def _writer_task(self, peer: str) -> None:
        queue = self._out_queues[peer]
        wake = self._out_wake[peer]
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None
        while True:
            if not queue:
                wake.clear()
                if self._stopping.is_set():
                    break
                stop = asyncio.ensure_future(self._stopping.wait())
                got = asyncio.ensure_future(wake.wait())
                await asyncio.wait({stop, got}, return_when=asyncio.FIRST_COMPLETED)
                stop.cancel()
                got.cancel()
                continue
            if writer is not None and reader is not None and reader.at_eof():
                # The peer hung up (SIGKILL delivers a FIN): a write on this
                # connection would buffer without erroring and the frame
                # would silently vanish.  Re-dial — the peer may already be
                # back under a new incarnation.
                try:
                    writer.close()
                except Exception:
                    pass
                reader = writer = None
            if writer is None:
                if time.monotonic() < self._down_until.get(peer, 0.0):
                    queue.popleft()  # peer is down: the frame is a loss
                    continue
                conn = await self._dial(peer)
                if conn is None:
                    self._down_until[peer] = time.monotonic() + DIAL_GRACE
                    continue
                reader, writer = conn
            frame = queue[0]
            try:
                write_frame(writer, frame)
                await asyncio.wait_for(writer.drain(), timeout=PEER_IO_TIMEOUT)
                queue.popleft()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                # A drain timeout means the peer stopped reading (dead or
                # wedged): treat it exactly like a reset and re-dial.
                try:
                    writer.close()
                except Exception:
                    pass
                reader = writer = None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------- inbound
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                break
            ftype = frame.get("type")
            if ftype == "msg":
                self.hlc.observe(frame.get("hlc", 0.0))
                assert self.transport is not None
                self.transport.deliver_remote(
                    frame["src"], frame["dst"],
                    decode_message(frame["m"]),
                    frame["seq"], frame["inc"],
                )
            elif ftype == "req":
                self._handle_request(frame, writer)
            elif ftype == "status":
                self._send_status(writer)
            elif ftype == "hello":
                self.hlc.observe(frame.get("hlc", 0.0))
                peer = frame.get("proc")
                if peer in self._down_until:
                    # The peer dialed us: it is demonstrably back up.  Stop
                    # treating its queued frames as crash losses; frames its
                    # reconcile round triggers (probe -> grant Response) must
                    # be delivered, or lease symmetry is stuck asymmetric
                    # until the next TTL sweep touches the edge.
                    del self._down_until[peer]
                    if peer in self._out_wake:
                        self._out_wake[peer].set()
            elif ftype == "shutdown":
                self._stopping.set()
        try:
            writer.close()
        except Exception:
            pass

    @staticmethod
    async def _drain_quietly(writer: asyncio.StreamWriter) -> None:
        try:
            await asyncio.wait_for(writer.drain(), timeout=PEER_IO_TIMEOUT)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # requester went away; the reply is already best-effort

    def _reply(self, writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        try:
            write_frame(writer, frame)
            self._retain(asyncio.ensure_future(self._drain_quietly(writer)))
        except (ConnectionError, OSError):
            pass  # requester went away; the protocol state is still valid

    def _handle_request(self, frame: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        req_id = frame["req"]
        node_id = frame["node"]
        op = frame["op"]
        if node_id not in self.hosted:
            self._reply(writer, {"type": "req_done", "req": req_id,
                                 "error": f"node {node_id} not hosted by {self.proc}",
                                 "hlc": self.hlc.tick()})
            return
        node = self.nodes[node_id]
        m0 = self.stats.total
        start = self.hlc.tick()
        if op == WRITE:
            request = Request(node_id, WRITE, arg=frame.get("arg"),
                              initiated_at=start)
            self.trace.emit(start, "write_begin", node_id, req=req_id)
            node.write(request)
            end = self.hlc.tick()
            self.trace.emit(
                end, "span", node_id,
                req=req_id, op=WRITE, start=start, end=end,
                messages=self.stats.total - m0, overlapped=True, value=None,
                failure=None,
            )
            self._reply(writer, {"type": "req_done", "req": req_id, "op": WRITE,
                                 "node": node_id, "value": None,
                                 "hlc": self.hlc.tick()})
            return
        if op == COMBINE:
            request = Request(node_id, COMBINE, initiated_at=start)
            self.trace.emit(start, "combine_begin", node_id, req=req_id)

            def on_complete(done: Request) -> None:
                end = self.hlc.tick()
                self.trace.emit(
                    end, "span", node_id,
                    req=req_id, op=COMBINE, start=start, end=end,
                    messages=self.stats.total - m0, overlapped=True,
                    value=done.retval, failure=None,
                )
                self._reply(writer, {"type": "req_done", "req": req_id,
                                     "op": COMBINE, "node": node_id,
                                     "value": done.retval,
                                     "hlc": self.hlc.tick()})

            node.begin_combine(request, on_complete)
            return
        self._reply(writer, {"type": "req_done", "req": req_id,
                             "error": f"unknown op {op!r}",
                             "hlc": self.hlc.tick()})

    def _send_status(self, writer: asyncio.StreamWriter) -> None:
        assert self.transport is not None
        pending_out = sum(len(q) for q in self._out_queues.values())
        open_rounds = sum(len(n.pndg) for n in self.nodes.values())
        self._reply(writer, {
            "type": "status_reply",
            "proc": self.proc,
            "inc": self.incarnation,
            "idle": self.transport.is_quiescent() and pending_out == 0,
            "pending_out": pending_out,
            "open_rounds": open_rounds,
            "events": self.streamer.activity,
            "hlc": self.hlc.tick(),
        })

    # ----------------------------------------------------------------- main
    async def run(self) -> None:
        """Serve until a ``shutdown`` frame arrives."""
        self._loop = asyncio.get_running_loop()
        self._build_nodes()
        peers = sorted(p for p in self.config.procs if p != self.proc)
        for peer in peers:
            self._out_queues[peer] = deque()
            self._out_wake[peer] = asyncio.Event()
        host, port = self.config.addr(self.proc)
        server = await asyncio.start_server(self._serve_conn, host, port)
        self._server = server
        writer_tasks = [
            asyncio.ensure_future(self._writer_task(peer)) for peer in peers
        ]
        if self.incarnation > 0:
            await self._recover_from_checkpoints()
        sweeper = asyncio.ensure_future(self._sweep_task())
        checkpointer = asyncio.ensure_future(self._checkpoint_task())
        await self._stopping.wait()
        # Final durable checkpoint, then tear down.
        await self._checkpoint_now()
        await asyncio.gather(sweeper, checkpointer, return_exceptions=True)
        # Let outbound queues flush briefly before closing.
        for _ in range(50):
            if all(not q for q in self._out_queues.values()):
                break
            await asyncio.sleep(0.02)
        for task in writer_tasks + self._tasks:
            task.cancel()
        await asyncio.gather(*writer_tasks, *self._tasks, return_exceptions=True)
        server.close()
        await server.wait_closed()
        metrics_path = self.run_dir / f"metrics-{self.proc}.{self.incarnation}.json"
        import json as _json

        metrics_text = (
            _json.dumps(self.metrics.to_dict(), indent=2, sort_keys=True, default=str)
            + "\n"
        )
        await asyncio.get_running_loop().run_in_executor(
            None, metrics_path.write_text, metrics_text
        )
        self.streamer.close()


def serve_node(config_path: str, proc: str, incarnation: int) -> int:
    """Entry point for ``python -m repro serve-node`` (one node process)."""
    config = ClusterConfig.load(config_path)
    server = NodeServer(config, proc, incarnation)
    asyncio.run(server.run())
    return 0


__all__ = ["NodeServer", "serve_node", "DIAL_GRACE"]
