"""repro.net — real asyncio multi-process deployment behind the transport seam.

The simulator proves the mechanism correct under a virtual clock; this
package runs the *same node automata* as a tree of real OS processes over
framed TCP, surfaced as ``python -m repro serve``:

* :mod:`repro.net.codec` — canonical wire codec for every ``Message``
  subclass (completeness enforced by protolint rule PL102);
* :mod:`repro.net.transport` — :class:`AsyncioTransport` implementing the
  shared transport interface over asyncio, registered with the transport
  seam as ``kind="asyncio"`` (``TransportConfig.external("asyncio")``);
* :mod:`repro.net.clock` — hybrid logical clock + the wall-clock domain
  twin of ``SimClock``;
* :mod:`repro.net.server` — :class:`NodeServer`, one process hosting a
  slice of the tree with wall-clock lease TTLs and durable checkpoints;
* :mod:`repro.net.cluster` — :class:`ClusterConfig` (declarative N-node
  deployment) and :class:`ClusterSupervisor` (spawn / monitor / kill /
  restart / drive requests);
* :mod:`repro.net.merge` — offline merge of per-process JSONL traces,
  crash-loss synthesis, and re-verification with ``check_trace`` plus the
  lemma monitors.

Importing this package registers the ``asyncio`` transport kind; the seam
also lazy-imports it on first use, so
``TransportConfig.external("asyncio")`` works without any explicit import.
"""

from __future__ import annotations

from repro.net.clock import AsyncioTimer, HybridClock, WallClock
from repro.net.cluster import ClusterConfig, ClusterSupervisor
from repro.net.codec import (
    decode_message,
    dumps_message,
    encode_message,
    loads_message,
)
from repro.net.merge import (
    merge_run_dir,
    merge_traces,
    synthesize_losses,
    verify_merged,
)
from repro.net.server import NodeServer, serve_node
from repro.net.transport import AsyncioTransport, _build_from_config
from repro.sim.transport import register_transport_kind

register_transport_kind("asyncio", _build_from_config)

__all__ = [
    "AsyncioTimer",
    "AsyncioTransport",
    "ClusterConfig",
    "ClusterSupervisor",
    "HybridClock",
    "NodeServer",
    "WallClock",
    "decode_message",
    "dumps_message",
    "encode_message",
    "loads_message",
    "merge_run_dir",
    "merge_traces",
    "serve_node",
    "synthesize_losses",
    "verify_merged",
]
