"""Wall-clock and hybrid-logical clock domains for the live deployment.

The simulator gives every event one totally ordered virtual timestamp for
free; a multi-process deployment has N drifting wall clocks instead.  The
offline verification pipeline (merge per-process traces, sort, run
``verify causal`` and the lemma monitors) needs the merged order to be
*happens-before consistent*: if event ``a`` causally precedes event ``b``
(same process, or a message from ``a``'s process delivered before ``b``),
then ``a`` must sort before ``b``.

:class:`HybridClock` is the standard hybrid logical clock (Kulkarni et al.):
``tick()`` returns ``max(prev + delta, wall)`` and every received frame's
timestamp is folded in via ``observe(remote)``, so a delivery is always
stamped after its send even across processes with skewed wall clocks.
Within one process the clock is strictly monotone, so the per-process JSONL
stream sorts back into emission order.

:class:`WallClock` is the asyncio counterpart of
:class:`repro.sim.scheduler.SimClock` — the same ``now`` + ``timer()``
clock-domain shape consumed by ``ReliableNetwork`` timeouts and
``LeaseExpiry`` TTLs, backed by ``loop.call_later`` instead of the event
heap.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional


class HybridClock:
    """A hybrid logical clock: monotone, wall-anchored, causality-aware.

    ``delta`` is the logical increment applied when the wall clock has not
    advanced past the previous reading (bursts, coarse clocks); it is small
    enough (1 µs) that stamps remain near wall time for humans.
    """

    __slots__ = ("_last", "_wall", "delta")

    def __init__(self, wall: Callable[[], float] = time.time, delta: float = 1e-6) -> None:
        self._wall = wall
        self._last = 0.0
        self.delta = delta

    def tick(self) -> float:
        """Advance and return the clock (strictly greater than all prior
        ticks and all observed remote stamps)."""
        self._last = max(self._last + self.delta, self._wall())
        return self._last

    def observe(self, remote: float) -> None:
        """Fold in a remote timestamp; the next tick exceeds it."""
        if remote > self._last:
            self._last = remote

    @property
    def last(self) -> float:
        """The most recent reading (without advancing)."""
        return self._last


class AsyncioTimer:
    """A cancellable, restartable one-shot timer over an asyncio loop.

    The same interface as :class:`repro.sim.scheduler.Timer` (``start`` /
    ``cancel`` / ``active`` / ``deadline``), so code written against the
    clock-domain abstraction runs unchanged in either domain.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop
        self._handle: Optional[asyncio.TimerHandle] = None
        self._action: Optional[Callable[[], None]] = None
        self._deadline: Optional[float] = None

    def _get_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    @property
    def active(self) -> bool:
        return self._handle is not None

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline if self._handle is not None else None

    def start(self, delay: float, action: Callable[[], None], label: str = "timer") -> None:
        self.cancel()
        self._action = action
        self._deadline = time.time() + delay
        self._handle = self._get_loop().call_later(delay, self._fire)

    def _fire(self) -> None:
        action = self._action
        self._handle = None
        self._action = None
        if action is not None:
            action()

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._action = None


class WallClock:
    """The live clock domain: wall/HLC ``now`` plus asyncio timers.

    When built over a :class:`HybridClock`, ``now`` reads the HLC's last
    value without advancing it (reads must not create logical events);
    timers still fire on real elapsed time.
    """

    def __init__(
        self,
        hlc: Optional[HybridClock] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self.hlc = hlc
        self._loop = loop

    @property
    def now(self) -> float:
        if self.hlc is not None:
            return max(self.hlc.last, time.time())
        return time.time()

    def timer(self) -> AsyncioTimer:
        return AsyncioTimer(self._loop)


__all__ = ["HybridClock", "AsyncioTimer", "WallClock"]
