"""Causal consistency for aggregation (Section 5) — checker.

Section 5 generalizes causal consistency [Ahamad et al.] to aggregation: a
combine-write execution history is causally consistent iff it is compatible
with a *gather-write* history ``B`` such that, for every node ``u``, there is
a serialization of ``pruned(B, u)`` (all writes + ``u``'s gathers) that
respects the causal order ⤳:

* ``q1 ⤳ q2`` when they are at the same node with ``q1.index < q2.index``
  (program order), or
* ``q1 ⤳ q2`` when ``q1`` is a write, ``q2`` a gather, and ``q2`` returns
  ``(q1.node, q1.index)`` (reads-from), or transitively.

The ghost-log machinery (:mod:`repro.core.ghost`) constructs exactly the
witnesses the paper's proof of Theorem 4 uses: ``u.gwlog'`` (the node's
log extended with the writes it never heard of, appended at the end).  This
checker validates, for an executed history:

1. **serialization** — every gather's retval equals ``recentwrites`` of the
   serialization prefix before it;
2. **causal respect** — the serialization is a linear extension of ⤳
   restricted to its elements (and ⤳ is acyclic);
3. **compatibility** — every combine's retval equals ``f`` of its gather
   twin's retval.

All three hold for any lease-based algorithm (Theorem 4); the tests also
run a deliberately broken algorithm to show the checker can fail.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.consistency.history import (
    WriteRegistry,
    build_write_registry,
    gather_value,
    values_equal,
)
from repro.core.ghost import GhostLog, extend_with_missing_writes
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.workloads.requests import COMBINE, GATHER, WRITE, Request

#: Requests are identified by (node, index): unique because a node's
#: completed-request counter covers combines and writes alike.
Key = Tuple[int, int]


@dataclass(frozen=True)
class CausalViolation:
    """One detected breach of causal consistency."""

    kind: str  # "serialization" | "causal-order" | "compatibility" | "cycle"
    node: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] node {self.node}: {self.detail}"


def _key(q: Request) -> Key:
    return (q.node, q.index)


def causal_order_edges(history: Iterable[Request]) -> List[Tuple[Key, Key]]:
    """Direct ⤳ edges of a gather-write history.

    Program order is encoded as consecutive-index chains per node (its
    transitive closure matches rule (1)); reads-from edges go from each
    write to every gather returning it.
    """
    by_node: Dict[int, List[Request]] = defaultdict(list)
    writes: Dict[Key, Request] = {}
    gathers: List[Request] = []
    for q in history:
        if q.op == WRITE:
            writes[_key(q)] = q
        elif q.op == GATHER:
            gathers.append(q)
        else:
            raise ValueError(f"gather-write history cannot contain {q.op!r}")
        by_node[q.node].append(q)

    edges: List[Tuple[Key, Key]] = []
    for node, reqs in by_node.items():
        reqs.sort(key=lambda q: q.index)
        for a, b in zip(reqs, reqs[1:]):
            if a.index == b.index:
                raise ValueError(f"duplicate request index {_key(a)}")
            edges.append((_key(a), _key(b)))
    for g in gathers:
        for wnode, widx in g.retval.items():
            if widx >= 0:
                wkey = (wnode, widx)
                if wkey in writes:
                    edges.append((wkey, _key(g)))
                # A gather naming an unknown write is reported by the
                # serialization/compatibility checks, not here.
    return edges


def _reachability(
    nodes: Set[Key], edges: Sequence[Tuple[Key, Key]]
) -> Dict[Key, Set[Key]]:
    """Descendant sets of a DAG via reverse-topological accumulation."""
    adj: Dict[Key, List[Key]] = defaultdict(list)
    indeg: Dict[Key, int] = {k: 0 for k in nodes}
    for a, b in edges:
        adj[a].append(b)
        indeg[b] += 1
    # Kahn topological sort.
    order: List[Key] = [k for k in nodes if indeg[k] == 0]
    i = 0
    while i < len(order):
        u = order[i]
        i += 1
        for w in adj[u]:
            indeg[w] -= 1
            if indeg[w] == 0:
                order.append(w)
    if len(order) != len(nodes):
        raise _CycleError()
    reach: Dict[Key, Set[Key]] = {k: set() for k in nodes}
    for u in reversed(order):
        acc = reach[u]
        for w in adj[u]:
            acc.add(w)
            acc |= reach[w]
    return reach


class _CycleError(Exception):
    pass


def check_causal_consistency(
    ghost_logs: Mapping[int, GhostLog],
    requests: Sequence[Request],
    n_nodes: int,
    op: AggregationOperator = SUM,
) -> List[CausalViolation]:
    """Check a concurrent execution for causal consistency.

    Parameters
    ----------
    ghost_logs:
        node id -> its :class:`~repro.core.ghost.GhostLog` (from a ghost run).
    requests:
        The executed combine/write requests (for the write registry and the
        combine/gather compatibility check).
    n_nodes:
        Tree size.
    op:
        The aggregation operator of the run.

    Returns the list of violations (empty = causally consistent).
    """
    violations: List[CausalViolation] = []
    registry: WriteRegistry = build_write_registry(requests)

    # The full gather-write history: every write once + every node's gathers.
    full_history: Dict[Key, Request] = {}
    for u, g in ghost_logs.items():
        for q in g.log:
            full_history.setdefault(_key(q), q)
    for q in requests:
        if q.op == WRITE:
            full_history.setdefault(_key(q), q)

    history_list = list(full_history.values())
    edges = causal_order_edges(history_list)
    try:
        reach = _reachability(set(full_history.keys()), edges)
    except _CycleError:
        violations.append(
            CausalViolation(kind="cycle", node=-1, detail="causal order ⤳ contains a cycle")
        )
        return violations

    combines_by_key = {
        _key(q): q for q in requests if q.op == COMBINE
    }

    for u, g in sorted(ghost_logs.items()):
        serialization = extend_with_missing_writes(
            list(g.log),
            [ghost_logs[v].wlog for v in sorted(ghost_logs) if v != u],
        )
        # 1. Serialization: gathers return recentwrites of their prefix.
        recent: Dict[int, int] = {}
        for pos, q in enumerate(serialization):
            if q.op == WRITE:
                recent[q.node] = q.index
            elif q.op == GATHER:
                expected = {v: recent.get(v, -1) for v in range(n_nodes)}
                if q.retval != expected:
                    violations.append(
                        CausalViolation(
                            kind="serialization",
                            node=u,
                            detail=(
                                f"gather {_key(q)} at position {pos} returned "
                                f"{q.retval!r}, serialization prefix implies {expected!r}"
                            ),
                        )
                    )
                # 3. Compatibility with the combine twin.
                twin = combines_by_key.get(_key(q))
                if q.node == u:
                    if twin is None:
                        violations.append(
                            CausalViolation(
                                kind="compatibility",
                                node=u,
                                detail=f"gather {_key(q)} has no combine twin",
                            )
                        )
                    else:
                        expected_val = gather_value(op, q.retval, registry)
                        if not values_equal(twin.retval, expected_val):
                            violations.append(
                                CausalViolation(
                                    kind="compatibility",
                                    node=u,
                                    detail=(
                                        f"combine {_key(q)} returned {twin.retval!r} "
                                        f"but its gather implies {expected_val!r}"
                                    ),
                                )
                            )
        # 2. Causal respect: serialization is a linear extension of ⤳.
        position = {_key(q): i for i, q in enumerate(serialization)}
        for q in serialization:
            k = _key(q)
            for succ in reach.get(k, ()):
                if succ in position and position[succ] < position[k]:
                    violations.append(
                        CausalViolation(
                            kind="causal-order",
                            node=u,
                            detail=(
                                f"{k} ⤳ {succ} but the serialization orders "
                                f"{succ} (pos {position[succ]}) before {k} "
                                f"(pos {position[k]})"
                            ),
                        )
                    )
    return violations
