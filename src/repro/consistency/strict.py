"""Strict consistency for aggregation (Section 2).

An algorithm executes σ with strict consistency when every combine request
``q`` returns ``f(A(σ, q))`` — the aggregation function over the most recent
write at each node preceding ``q`` in σ (nodes without a preceding write
contribute the identity).  The checker replays an executed sequence against
this reference.  Lemma 3.12 asserts every lease-based algorithm passes in
sequential executions; the baselines are also strictly consistent by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.consistency.history import values_equal
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.workloads.requests import COMBINE, WRITE, Request


@dataclass(frozen=True)
class StrictViolation:
    """One combine whose retval disagrees with the strict reference."""

    position: int
    request: Request
    expected: Any
    actual: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"combine #{self.position} at node {self.request.node}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


def expected_combine_value(
    op: AggregationOperator,
    latest_args: Dict[int, Any],
    n_nodes: int,
) -> Any:
    """``f(A(σ, q))``: lift-and-fold the latest write args; unwritten nodes
    contribute the identity."""
    acc = op.identity
    for node in range(n_nodes):
        if node in latest_args:
            acc = op.combine(acc, op.lift(latest_args[node]))
    return acc


def check_strict_consistency(
    requests: Sequence[Request],
    n_nodes: int,
    op: AggregationOperator = SUM,
    tree=None,
) -> List[StrictViolation]:
    """Replay an executed sequence; return all strict-consistency violations.

    ``requests`` must be in execution order with combine retvals filled in.
    An empty return value means the execution was strictly consistent.

    Scoped combines (``q.scope`` set — the subtree-read extension) are
    checked against the latest writes *within their subtree*; pass the
    ``tree`` to enable this (a scoped request without a tree raises).
    """
    latest: Dict[int, Any] = {}
    violations: List[StrictViolation] = []
    for i, q in enumerate(requests):
        if q.op == WRITE:
            latest[q.node] = q.arg
        elif q.op == COMBINE:
            if q.scope is None:
                expected = expected_combine_value(op, latest, n_nodes)
            else:
                if tree is None:
                    raise ValueError(
                        "sequence contains scoped combines; pass the tree"
                    )
                members = tree.subtree(q.scope, q.node)
                scoped_latest = {u: v for u, v in latest.items() if u in members}
                expected = expected_combine_value(op, scoped_latest, n_nodes)
            if not values_equal(expected, q.retval):
                violations.append(
                    StrictViolation(position=i, request=q, expected=expected, actual=q.retval)
                )
    return violations


def assert_strict_consistency(
    requests: Sequence[Request],
    n_nodes: int,
    op: AggregationOperator = SUM,
) -> None:
    """Raise ``AssertionError`` listing the first violations, if any."""
    violations = check_strict_consistency(requests, n_nodes, op)
    if violations:
        head = "; ".join(str(v) for v in violations[:3])
        raise AssertionError(
            f"{len(violations)} strict-consistency violation(s): {head}"
        )
