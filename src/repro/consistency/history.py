"""Execution-history utilities shared by the consistency checkers."""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.ops.monoid import AggregationOperator
from repro.workloads.requests import COMBINE, GATHER, WRITE, Request

#: (node, index) -> write arg for every write in an execution.
WriteRegistry = Dict[Tuple[int, int], Any]


def build_write_registry(requests: Iterable[Request]) -> WriteRegistry:
    """Collect the write arguments of an execution, keyed by identity.

    Write identity is ``(node, index)`` — unique because each node's
    completed-request counter is monotone.
    """
    out: WriteRegistry = {}
    for q in requests:
        if q.op == WRITE:
            key = (q.node, q.index)
            if key in out:
                raise ValueError(f"duplicate write identity {key}")
            out[key] = q.arg
    return out


def gather_value(
    op: AggregationOperator,
    recent: Mapping[int, int],
    registry: WriteRegistry,
) -> Any:
    """Section 5's extended ``f``: aggregate the writes named by a gather's
    ``recentwrites`` map (index -1 contributes the identity)."""
    acc = op.identity
    for node in sorted(recent):
        idx = recent[node]
        if idx >= 0:
            key = (node, idx)
            if key not in registry:
                raise ValueError(f"gather references unknown write {key}")
            acc = op.combine(acc, op.lift(registry[key]))
    return acc


def values_equal(a: Any, b: Any, rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> bool:
    """Equality with float tolerance (aggregation reorders float sums)."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(values_equal(x, y, rel_tol, abs_tol) for x, y in zip(a, b))
    return a == b


def check_compatibility(
    op: AggregationOperator,
    combine_req: Request,
    gather_req: Request,
    registry: WriteRegistry,
) -> bool:
    """Section 5's request compatibility: same node/index, and the combine's
    retval equals ``f`` of the gather's retval."""
    if combine_req.op != COMBINE or gather_req.op != GATHER:
        raise ValueError("need a combine and a gather request")
    if combine_req.node != gather_req.node or combine_req.index != gather_req.index:
        return False
    expected = gather_value(op, gather_req.retval, registry)
    return values_equal(combine_req.retval, expected)
