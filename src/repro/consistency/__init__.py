"""Consistency definitions and checkers.

* :mod:`repro.consistency.strict` — Section 2's strict consistency for
  aggregation: every combine returns ``f(A(σ, q))``, the aggregate of the
  most recent write at every node.  Any lease-based algorithm provides this
  in sequential executions (Lemma 3.12).
* :mod:`repro.consistency.causal` — Section 5's causal consistency for
  aggregation, checked on concurrent executions via the ghost-log
  machinery (Theorem 4).
* :mod:`repro.consistency.history` — shared history utilities (write
  registries, compatibility of combine/gather histories).
"""

from repro.consistency.history import (
    WriteRegistry,
    build_write_registry,
    check_compatibility,
)
from repro.consistency.strict import (
    StrictViolation,
    check_strict_consistency,
    expected_combine_value,
)
from repro.consistency.causal import (
    CausalViolation,
    causal_order_edges,
    check_causal_consistency,
)

__all__ = [
    "WriteRegistry",
    "build_write_registry",
    "check_compatibility",
    "StrictViolation",
    "check_strict_consistency",
    "expected_combine_value",
    "CausalViolation",
    "check_causal_consistency",
    "causal_order_edges",
]
