"""Flattening lease policies into per-edge integer parameters.

The reference backend dispatches every policy decision through virtual
``LeasePolicy`` hook calls.  The flat backend cannot afford a method
call per message, so it *flattens* the policy once at construction into

* a **mode** — which family of hook bodies the drain loop inlines
  (``M_RWW``, ``M_AB``, ``M_ALWAYS``, ``M_NEVER``), and
* per-edge integer parameters — the grant threshold ``a`` and break
  tolerance ``b`` stored in the runtime's ``pa``/``pb`` slot arrays
  (``lt``/``cc`` are the corresponding mutable timers).

Only the built-in deterministic policies flatten; anything else — a
user subclass with overridden hooks, :class:`~repro.core.randomized.
RandomBreakPolicy` — raises :class:`~repro.core.backend.
BackendUnsupported` so the factory can fall back to the reference
backend.  The check is intentionally ``type(...) is`` exact: a subclass
*might* behave identically, but the flat backend must never silently
drop an override.

``render`` records which attribute dictionary shape
``state_snapshot()`` must synthesize so flat snapshots are
bit-identical to ``vars(policy)`` on the reference backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.backend import BackendUnsupported
from repro.core.policies import (
    ABPolicy,
    AlwaysLeasePolicy,
    HeterogeneousABPolicy,
    NeverLeasePolicy,
    RWW_BREAK_AFTER,
    RWWPolicy,
    WriteOncePolicy,
)

__all__ = [
    "M_AB",
    "M_ALWAYS",
    "M_NEVER",
    "M_RWW",
    "FlatPolicySpec",
    "policy_spec",
]

#: Inlined hook families (see the drain loop in ``repro.flat.runtime``).
M_RWW = 0
M_AB = 1
M_ALWAYS = 2
M_NEVER = 3


@dataclass(frozen=True)
class FlatPolicySpec:
    """One node's flattened policy: mode + per-neighbor ``(a, b)``.

    ``render`` is the snapshot flavor: ``"rww"`` (a ``lt`` dict),
    ``"ab"`` (``a``/``b``/``lt``/``cc``), ``"het"`` (``params``/
    ``default``/``lt``/``cc``) or ``"none"`` (no attributes).
    """

    mode: int
    render: str
    a: int = 1
    b: int = 0
    params: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    default: Tuple[int, int] = (1, 2)

    def ab_for(self, v: int) -> Tuple[int, int]:
        """The (grant, break) parameters for the edge toward neighbor ``v``."""
        if self.render == "het":
            return tuple(self.params.get(v, self.default))
        return (self.a, self.b)


def policy_spec(policy: object) -> FlatPolicySpec:
    """Flatten one policy instance, or raise :class:`BackendUnsupported`."""
    t = type(policy)
    if t is RWWPolicy:
        return FlatPolicySpec(M_RWW, "rww", a=1, b=RWW_BREAK_AFTER)
    if t is ABPolicy or t is WriteOncePolicy:
        return FlatPolicySpec(M_AB, "ab", a=policy.a, b=policy.b)
    if t is HeterogeneousABPolicy:
        return FlatPolicySpec(
            M_AB,
            "het",
            params={v: tuple(ab) for v, ab in policy.params.items()},
            default=tuple(policy.default),
        )
    if t is AlwaysLeasePolicy:
        return FlatPolicySpec(M_ALWAYS, "none")
    if t is NeverLeasePolicy:
        return FlatPolicySpec(M_NEVER, "none")
    raise BackendUnsupported(
        f"policy {t.__name__} does not flatten; use the reference backend"
    )
