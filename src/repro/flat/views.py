"""Live node views over the flat runtime's arrays.

The flat backend has no per-node objects — but everything *around* the
engines (monitors, golden tests, checkpoints, the model checker's
terminal checks) inspects nodes through the ``LeaseNode`` attribute
surface: ``node.taken[v]``, ``node.pndg``, ``vars(node.policy)``,
``node.state_snapshot()``...  This module provides that surface as thin
live views: a :class:`FlatNode` per node id whose per-neighbor tables
are :class:`_SlotMap` mutable mappings backed directly by the runtime's
slot arrays.  Reads and writes go straight through, so
:class:`~repro.recovery.checkpoint.Checkpoint` capture/restore works on
a flat backend unchanged — ``__deepcopy__`` renders a view as the plain
dict the checkpoint digest expects.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, MutableMapping, Optional, Set, Tuple

from repro.util.canon import canonical_value

__all__ = ["FlatNode", "_FlatPolicyView", "_SlotMap"]


class _SlotMap(MutableMapping):
    """``{neighbor id: value}`` view over one node's span of a slot array.

    Keys are fixed (the node's neighbors); values read and write the
    backing array in place.  Deep copies materialize as a plain dict so
    snapshot/digest consumers see ordinary data.
    """

    __slots__ = ("_rt", "_node", "_array")

    def __init__(self, rt: Any, node: int, array: List[Any]) -> None:
        self._rt = rt
        self._node = node
        self._array = array

    def _slot(self, v: int) -> int:
        s = self._rt._slot_index.get((self._node, v))
        if s is None:
            raise KeyError(v)
        return s

    def __getitem__(self, v: int) -> Any:
        return self._array[self._slot(v)]

    def __setitem__(self, v: int, value: Any) -> None:
        self._array[self._slot(v)] = value

    def __delitem__(self, v: int) -> None:
        raise TypeError("flat per-neighbor tables have a fixed key set")

    def __iter__(self) -> Iterator[int]:
        rt = self._rt
        u = self._node
        return iter(rt._peer[rt._off[u] : rt._off[u + 1]])

    def __len__(self) -> int:
        rt = self._rt
        u = self._node
        return rt._off[u + 1] - rt._off[u]

    def __deepcopy__(self, memo: dict) -> Dict[int, Any]:
        return {v: copy.deepcopy(self[v], memo) for v in self}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(dict(self))


class _FlatPolicyView:
    """``vars()``-compatible stand-in for the node's policy instance.

    Exposes the flattened policy's bookkeeping with the exact attribute
    shape of the original policy class (``lt`` for RWW; ``a``/``b``/
    ``lt``/``cc`` for (a,b); ``params``/``default``/``lt``/``cc`` for the
    heterogeneous variant), so ``vars(node.policy)`` and checkpoint
    policy-state round-trips behave as on the reference backend.
    Assigning a plain dict to ``lt``/``cc`` (checkpoint restore) writes
    through into the arrays; the structural parameters are fixed at
    construction.
    """

    def __init__(self, rt: Any, node: int) -> None:
        spec = rt._specs[node]
        d = self.__dict__
        render = spec.render
        if render == "ab":
            d["a"] = spec.a
            d["b"] = spec.b
        elif render == "het":
            d["params"] = dict(spec.params)
            d["default"] = tuple(spec.default)
        if render in ("rww", "ab", "het"):
            d["lt"] = _SlotMap(rt, node, rt._lt)
        if render in ("ab", "het"):
            d["cc"] = _SlotMap(rt, node, rt._cc)

    def __setattr__(self, name: str, value: Any) -> None:
        current = self.__dict__.get(name)
        if isinstance(current, _SlotMap) and isinstance(value, dict):
            for v, x in value.items():
                if v in current:
                    current[v] = x
            return
        object.__setattr__(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_FlatPolicyView({self.__dict__!r})"


class FlatNode:
    """Read/write view of one node's protocol state in a flat runtime.

    Implements the inspection and initiation surface of
    :class:`~repro.core.mechanism.LeaseNode`; message handling lives in
    the runtime's drain loop, not here.
    """

    def __init__(self, rt: Any, node_id: int) -> None:
        self._rt = rt
        self.id = node_id
        self.taken = _SlotMap(rt, node_id, rt._taken)
        self.granted = _SlotMap(rt, node_id, rt._granted)
        self.aval = _SlotMap(rt, node_id, rt._aval)
        self.uaw = _SlotMap(rt, node_id, rt._uaw)
        self.policy = _FlatPolicyView(rt, node_id)

    # ------------------------------------------------------------ identity
    @property
    def tree(self) -> Any:
        return self._rt.tree

    @property
    def op(self) -> Any:
        return self._rt.op

    @property
    def nbrs(self) -> Tuple[int, ...]:
        rt = self._rt
        u = self.id
        return tuple(rt._peer[rt._off[u] : rt._off[u + 1]])

    # ------------------------------------------------------------ variables
    @property
    def val(self) -> Any:
        return self._rt._val[self.id]

    @val.setter
    def val(self, value: Any) -> None:
        self._rt._val[self.id] = value

    @property
    def pndg(self) -> Set[int]:
        return self._rt._pndg[self.id]

    @property
    def snt(self) -> Dict[int, Set[int]]:
        return self._rt._snt[self.id]

    @property
    def upcntr(self) -> int:
        return self._rt._upcntr[self.id]

    @upcntr.setter
    def upcntr(self, value: int) -> None:
        self._rt._upcntr[self.id] = value

    @property
    def sntupdates(self) -> List[Tuple[int, int, int]]:
        return self._rt._sntupdates_list(self.id)

    @sntupdates.setter
    def sntupdates(self, value: List[Tuple[int, int, int]]) -> None:
        self._rt._set_sntupdates(self.id, list(value))

    @property
    def completed_requests(self) -> int:
        return self._rt._completed[self.id]

    @completed_requests.setter
    def completed_requests(self, value: int) -> None:
        self._rt._completed[self.id] = value

    @property
    def ghost(self) -> Optional[Any]:
        return self._rt._ghost[self.id]

    @property
    def _waiters(self) -> List[Any]:
        return self._rt._waiters[self.id]

    @property
    def _scoped_waiters(self) -> Dict[int, List[Any]]:
        return self._rt._scoped_waiters[self.id]

    # ------------------------------------------------------------- derived
    def tkn(self) -> List[int]:
        return [v for v in self.nbrs if self.taken[v]]

    def grntd(self) -> List[int]:
        return [v for v in self.nbrs if self.granted[v]]

    def sntprobes(self) -> Set[int]:
        out: Set[int] = set()
        for targets in self.snt.values():
            out |= targets
        return out

    def gval(self) -> Any:
        return self._rt._gval(self.id)

    def subval(self, w: int) -> Any:
        rt = self._rt
        return rt._subval(self.id, rt._slot_index[(self.id, w)])

    def isgoodforrelease(self, w: int) -> bool:
        return not any(self.granted[v] for v in self.nbrs if v != w)

    # ----------------------------------------------------------- initiation
    def write(self, request: Any) -> None:
        self._rt.submit_write(request)

    def begin_combine(self, request: Any, on_complete: Any) -> None:
        self._rt.submit_combine(request, on_complete)

    def begin_scoped_combine(self, request: Any, on_complete: Any) -> None:
        self._rt.submit_combine(request, on_complete)

    # --------------------------------------------------------- verification
    def has_pending(self) -> bool:
        rt = self._rt
        return bool(rt._pndg[self.id]) or bool(rt._waiters[self.id])

    def quiescent_state_ok(self) -> bool:
        return not self.pndg and all(not s for s in self.snt.values())

    def state_snapshot(self) -> Tuple[Any, ...]:
        """Byte-identical to :meth:`LeaseNode.state_snapshot` (pinned by
        tests): same tuple layout, same synthesized policy/ghost state."""
        rt = self._rt
        u = self.id
        nbrs = self.nbrs
        policy_state = canonical_value(
            {
                k: (dict(v) if isinstance(v, _SlotMap) else v)
                for k, v in vars(self.policy).items()
            }
        )
        ghost = rt._ghost[u]
        ghost_state = (
            (
                tuple(canonical_value(q) for q in ghost.log),
                tuple(canonical_value(q) for q in ghost.wlog),
            )
            if ghost is not None
            else None
        )
        return (
            u,
            canonical_value(self.val),
            tuple(sorted((v, self.taken[v]) for v in nbrs)),
            tuple(sorted((v, self.granted[v]) for v in nbrs)),
            tuple(sorted((v, canonical_value(self.aval[v])) for v in nbrs)),
            tuple(sorted((v, tuple(sorted(self.uaw[v]))) for v in nbrs)),
            tuple(sorted(self.pndg)),
            tuple(sorted((r, tuple(sorted(t))) for r, t in self.snt.items())),
            self.upcntr,
            tuple(rt._sntupdates_list(u)),
            self.completed_requests,
            tuple(canonical_value(q) for q, _ in rt._waiters[u]),
            tuple(
                sorted(
                    (v, tuple(canonical_value(q) for q, _ in ws))
                    for v, ws in rt._scoped_waiters[u].items()
                    if ws
                )
            ),
            policy_state,
            ghost_state,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatNode(id={self.id}, val={self.val!r}, "
            f"taken={self.tkn()}, granted={self.grntd()})"
        )
