"""The flat execution backend: array-indexed protocol state.

``repro.flat`` is the second implementation of the execution-backend
seam defined in :mod:`repro.core.backend`.  Where the reference backend
(:class:`~repro.core.runtime.NodeRuntime`) keeps one ``LeaseNode``
object per node and one frozen dataclass per message, the flat backend
stores every per-node and per-edge protocol variable in integer-indexed
arrays over a CSR adjacency layout, interns messages as small ints /
tuples, and drains the wire in one batched loop with deferred per-edge
accounting.  Same automaton, same traces, same snapshots — an order of
magnitude faster at large n.

Select it through the factory::

    from repro import AggregationSystem
    system = AggregationSystem(tree, backend="flat")

or build the runtime directly with
:func:`repro.core.backend.build_backend`.
"""

from repro.flat.policy import FlatPolicySpec, policy_spec
from repro.flat.runtime import FlatRuntime

__all__ = ["FlatPolicySpec", "FlatRuntime", "policy_spec"]
