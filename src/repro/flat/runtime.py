"""FlatRuntime — the array-indexed execution backend.

The reference backend pays for its flexibility in per-message Python
object churn: every probe allocates a ``Probe``, every delivery walks a
transport stack, every transition makes half a dozen method calls
through policy and telemetry indirection.  At n=1023 that overhead *is*
the runtime (see ``benchmarks/results/scalability.json``).

This backend stores the entire Figure-1 automaton in flat arrays over a
CSR adjacency layout and drains the wire in one inlined loop:

Slots
    Directed edge ``u <- v`` (node ``u``'s view of neighbor ``v``) is a
    *slot* ``s`` with ``owner[s] = u``, ``peer[s] = v``; node ``u`` owns
    the contiguous slot range ``off[u]:off[u+1]`` in the order of
    ``tree.neighbors(u)`` (sorted — the reference backend's iteration
    order, so wire schedules match message-for-message).  ``rev[s]`` is
    the opposite direction's slot.

Per-edge state
    ``taken``/``granted`` lease bits, cached ``aval`` subaggregates,
    ``uaw`` pending-update windows, and the flattened policy timers
    ``lt``/``cc`` with per-edge parameters ``pa``/``pb`` (see
    :mod:`repro.flat.policy`) — all indexed by slot.

Interned messages
    A queued probe or revoke is one ``int`` (``slot << 3 | kind``); a
    response, update or release is one small tuple carrying the
    receiving slot.  No dataclass allocation, no dispatch table.

Batched delivery & accounting
    ``drain()`` runs a single while-loop over the queue with every hot
    array in a local.  Message counts accumulate in per-(slot, kind)
    buffers flushed into :class:`~repro.sim.stats.MessageStats` form
    only when per-edge detail is actually read; ``stats.total`` is exact
    at every batch boundary, so spans, metrics and the cost meter see
    the numbers they always saw.  When tracing, ghost logs, crashes or
    the profiler are active, drain drops to a slow path that emits the
    reference backend's exact event stream.

Per-edge update coalescing
    :meth:`run_write_batch` applies a batch of writes with at most one
    ``update`` per granted edge per batch (opt-in API; sequential
    ``execute()`` semantics are never coalesced, equivalence stays
    exact).

Everything the verification stack needs — ``state_snapshot()`` /
``fork()`` / ``pending_edges()`` / ``deliver_next()`` — is implemented
bit-compatibly with the reference backend, so the model checker explores
flat states and dedupes them against the same canonical keys.
"""

from __future__ import annotations

import copy
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.backend import BackendUnsupported, RuntimeTelemetry
from repro.core.ghost import GhostLog
from repro.core.policies import RWWPolicy
from repro.core.runtime import SYSTEM_NODE  # noqa: F401  (re-export convention)
from repro.core.runtime import check_quiescent_invariants as _check_invariants
from repro.flat.policy import M_AB, M_ALWAYS, M_NEVER, M_RWW, policy_spec
from repro.flat.views import FlatNode
from repro.obs.costmeter import CostMeter
from repro.obs.metrics import MetricsBridge, MetricsRegistry
from repro.ops.standard import SUM
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceLog
from repro.sim.transport import TransportConfig
from repro.util.canon import canonical_value
from repro.workloads.requests import Request

__all__ = ["FlatRuntime"]

#: Wire codes (the low 3 bits of an interned int message / first element
#: of a tuple message).  Probe and revoke carry no payload and intern to
#: a bare ``slot << 3 | code`` int.
K_PROBE = 0
K_RESPONSE = 1
K_UPDATE = 2
K_RELEASE = 3
K_REVOKE = 4

KIND_NAMES = ("probe", "response", "update", "release", "revoke")

#: Delivery-count ceiling, matching ``SynchronousNetwork.run_to_quiescence``.
MAX_DELIVERIES = 10_000_000


class _FlatStats(MessageStats):
    """MessageStats with lazily-flushed per-slot fast-path counters.

    The fast drain loop counts sends into ``_pending[slot * 5 + kind]``
    and adds the batch total to ``_total`` once at loop exit —
    ``total`` is always exact.  Per-edge detail (``count``/``by_kind``/
    ``directional_cost``/...) is demanded rarely (reports, golden
    assertions), so the per-edge ledger is synced on read by scanning
    the pending array.  Slow-path sends use plain :meth:`record` and mix
    freely with pending fast-path counts.
    """

    def __init__(self, owner: List[int], peer: List[int]) -> None:
        super().__init__()
        self._slot_owner = owner
        self._slot_peer = peer
        self._pending: List[int] = [0] * (len(owner) * 5)
        self._unsynced = False

    def _sync(self) -> None:
        if not self._unsynced:
            return
        self._unsynced = False
        pending = self._pending
        owner = self._slot_owner
        peer = self._slot_peer
        counts = self._counts
        for idx, n in enumerate(pending):
            if n:
                s, k = divmod(idx, 5)
                counts[(owner[s], peer[s])][KIND_NAMES[k]] += n
                pending[idx] = 0

    # Every per-edge read goes through one of these (directional_cost and
    # undirected_edge_total call count/edge_total, inheriting the sync).
    def count(self, src: int, dst: int, kind: str) -> int:
        self._sync()
        return super().count(src, dst, kind)

    def edge_total(self, src: int, dst: int) -> int:
        self._sync()
        return super().edge_total(src, dst)

    def by_kind(self) -> Dict[str, int]:
        self._sync()
        return super().by_kind()

    def edges(self):
        self._sync()
        return super().edges()

    def snapshot(self):
        self._sync()
        return super().snapshot()

    def reset(self) -> None:
        super().reset()
        self._pending = [0] * len(self._pending)
        self._unsynced = False


class _FlatWire:
    """The transport facade of a flat runtime (its ``network`` attribute).

    Implements the synchronous-transport inspection surface the model
    checker and the invariant checker drive — frontier enumeration,
    single-edge delivery, canonical pending snapshots, quiescence — by
    delegating to the runtime's interned queue.
    """

    def __init__(self, rt: "FlatRuntime") -> None:
        self._rt = rt

    @property
    def crashed(self) -> set:
        return self._rt.crashed

    def is_quiescent(self) -> bool:
        return not self._rt._queue

    def pending_edges(self) -> List[Tuple[int, int]]:
        rt = self._rt
        owner = rt._owner
        peer = rt._peer
        seen: List[Tuple[int, int]] = []
        for m in rt._queue:
            s = (m >> 3) if type(m) is int else m[1]
            edge = (peer[s], owner[s])
            if edge not in seen:
                seen.append(edge)
        return seen

    def deliver_next(self, src: int, dst: int) -> None:
        rt = self._rt
        want = rt._slot_index.get((dst, src))
        if want is not None:
            queue = rt._queue
            for i, m in enumerate(queue):
                s = (m >> 3) if type(m) is int else m[1]
                if s == want:
                    del queue[i]
                    rt._deliver(m)
                    return
        raise ValueError(f"no message in flight on edge ({src}, {dst})")

    def pending_snapshot(self) -> Tuple[Any, ...]:
        rt = self._rt
        owner = rt._owner
        peer = rt._peer
        per_edge: Dict[Tuple[int, int], List[Any]] = {}
        for m in rt._queue:
            if type(m) is int:
                s = m >> 3
                canon = ("Probe",) if (m & 7) == K_PROBE else ("Revoke",)
            else:
                k = m[0]
                s = m[1]
                if k == K_RESPONSE:
                    canon = (
                        "Response",
                        ("x", canonical_value(m[2])),
                        ("flag", canonical_value(m[3])),
                        ("wlog", canonical_value(m[4])),
                    )
                elif k == K_UPDATE:
                    canon = (
                        "Update",
                        ("x", canonical_value(m[2])),
                        ("id", canonical_value(m[3])),
                        ("wlog", canonical_value(m[4])),
                    )
                else:
                    canon = ("Release", ("S", canonical_value(m[2])))
            per_edge.setdefault((peer[s], owner[s]), []).append(canon)
        snap: Tuple[Any, ...] = tuple(
            (edge, tuple(messages)) for edge, messages in sorted(per_edge.items())
        )
        if rt.crashed:
            snap += (("crashed", tuple(sorted(rt.crashed))),)
        return snap


class FlatRuntime(RuntimeTelemetry):
    """Array-indexed implementation of the execution-backend protocol.

    Constructor surface matches :class:`~repro.core.runtime.NodeRuntime`
    minus the features the flat layout cannot host (simulated
    transports, custom node classes, recovery management) — those raise
    :class:`~repro.core.backend.BackendUnsupported`, which
    :func:`~repro.core.backend.build_backend` turns into a reference-
    backend fallback when the caller allows one.
    """

    backend_name = "flat"

    def __init__(
        self,
        tree: Any,
        op: Any = SUM,
        policy_factory: Callable[[], Any] = RWWPolicy,
        transport: Optional[TransportConfig] = None,
        *,
        ghost: bool = False,
        trace_enabled: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace_max_events: Optional[int] = None,
        seed: int = 0,
        profiler: Any = None,
        cost_accounting: bool = False,
        coalesce_updates: bool = False,
    ) -> None:
        config = transport if transport is not None else TransportConfig()
        if not config.synchronous:
            raise BackendUnsupported(
                "the flat backend runs the synchronous transport only; "
                "simulated stacks need the reference backend"
            )
        self.tree = tree
        self.op = op
        self.policy_factory = policy_factory
        self.config = config
        self.trace = TraceLog(enabled=trace_enabled, max_events=trace_max_events)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Any] = []
        if trace_enabled:
            self.trace.subscribe(MetricsBridge(self.metrics))
        self.profiler = profiler
        self.sim = None
        self.recovery = None
        self.seed = seed
        self.crashed: set = set()
        self._failure_listeners: List[Callable[[List[Request]], None]] = []
        self._ghost_enabled = ghost
        self.coalesce_updates = coalesce_updates

        n = tree.n
        # ------------------------------------------------- CSR adjacency
        off = [0] * (n + 1)
        peer: List[int] = []
        for u in range(n):
            nbrs = tree.neighbors(u)
            peer.extend(nbrs)
            off[u + 1] = off[u] + len(nbrs)
        nslots = len(peer)
        owner = [0] * nslots
        for u in range(n):
            for s in range(off[u], off[u + 1]):
                owner[s] = u
        slot_index: Dict[Tuple[int, int], int] = {}
        for s in range(nslots):
            slot_index[(owner[s], peer[s])] = s
        self._off = off
        self._peer = peer
        self._owner = owner
        self._slot_index = slot_index
        self._rev = [slot_index[(peer[s], owner[s])] for s in range(nslots)]
        # For slots whose owner has degree exactly 2, the owner's *other*
        # slot (-1 otherwise).  Degree-2 nodes — every interior node of a
        # path/caterpillar spine — take specialized straight-line handlers
        # in the fast drain loop: the "all neighbors but the sender" loops
        # collapse to one sibling lookup.
        sib = [-1] * nslots
        for u in range(n):
            if off[u + 1] - off[u] == 2:
                sib[off[u]] = off[u] + 1
                sib[off[u] + 1] = off[u]
        self._sib = sib

        # ------------------------------------------------ per-edge state
        ident = op.identity
        self._taken = [False] * nslots
        self._granted = [False] * nslots
        self._aval = [ident] * nslots
        self._uaw: List[Set[int]] = [set() for _ in range(nslots)]
        self._lt = [0] * nslots
        self._cc = [0] * nslots
        self._pa = [1] * nslots
        self._pb = [0] * nslots

        # ------------------------------------------------ per-node state
        self._val = [ident] * n
        self._upcntr = [0] * n
        self._completed = [0] * n
        self._pndg: List[Set[int]] = [set() for _ in range(n)]
        self._snt: List[Dict[int, Set[int]]] = [{} for _ in range(n)]
        # Per-slot release-window index over sntupdates: the entries
        # sourced from slot s's peer, as parallel (nid, uid) lists.  Both
        # are append-ordered and monotone (nid is the node's own counter,
        # uid the peer's), so the T6 window [t0 == v and nid >= min(S)]
        # is a bisect suffix and beta = its first uid — O(log k) instead
        # of a scan of the node's whole relay history.
        self._win_nid: List[List[int]] = [[] for _ in range(nslots)]
        self._win_uid: List[List[int]] = [[] for _ in range(nslots)]
        self._waiters: List[List[Tuple[Request, Callable]]] = [[] for _ in range(n)]
        self._scoped_waiters: List[Dict[int, List[Tuple[Request, Callable]]]] = [
            {} for _ in range(n)
        ]
        self._ghost: List[Optional[GhostLog]] = [
            GhostLog(n) if ghost else None for _ in range(n)
        ]

        # -------------------------------------------- policy flattening
        specs = []
        mode: Optional[int] = None
        for u in range(n):
            spec = policy_spec(policy_factory())
            specs.append(spec)
            if mode is None:
                mode = spec.mode
            elif mode != spec.mode:
                raise BackendUnsupported(
                    "the flat backend needs one policy mode across all nodes"
                )
            for s in range(off[u], off[u + 1]):
                a, b = spec.ab_for(peer[s])
                self._pa[s] = a
                self._pb[s] = b
        self._mode = M_RWW if mode is None else mode
        self._specs = specs

        # ------------------------------------------------------- wiring
        self._queue: deque = deque()
        self.stats = _FlatStats(owner, peer)
        self.cost_meter: Optional[CostMeter] = (
            CostMeter(tree, self.stats) if cost_accounting else None
        )
        self.network = _FlatWire(self)
        self._views: Optional[Dict[int, FlatNode]] = None

    # ----------------------------------------------------------------- nodes
    @property
    def nodes(self) -> Dict[int, FlatNode]:
        """node id -> live :class:`~repro.flat.views.FlatNode` view."""
        views = self._views
        if views is None:
            views = {u: FlatNode(self, u) for u in range(self.tree.n)}
            self._views = views
        return views

    @property
    def now(self) -> float:
        """Virtual time — always 0.0 (synchronous transport only)."""
        return 0.0

    # ------------------------------------------------------------ aggregates
    def _gval(self, u: int) -> Any:
        x = self._val[u]
        combine = self.op.combine
        aval = self._aval
        for t in range(self._off[u], self._off[u + 1]):
            x = combine(x, aval[t])
        return x

    def _subval(self, u: int, s: int) -> Any:
        x = self._val[u]
        combine = self.op.combine
        aval = self._aval
        for t in range(self._off[u], self._off[u + 1]):
            if t != s:
                x = combine(x, aval[t])
        return x

    def _wlog(self, u: int) -> Optional[Tuple[Request, ...]]:
        g = self._ghost[u]
        return g.wlog_snapshot() if g is not None else None

    def _isgood(self, u: int, s: int) -> bool:
        granted = self._granted
        for t in range(self._off[u], self._off[u + 1]):
            if granted[t] and t != s:
                return False
        return True

    # ----------------------------------------------------------- slow sends
    # Mirror SynchronousNetwork.send exactly: count + "send" trace first,
    # then black-hole traffic touching a crashed endpoint as a declared
    # loss.  ``t`` is always the *sending* slot (owner -> peer).
    def _emit_send(self, t: int, kind: str) -> bool:
        u = self._owner[t]
        v = self._peer[t]
        self.stats.record(u, v, kind)
        self.trace.emit(0.0, "send", u, dst=v, msg=kind)
        if u in self.crashed or v in self.crashed:
            self.trace.emit(
                0.0, "delivery_failed", u, dst=v, msg=kind, seq=-1, attempts=0
            )
            return False
        return True

    def _send_probe(self, t: int) -> None:
        if self._emit_send(t, "probe"):
            self._queue.append(self._rev[t] << 3)

    def _send_revoke(self, t: int) -> None:
        if self._emit_send(t, "revoke"):
            self._queue.append(self._rev[t] << 3 | K_REVOKE)

    def _send_response(self, t: int, x: Any, flag: bool, wlog: Any) -> None:
        if self._emit_send(t, "response"):
            self._queue.append((K_RESPONSE, self._rev[t], x, flag, wlog))

    def _send_update(self, t: int, x: Any, uid: int, wlog: Any) -> None:
        if self._emit_send(t, "update"):
            self._queue.append((K_UPDATE, self._rev[t], x, uid, wlog))

    def _send_release(self, t: int, S: frozenset) -> None:
        if self._emit_send(t, "release"):
            self._queue.append((K_RELEASE, self._rev[t], S))

    # ---------------------------------------------------------- policy hooks
    # Transliterations of repro.core.policies, switched on the flattened
    # mode; see FlatPolicySpec.  The slow path calls these; the fast
    # drain loop inlines the same bodies.
    def _p_on_combine(self, u: int) -> None:
        mode = self._mode
        if mode == M_RWW or mode == M_AB:
            taken = self._taken
            lt = self._lt
            pb = self._pb
            for t in range(self._off[u], self._off[u + 1]):
                if taken[t]:
                    lt[t] = pb[t]

    def _p_on_write(self, u: int) -> None:
        if self._mode == M_AB:
            cc = self._cc
            for t in range(self._off[u], self._off[u + 1]):
                cc[t] = 0

    def _p_probe_rcvd(self, u: int, s: int) -> None:
        mode = self._mode
        taken = self._taken
        lt = self._lt
        if mode == M_RWW:
            for t in range(self._off[u], self._off[u + 1]):
                if taken[t] and t != s:
                    lt[t] = self._pb[t]
        elif mode == M_AB:
            cc = self._cc
            cc[s] += 1
            for t in range(self._off[u], self._off[u + 1]):
                if taken[t] and t != s:
                    lt[t] = self._pb[t]
                    cc[t] = 0

    def _p_response_rcvd(self, u: int, s: int, flag: bool) -> None:
        if flag and self._mode in (M_RWW, M_AB):
            self._lt[s] = self._pb[s]

    def _p_update_rcvd(self, u: int, s: int) -> None:
        mode = self._mode
        if mode == M_RWW:
            if self._isgood(u, s):
                self._lt[s] -= 1
        elif mode == M_AB:
            if self._isgood(u, s):
                self._lt[s] -= 1
            cc = self._cc
            for t in range(self._off[u], self._off[u + 1]):
                if t != s:
                    cc[t] = 0

    def _p_set_lease(self, u: int, s: int) -> bool:
        mode = self._mode
        if mode == M_RWW or mode == M_ALWAYS:
            return True
        if mode == M_NEVER:
            return False
        if self._cc[s] >= self._pa[s]:
            self._cc[s] = 0
            return True
        return False

    def _p_break_lease(self, u: int, t: int) -> bool:
        mode = self._mode
        if mode == M_RWW or mode == M_AB:
            return self._lt[t] <= 0
        return mode == M_NEVER

    def _p_release_policy(self, u: int, t: int) -> None:
        if self._mode in (M_RWW, M_AB):
            self._lt[t] -= len(self._uaw[t])

    def _p_on_scoped(self, u: int, s: int) -> None:
        # Only RWW overrides on_scoped_combine; (a,b) variants inherit
        # the base no-op.
        if self._mode == M_RWW and self._taken[s]:
            self._lt[s] = self._pb[s]

    # ------------------------------------------------------------ initiation
    def submit_write(self, request: Request) -> None:
        """T2: a write request (completes immediately; no draining)."""
        u = request.node
        self._p_on_write(u)
        self._val[u] = self.op.lift(request.arg)
        request.index = self._completed[u]
        request.completed_at = 0.0
        self._completed[u] += 1
        g = self._ghost[u]
        if g is not None:
            g.append_write(request)
        self.trace.emit(0.0, "write_done", u, arg=request.arg)
        granted = self._granted
        for t in range(self._off[u], self._off[u + 1]):
            if granted[t]:
                self._upcntr[u] += 1
                self._forwardupdates(u, -1, self._upcntr[u])
                break

    def submit_combine(
        self, request: Request, on_complete: Callable[[Request], None]
    ) -> None:
        """T1: a (scoped) combine request; completion may be immediate."""
        if request.scope is not None:
            self._begin_scoped(request, on_complete)
            return
        u = request.node
        self._p_on_combine(u)
        taken = self._taken
        lo = self._off[u]
        hi = self._off[u + 1]
        for t in range(lo, hi):
            if taken[t]:
                self._uaw[t].clear()
        if u not in self._pndg[u]:
            if all(taken[t] for t in range(lo, hi)):
                self._finish_combine(u, [(request, on_complete)])
                return
            self._waiters[u].append((request, on_complete))
            self._sendprobes(u, u)
            self._snt[u][u] = {
                self._peer[t] for t in range(lo, hi) if not taken[t]
            }
        else:
            self._waiters[u].append((request, on_complete))

    def _begin_scoped(
        self, request: Request, on_complete: Callable[[Request], None]
    ) -> None:
        u = request.node
        v = request.scope
        s = self._slot_index.get((u, v))
        if s is None:
            raise ValueError(f"scope {v} is not a neighbor of node {u}")
        self._p_on_scoped(u, s)
        self._uaw[s].clear()
        if self._taken[s]:
            self._finish_scoped(u, [(request, on_complete)], s)
            return
        waiters = self._scoped_waiters[u].setdefault(v, [])
        waiters.append((request, on_complete))
        already: Set[int] = set()
        for targets in self._snt[u].values():
            already |= targets
        if v not in already and len(waiters) == 1:
            self._send_probe(s)

    def _finish_combine(
        self, u: int, waiters: List[Tuple[Request, Callable]]
    ) -> None:
        value = self._gval(u)
        g = self._ghost[u]
        trace = self.trace
        completed = self._completed
        for request, on_complete in waiters:
            request.retval = value
            request.index = completed[u]
            request.completed_at = 0.0
            completed[u] += 1
            if g is not None:
                g.append_gather(request)
            trace.emit(0.0, "combine_done", u, value=value)
            on_complete(request)

    def _finish_scoped(
        self, u: int, waiters: List[Tuple[Request, Callable]], s: int
    ) -> None:
        value = self._aval[s]
        v = self._peer[s]
        trace = self.trace
        completed = self._completed
        for request, on_complete in waiters:
            request.retval = value
            request.index = completed[u]
            request.completed_at = 0.0
            completed[u] += 1
            trace.emit(0.0, "scoped_combine_done", u, toward=v, value=value)
            on_complete(request)

    # ------------------------------------------------------------ procedures
    def _sendprobes(self, u: int, w: int) -> None:
        self._pndg[u].add(w)
        already: Set[int] = set()
        for targets in self._snt[u].values():
            already |= targets
        taken = self._taken
        peer = self._peer
        targets_out = [
            peer[t]
            for t in range(self._off[u], self._off[u + 1])
            if not taken[t] and peer[t] != w and peer[t] not in already
        ]
        if targets_out:
            self.trace.emit(0.0, "probe_round", u, requestor=w, targets=targets_out)
        for v in targets_out:
            self._send_probe(self._slot_index[(u, v)])

    def _sendresponse(self, u: int, s: int) -> None:
        w = self._peer[s]
        taken = self._taken
        peer = self._peer
        others_open = any(
            not taken[t] and peer[t] != w
            for t in range(self._off[u], self._off[u + 1])
        )
        if not others_open:
            new_flag = bool(self._p_set_lease(u, s))
            if new_flag and not self._granted[s]:
                self.trace.emit(0.0, "lease_granted", u, grantee=w)
            self._granted[s] = new_flag
        self._send_response(s, self._subval(u, s), self._granted[s], self._wlog(u))

    def _forwardupdates(self, u: int, s_except: int, uid: int) -> None:
        wlog = self._wlog(u)
        granted = self._granted
        for t in range(self._off[u], self._off[u + 1]):
            if granted[t] and t != s_except:
                self._send_update(t, self._subval(u, t), uid, wlog)

    def _forwardrelease(self, u: int) -> None:
        taken = self._taken
        for t in range(self._off[u], self._off[u + 1]):
            if taken[t] and self._isgood(u, t) and self._p_break_lease(u, t):
                taken[t] = False
                self.trace.emit(0.0, "lease_released", u, source=self._peer[t])
                self._send_release(t, frozenset(self._uaw[t]))
                self._uaw[t].clear()

    def _onrelease(self, u: int, s_w: int, S: frozenset) -> None:
        min_id = min(S) if S else None
        taken = self._taken
        uaw = self._uaw
        win_nid = self._win_nid
        for t in range(self._off[u], self._off[u + 1]):
            if not taken[t] or t == s_w:
                continue
            if min_id is None:
                uaw[t] = set()
            else:
                nids = win_nid[t]
                i = bisect_left(nids, min_id)
                if i < len(nids):
                    beta = self._win_uid[t][i]
                    uaw[t] = {x for x in uaw[t] if x >= beta}
                else:
                    uaw[t] = set()
            if self._isgood(u, t):
                self._p_release_policy(u, t)
        self._forwardrelease(u)

    # ------------------------------------------------------ slow transitions
    def _recv_probe(self, s: int) -> None:
        u = self._owner[s]
        w = self._peer[s]
        self._p_probe_rcvd(u, s)
        taken = self._taken
        lo = self._off[u]
        hi = self._off[u + 1]
        for t in range(lo, hi):
            if taken[t] and t != s:
                self._uaw[t].clear()
        if w not in self._pndg[u]:
            peer = self._peer
            rest = {
                peer[t] for t in range(lo, hi) if not taken[t] and peer[t] != w
            }
            if not rest:
                self._sendresponse(u, s)
            else:
                self._sendprobes(u, w)
                self._snt[u][w] = rest

    def _recv_response(self, s: int, x: Any, flag: bool, wlog: Any) -> None:
        u = self._owner[s]
        w = self._peer[s]
        self._p_response_rcvd(u, s, flag)
        self._aval[s] = x
        g = self._ghost[u]
        if g is not None and wlog is not None:
            g.merge(wlog)
        if flag and not self._taken[s]:
            self.trace.emit(0.0, "lease_acquired", u, source=w)
        self._taken[s] = flag
        scoped = self._scoped_waiters[u].pop(w, None)
        if scoped:
            self._finish_scoped(u, scoped, s)
        pndg = self._pndg[u]
        snt = self._snt[u]
        for v in sorted(pndg):
            targets = snt.get(v)
            if targets is None:
                continue
            targets.discard(w)
            if not targets:
                pndg.discard(v)
                del snt[v]
                if v == u:
                    waiters = self._waiters[u]
                    self._waiters[u] = []
                    self._finish_combine(u, waiters)
                else:
                    self._sendresponse(u, self._slot_index[(u, v)])

    def _recv_update(self, s: int, x: Any, uid: int, wlog: Any) -> None:
        u = self._owner[s]
        self._p_update_rcvd(u, s)
        self._aval[s] = x
        g = self._ghost[u]
        if g is not None and wlog is not None:
            g.merge(wlog)
        self._uaw[s].add(uid)
        granted = self._granted
        has_other = False
        for t in range(self._off[u], self._off[u + 1]):
            if granted[t] and t != s:
                has_other = True
                break
        if has_other:
            self._upcntr[u] += 1
            nid = self._upcntr[u]
            self._win_nid[s].append(nid)
            self._win_uid[s].append(uid)
            self._forwardupdates(u, s, nid)
        else:
            self._forwardrelease(u)

    def _recv_release(self, s: int, S: frozenset) -> None:
        u = self._owner[s]
        if self._granted[s]:
            self.trace.emit(0.0, "lease_broken", u, grantee=self._peer[s])
        self._granted[s] = False
        self._onrelease(u, s, S)

    def _recv_revoke(self, s: int) -> None:
        u = self._owner[s]
        w = self._peer[s]
        if self._taken[s]:
            self.trace.emit(0.0, "lease_voided", u, source=w)
        self._taken[s] = False
        self._uaw[s].clear()
        granted = self._granted
        for t in range(self._off[u], self._off[u + 1]):
            if granted[t] and t != s:
                granted[t] = False
                self.trace.emit(0.0, "lease_revoked", u, grantee=self._peer[t])
                self._send_revoke(t)
        # Renormalize (see LeaseNode._renormalize_after_revoke).
        taken = self._taken
        for t in range(self._off[u], self._off[u + 1]):
            if taken[t] and self._isgood(u, t) and self._uaw[t]:
                self._p_release_policy(u, t)
        self._forwardrelease(u)
        stuck = any(w in targets for targets in self._snt[u].values()) or bool(
            self._scoped_waiters[u].get(w)
        )
        if stuck:
            self._send_probe(s)

    # -------------------------------------------------------------- delivery
    def _deliver(self, m: Any) -> None:
        """Decode one interned message, emit ``recv``, run its transition."""
        if type(m) is int:
            k = m & 7
            s = m >> 3
            self.trace.emit(
                0.0, "recv", self._owner[s], src=self._peer[s], msg=KIND_NAMES[k]
            )
            if k == K_PROBE:
                self._recv_probe(s)
            else:
                self._recv_revoke(s)
            return
        k = m[0]
        s = m[1]
        self.trace.emit(
            0.0, "recv", self._owner[s], src=self._peer[s], msg=KIND_NAMES[k]
        )
        if k == K_RESPONSE:
            self._recv_response(s, m[2], m[3], m[4])
        elif k == K_UPDATE:
            self._recv_update(s, m[2], m[3], m[4])
        else:
            self._recv_release(s, m[2])

    def is_quiescent(self) -> bool:
        return not self._queue

    def drain(self) -> None:
        """Run the wire to quiescence (batched; see module doc)."""
        if not self._queue:
            return
        prof = self.profiler
        if (
            not self.trace.enabled
            and not self._ghost_enabled
            and not self.crashed
            and (prof is None or not prof.enabled)
        ):
            self._drain_fast()
            return
        if prof is not None and prof.enabled:
            prof.push("flat.drain")
            try:
                delivered = self._drain_slow()
            finally:
                prof.pop()
            prof.count("messages_routed", delivered)
        else:
            self._drain_slow()

    def _drain_slow(self) -> int:
        """Reference-faithful drain: full traces, ghost logs, crash holes."""
        queue = self._queue
        delivered = 0
        while queue:
            self._deliver(queue.popleft())
            delivered += 1
            if delivered > MAX_DELIVERIES:
                raise RuntimeError(
                    f"exceeded {MAX_DELIVERIES} deliveries; protocol livelock?"
                )
        return delivered

    def _drain_fast(self) -> None:
        """The hot path: one inlined loop, every array in a local.

        Preconditions (checked by :meth:`drain`): tracing off, ghost logs
        off, no crashed nodes, profiler off.  Under those, transitions
        cannot emit events and wlogs are always ``None``, so the loop
        below is the exact composition of the slow-path transitions with
        all dead branches removed.  Message accounting goes to local
        pending buffers; ``stats._total`` is corrected once at exit.
        """
        queue = self._queue
        pop = queue.popleft
        push = queue.append
        off = self._off
        peer = self._peer
        owner = self._owner
        rev = self._rev
        sib = self._sib
        slot_index = self._slot_index
        taken = self._taken
        granted = self._granted
        aval = self._aval
        uaw = self._uaw
        lt = self._lt
        cc = self._cc
        pa = self._pa
        pb = self._pb
        val = self._val
        upcntr = self._upcntr
        completed = self._completed
        pndg_l = self._pndg
        snt_l = self._snt
        waiters_l = self._waiters
        scoped_l = self._scoped_waiters
        win_nid = self._win_nid
        win_uid = self._win_uid
        # One call level less than op.combine when op is a plain Monoid.
        combine = getattr(self.op, "combine_fn", None) or self.op.combine
        stats = self.stats
        counts = stats._pending
        stats._unsynced = True
        mode = self._mode
        is_rww = mode == M_RWW
        is_ab = mode == M_AB
        is_never = mode == M_NEVER
        timed = is_rww or is_ab
        nsent = 0
        delivered = 0

        while queue:
            m = pop()
            delivered += 1
            if delivered > MAX_DELIVERIES:
                stats._total += nsent
                raise RuntimeError(
                    f"exceeded {MAX_DELIVERIES} deliveries; protocol livelock?"
                )
            if type(m) is int:
                k = m & 7
                s = m >> 3
                if k == 0:
                    # ---------------------------------------- T3: probe
                    o = sib[s]
                    if o >= 0:
                        # Degree-2 owner: the sibling slot *is* the
                        # "every neighbor but the sender" set.
                        u = owner[s]
                        if is_ab:
                            cc[s] += 1
                        tko = taken[o]
                        if tko:
                            if timed:
                                lt[o] = pb[o]
                                if is_ab:
                                    cc[o] = 0
                            uaw[o].clear()
                        pndg = pndg_l[u]
                        if peer[s] in pndg:
                            continue
                        if tko:
                            # Closed frontier: grant-check + respond.
                            if is_rww:
                                granted[s] = True
                            elif is_ab:
                                if cc[s] >= pa[s]:
                                    cc[s] = 0
                                    granted[s] = True
                                else:
                                    granted[s] = False
                            else:
                                granted[s] = not is_never
                            counts[s * 5 + 1] += 1
                            nsent += 1
                            push(
                                (1, rev[s], combine(val[u], aval[o]),
                                 granted[s], None)
                            )
                        else:
                            pndg.add(peer[s])
                            snt = snt_l[u]
                            po = peer[o]
                            if snt:
                                already = False
                                for tg in snt.values():
                                    if po in tg:
                                        already = True
                                        break
                            else:
                                already = False
                            if not already:
                                counts[o * 5] += 1
                                nsent += 1
                                push(rev[o] << 3)
                            snt[peer[s]] = {po}
                        continue
                    u = owner[s]
                    lo = off[u]
                    hi = off[u + 1]
                    w = peer[s]
                    if is_rww:
                        for t in range(lo, hi):
                            if taken[t] and t != s:
                                lt[t] = pb[t]
                                uaw[t].clear()
                    elif is_ab:
                        cc[s] += 1
                        for t in range(lo, hi):
                            if taken[t] and t != s:
                                lt[t] = pb[t]
                                cc[t] = 0
                                uaw[t].clear()
                    else:
                        for t in range(lo, hi):
                            if taken[t] and t != s:
                                uaw[t].clear()
                    pndg = pndg_l[u]
                    if w in pndg:
                        continue
                    closed = True
                    for t in range(lo, hi):
                        if not taken[t] and t != s:
                            closed = False
                            break
                    if closed:
                        # sendresponse(w): everything else is covered.
                        if is_rww:
                            granted[s] = True
                        elif is_ab:
                            if cc[s] >= pa[s]:
                                cc[s] = 0
                                granted[s] = True
                            else:
                                granted[s] = False
                        else:
                            granted[s] = not is_never
                        x = val[u]
                        for t in range(lo, hi):
                            if t != s:
                                x = combine(x, aval[t])
                        counts[s * 5 + 1] += 1
                        nsent += 1
                        push((1, rev[s], x, granted[s], None))
                    else:
                        # sendprobes(w); snt[w] = the open frontier.
                        pndg.add(w)
                        snt = snt_l[u]
                        if snt:
                            already = set()
                            for tg in snt.values():
                                already |= tg
                        else:
                            already = ()
                        rest = set()
                        for t in range(lo, hi):
                            if not taken[t]:
                                v = peer[t]
                                if v != w:
                                    rest.add(v)
                                    if v not in already:
                                        counts[t * 5] += 1
                                        nsent += 1
                                        push(rev[t] << 3)
                        snt[w] = rest
                else:
                    # Revoke — rare (post-recovery); take the slow
                    # transition (its sends self-account immediately).
                    self._recv_revoke(s)
                continue

            k = m[0]
            s = m[1]
            if k == 2:
                # -------------------------------------------- T5: update
                o = sib[s]
                if o >= 0:
                    # Degree-2 owner: "another grantee" can only be the
                    # sibling slot; its subval is val ⊕ aval[sender].
                    u = owner[s]
                    go = granted[o]
                    if timed and not go:
                        lt[s] -= 1
                    if is_ab:
                        cc[o] = 0
                    aval[s] = m[2]
                    uaw[s].add(m[3])
                    if go:
                        nid = upcntr[u] + 1
                        upcntr[u] = nid
                        win_nid[s].append(nid)
                        win_uid[s].append(m[3])
                        counts[o * 5 + 2] += 1
                        nsent += 1
                        push((2, rev[o], combine(val[u], aval[s]), nid, None))
                    elif timed:
                        # forwardrelease: break leases whose timer ran
                        # out, in slot order; "good for release" at a
                        # degree-2 node means the *other* slot has no
                        # outstanding grant.
                        t1 = s if s < o else o
                        t2 = s + o - t1
                        if taken[t1] and lt[t1] <= 0 and not granted[t2]:
                            taken[t1] = False
                            counts[t1 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t1]
                            push((3, rev[t1], frozenset(ut)))
                            ut.clear()
                        if taken[t2] and lt[t2] <= 0 and not granted[t1]:
                            taken[t2] = False
                            counts[t2 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t2]
                            push((3, rev[t2], frozenset(ut)))
                            ut.clear()
                    elif is_never:
                        t1 = s if s < o else o
                        t2 = s + o - t1
                        if taken[t1] and not granted[t2]:
                            taken[t1] = False
                            counts[t1 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t1]
                            push((3, rev[t1], frozenset(ut)))
                            ut.clear()
                        if taken[t2] and not granted[t1]:
                            taken[t2] = False
                            counts[t2 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t2]
                            push((3, rev[t2], frozenset(ut)))
                            ut.clear()
                    continue
                u = owner[s]
                lo = off[u]
                hi = off[u + 1]
                good = True
                for t in range(lo, hi):
                    if granted[t] and t != s:
                        good = False
                        break
                if timed and good:
                    lt[s] -= 1
                if is_ab:
                    for t in range(lo, hi):
                        if t != s:
                            cc[t] = 0
                aval[s] = m[2]
                uaw[s].add(m[3])
                if not good:
                    # Still a relay: forward to the other grantees.
                    nid = upcntr[u] + 1
                    upcntr[u] = nid
                    win_nid[s].append(nid)
                    win_uid[s].append(m[3])
                    for t in range(lo, hi):
                        if granted[t] and t != s:
                            x = val[u]
                            for r in range(lo, hi):
                                if r != t:
                                    x = combine(x, aval[r])
                            counts[t * 5 + 2] += 1
                            nsent += 1
                            push((2, rev[t], x, nid, None))
                elif timed:
                    # forwardrelease(u) — leases whose timer ran out.
                    for t in range(lo, hi):
                        if taken[t] and lt[t] <= 0:
                            ok = True
                            for r in range(lo, hi):
                                if granted[r] and r != t:
                                    ok = False
                                    break
                            if ok:
                                taken[t] = False
                                counts[t * 5 + 3] += 1
                                nsent += 1
                                ut = uaw[t]
                                push((3, rev[t], frozenset(ut)))
                                ut.clear()
                elif is_never:
                    for t in range(lo, hi):
                        if taken[t]:
                            ok = True
                            for r in range(lo, hi):
                                if granted[r] and r != t:
                                    ok = False
                                    break
                            if ok:
                                taken[t] = False
                                counts[t * 5 + 3] += 1
                                nsent += 1
                                ut = uaw[t]
                                push((3, rev[t], frozenset(ut)))
                                ut.clear()
            elif k == 1:
                # ------------------------------------------ T4: response
                o = sib[s]
                if o >= 0:
                    # Degree-2 owner: a completed round's respond-toward
                    # slot can only be the sibling.
                    u = owner[s]
                    flag = m[3]
                    if flag and timed:
                        lt[s] = pb[s]
                    aval[s] = m[2]
                    taken[s] = flag
                    w = peer[s]
                    sw = scoped_l[u]
                    if sw:
                        scoped = sw.pop(w, None)
                        if scoped:
                            self._finish_scoped(u, scoped, s)
                    pndg = pndg_l[u]
                    if pndg:
                        snt = snt_l[u]
                        for v in (
                            tuple(pndg) if len(pndg) == 1 else sorted(pndg)
                        ):
                            targets = snt.get(v)
                            if targets is None:
                                continue
                            targets.discard(w)
                            if not targets:
                                pndg.discard(v)
                                del snt[v]
                                if v == u:
                                    waiters = waiters_l[u]
                                    if waiters:
                                        waiters_l[u] = []
                                    t1 = s if s < o else o
                                    t2 = s + o - t1
                                    x = combine(
                                        combine(val[u], aval[t1]), aval[t2]
                                    )
                                    for request, on_complete in waiters:
                                        request.retval = x
                                        request.index = completed[u]
                                        request.completed_at = 0.0
                                        completed[u] += 1
                                        on_complete(request)
                                else:
                                    # v is the sibling's peer; respond on
                                    # slot o (closed iff s is now taken).
                                    if taken[s]:
                                        if is_rww:
                                            granted[o] = True
                                        elif is_ab:
                                            if cc[o] >= pa[o]:
                                                cc[o] = 0
                                                granted[o] = True
                                            else:
                                                granted[o] = False
                                        else:
                                            granted[o] = not is_never
                                    counts[o * 5 + 1] += 1
                                    nsent += 1
                                    push(
                                        (1, rev[o],
                                         combine(val[u], aval[s]),
                                         granted[o], None)
                                    )
                    continue
                u = owner[s]
                lo = off[u]
                hi = off[u + 1]
                flag = m[3]
                if flag and timed:
                    lt[s] = pb[s]
                aval[s] = m[2]
                taken[s] = flag
                w = peer[s]
                sw = scoped_l[u]
                if sw:
                    scoped = sw.pop(w, None)
                    if scoped:
                        self._finish_scoped(u, scoped, s)
                pndg = pndg_l[u]
                if pndg:
                    snt = snt_l[u]
                    for v in sorted(pndg):
                        targets = snt.get(v)
                        if targets is None:
                            continue
                        targets.discard(w)
                        if not targets:
                            pndg.discard(v)
                            del snt[v]
                            if v == u:
                                waiters = waiters_l[u]
                                if waiters:
                                    waiters_l[u] = []
                                x = val[u]
                                for t in range(lo, hi):
                                    x = combine(x, aval[t])
                                for request, on_complete in waiters:
                                    request.retval = x
                                    request.index = completed[u]
                                    request.completed_at = 0.0
                                    completed[u] += 1
                                    on_complete(request)
                            else:
                                ts = slot_index[(u, v)]
                                closed = True
                                for t in range(lo, hi):
                                    if not taken[t] and t != ts:
                                        closed = False
                                        break
                                if closed:
                                    if is_rww:
                                        granted[ts] = True
                                        if timed:
                                            pass
                                    elif is_ab:
                                        if cc[ts] >= pa[ts]:
                                            cc[ts] = 0
                                            granted[ts] = True
                                        else:
                                            granted[ts] = False
                                    else:
                                        granted[ts] = not is_never
                                x = val[u]
                                for t in range(lo, hi):
                                    if t != ts:
                                        x = combine(x, aval[t])
                                counts[ts * 5 + 1] += 1
                                nsent += 1
                                push((1, rev[ts], x, granted[ts], None))
            else:
                # ------------------------------------------- T6: release
                o = sib[s]
                if o >= 0:
                    # Degree-2 owner: the only other slot is the sibling,
                    # and clearing granted[s] makes it good-for-release.
                    u = owner[s]
                    granted[s] = False
                    S = m[2]
                    if taken[o]:
                        if S:
                            nids = win_nid[o]
                            i = bisect_left(nids, min(S))
                            if i < len(nids):
                                beta = win_uid[o][i]
                                uaw[o] = {x for x in uaw[o] if x >= beta}
                            else:
                                uaw[o] = set()
                        else:
                            uaw[o] = set()
                        if timed:
                            lt[o] -= len(uaw[o])
                    # forwardrelease, in slot order.
                    t1 = s if s < o else o
                    t2 = s + o - t1
                    if timed:
                        if taken[t1] and lt[t1] <= 0 and not granted[t2]:
                            taken[t1] = False
                            counts[t1 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t1]
                            push((3, rev[t1], frozenset(ut)))
                            ut.clear()
                        if taken[t2] and lt[t2] <= 0 and not granted[t1]:
                            taken[t2] = False
                            counts[t2 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t2]
                            push((3, rev[t2], frozenset(ut)))
                            ut.clear()
                    elif is_never:
                        if taken[t1] and not granted[t2]:
                            taken[t1] = False
                            counts[t1 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t1]
                            push((3, rev[t1], frozenset(ut)))
                            ut.clear()
                        if taken[t2] and not granted[t1]:
                            taken[t2] = False
                            counts[t2 * 5 + 3] += 1
                            nsent += 1
                            ut = uaw[t2]
                            push((3, rev[t2], frozenset(ut)))
                            ut.clear()
                    continue
                u = owner[s]
                lo = off[u]
                hi = off[u + 1]
                granted[s] = False
                S = m[2]
                min_id = min(S) if S else None
                for t in range(lo, hi):
                    if taken[t] and t != s:
                        if min_id is None:
                            uaw[t] = set()
                        else:
                            nids = win_nid[t]
                            i = bisect_left(nids, min_id)
                            if i < len(nids):
                                beta = win_uid[t][i]
                                uaw[t] = {x for x in uaw[t] if x >= beta}
                            else:
                                uaw[t] = set()
                        if timed:
                            ok = True
                            for r in range(lo, hi):
                                if granted[r] and r != t:
                                    ok = False
                                    break
                            if ok:
                                lt[t] -= len(uaw[t])
                # forwardrelease(u)
                if timed:
                    for t in range(lo, hi):
                        if taken[t] and lt[t] <= 0:
                            ok = True
                            for r in range(lo, hi):
                                if granted[r] and r != t:
                                    ok = False
                                    break
                            if ok:
                                taken[t] = False
                                counts[t * 5 + 3] += 1
                                nsent += 1
                                ut = uaw[t]
                                push((3, rev[t], frozenset(ut)))
                                ut.clear()
                elif is_never:
                    for t in range(lo, hi):
                        if taken[t]:
                            ok = True
                            for r in range(lo, hi):
                                if granted[r] and r != t:
                                    ok = False
                                    break
                            if ok:
                                taken[t] = False
                                counts[t * 5 + 3] += 1
                                nsent += 1
                                ut = uaw[t]
                                push((3, rev[t], frozenset(ut)))
                                ut.clear()

        stats._total += nsent

    # -------------------------------------------------- write coalescing
    def run_write_batch(self, requests: List[Request]) -> None:
        """Apply a batch of writes with per-edge update coalescing.

        With ``coalesce_updates`` (or always through this entry point),
        the k writes a node absorbs within one batch trigger at most
        *one* ``update`` per granted edge — carrying the final subval —
        instead of k.  Receivers see a single update id per edge, so
        lease timers are charged once per batch rather than once per
        write; final values and subsequent combine results are unchanged
        (asserted by tests), only the write-side message pressure drops.

        This is a batch-semantics extension, not the sequential model:
        ``AggregationSystem.execute`` never coalesces, keeping the
        flat-vs-reference equivalence exact.
        """
        dirty_nodes: List[int] = []
        seen: Set[int] = set()
        for request in requests:
            u = request.node
            self._p_on_write(u)
            self._val[u] = self.op.lift(request.arg)
            request.index = self._completed[u]
            request.completed_at = 0.0
            self._completed[u] += 1
            g = self._ghost[u]
            if g is not None:
                g.append_write(request)
            self.trace.emit(0.0, "write_done", u, arg=request.arg)
            if u not in seen:
                seen.add(u)
                dirty_nodes.append(u)
        granted = self._granted
        for u in dirty_nodes:
            for t in range(self._off[u], self._off[u + 1]):
                if granted[t]:
                    self._upcntr[u] += 1
                    self._forwardupdates(u, -1, self._upcntr[u])
                    break
        self.drain()

    # ------------------------------------------------------- crash recovery
    def add_failure_listener(self, fn: Callable[[List[Request]], None]) -> None:
        """Register a callback receiving the requests a crash killed."""
        self._failure_listeners.append(fn)

    def crash(self, node_id: int, *, emit_trace: bool = True) -> List[Request]:
        """Crash a node: black-hole its traffic, lose its volatile state.

        Mirrors ``NodeRuntime.crash`` + ``SynchronousNetwork.crash_node``
        + ``LeaseNode.crash_volatile``; idempotent.
        """
        if node_id in self.crashed:
            return []
        if emit_trace:
            self.trace.emit(0.0, "node_crash", node_id)
        self.crashed.add(node_id)
        # Queued messages to the node die as declared losses.
        owner = self._owner
        peer = self._peer
        survivors: deque = deque()
        for m in self._queue:
            if type(m) is int:
                s = m >> 3
                kind = KIND_NAMES[m & 7]
            else:
                s = m[1]
                kind = KIND_NAMES[m[0]]
            if owner[s] == node_id:
                self.trace.emit(
                    0.0,
                    "delivery_failed",
                    peer[s],
                    dst=node_id,
                    msg=kind,
                    seq=-1,
                    attempts=0,
                )
            else:
                survivors.append(m)
        self._queue = survivors
        # Volatile state: open rounds and waiters die with the node.
        u = node_id
        failed = [q for q, _ in self._waiters[u]]
        self._waiters[u] = []
        for ws in self._scoped_waiters[u].values():
            failed.extend(q for q, _ in ws)
        self._scoped_waiters[u] = {}
        self._pndg[u].clear()
        self._snt[u].clear()
        if failed:
            for fn in self._failure_listeners:
                fn(failed)
        return failed

    def recover(
        self, node_id: int, *, emit_trace: bool = True, reestablish: bool = True
    ) -> None:
        """Recover a crashed node (mirrors ``LeaseNode.recover_reconcile``)."""
        if node_id not in self.crashed:
            return
        if emit_trace:
            self.trace.emit(0.0, "node_recover", node_id)
        self.crashed.discard(node_id)
        u = node_id
        ident = self.op.identity
        trace = self.trace
        peer = self._peer
        lo = self._off[u]
        hi = self._off[u + 1]
        for t in range(lo, hi):
            v = peer[t]
            if self._taken[t]:
                trace.emit(0.0, "lease_voided", u, source=v)
            if self._granted[t]:
                trace.emit(0.0, "lease_revoked", u, grantee=v)
            self._taken[t] = False
            self._granted[t] = False
            self._aval[t] = ident
            self._uaw[t] = set()
            # Policy detach + attach: fresh per-edge bookkeeping.
            self._lt[t] = 0
            self._cc[t] = 0
            self._send_release(t, frozenset())
            self._send_revoke(t)
            self._win_nid[t] = []
            self._win_uid[t] = []
        if reestablish and hi > lo:
            self._sendprobes(u, u)
            self._snt[u][u] = {peer[t] for t in range(lo, hi)}

    def _sntupdates_list(self, u: int) -> List[Tuple[int, int, int]]:
        """Node ``u``'s ``sntupdates`` ledger, reconstructed from the
        per-slot window index.

        The reference backend's list is append-ordered; every append
        carries a fresh strictly-increasing ``nid``, so merging the
        per-slot (nid, uid) streams by ``nid`` reproduces the original
        order exactly — the hot relay path never materializes tuples.
        """
        entries: List[Tuple[int, Tuple[int, int, int]]] = []
        peer = self._peer
        for t in range(self._off[u], self._off[u + 1]):
            v = peer[t]
            uids = self._win_uid[t]
            entries.extend(
                (nid, (v, uids[i], nid))
                for i, nid in enumerate(self._win_nid[t])
            )
        entries.sort()
        return [e[1] for e in entries]

    def _set_sntupdates(self, u: int, value: List[Tuple[int, int, int]]) -> None:
        """Restore ``u``'s ledger whole (checkpoint restore path)."""
        for t in range(self._off[u], self._off[u + 1]):
            self._win_nid[t] = []
            self._win_uid[t] = []
        slot_index = self._slot_index
        for w, uid, nid in value:
            t = slot_index.get((u, w))
            if t is not None:
                self._win_nid[t].append(nid)
                self._win_uid[t].append(uid)

    # ------------------------------------------------------------- topology
    def set_topology(self, *args: Any, **kwargs: Any) -> None:
        raise BackendUnsupported(
            "the flat backend is static-topology; dynamic trees need the "
            "reference backend"
        )

    add_node = remove_node = rename_node = set_topology  # same refusal

    # --------------------------------------------------------- verification
    def state_snapshot(self) -> Tuple[Any, ...]:
        """Bit-identical to ``NodeRuntime.state_snapshot`` (pinned by tests)."""
        snap: Tuple[Any, ...] = (
            tuple(self.nodes[i].state_snapshot() for i in range(self.tree.n)),
            self.network.pending_snapshot(),
        )
        if self.crashed:
            snap += (("crashed", tuple(sorted(self.crashed))),)
        return snap

    def fork(self) -> "FlatRuntime":
        """An independent deep copy (model-checker branching point)."""
        return copy.deepcopy(self)

    def __deepcopy__(self, memo: dict) -> "FlatRuntime":
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        for k, v in self.__dict__.items():
            if k == "_views":
                # Node views deep-copy into plain dicts by design
                # (checkpoint rendering); the clone rebuilds live views
                # lazily instead.
                setattr(clone, k, None)
            else:
                setattr(clone, k, copy.deepcopy(v, memo))
        return clone

    def check_quiescent_invariants(self) -> None:
        """Assert the paper's quiescent-state lemmas on the current state."""
        _check_invariants(self.tree, self.nodes, self.network)

    def lease_graph_edges(self) -> List[tuple]:
        """Directed edges (u, v) with ``u.granted[v]`` — the lease graph."""
        granted = self._granted
        peer = self._peer
        off = self._off
        return [
            (u, peer[t])
            for u in range(self.tree.n)
            for t in range(off[u], off[u + 1])
            if granted[t]
        ]
