"""Deterministic seed derivation for sweeps."""

from __future__ import annotations

import hashlib
from typing import List


def spawn_seeds(base_seed: int, count: int, namespace: str = "") -> List[int]:
    """Derive ``count`` independent 32-bit seeds from a base seed.

    Uses SHA-256 over ``(namespace, base_seed, i)`` so adding a new sweep
    dimension (a new namespace) never perturbs existing streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out: List[int] = []
    for i in range(count):
        h = hashlib.sha256(f"{namespace}|{base_seed}|{i}".encode()).digest()
        out.append(int.from_bytes(h[:4], "big"))
    return out
