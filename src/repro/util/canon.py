"""Canonical, hashable renderings of arbitrary protocol state.

The verification toolkit (:mod:`repro.verify`) dedupes explored states by
hashing them, which needs every piece of node/transport state — operator
values, ``uaw`` sets, queued :class:`~repro.core.messages.Message` objects,
ghost-log :class:`~repro.workloads.requests.Request` records — reduced to
one deterministic, hashable form.  :func:`canonical_value` is that single
reduction, shared by :meth:`LeaseNode.state_snapshot`,
:meth:`SynchronousNetwork.pending_snapshot` and the explorer itself so the
layers agree on what "the same state" means.

The mapping is structural, not identity-based:

* scalars (``None``/bool/int/float/str) pass through;
* lists/tuples become tuples of canonical elements (order preserved);
* sets/frozensets become *sorted* tuples (insertion order erased);
* dicts become sorted ``(key, value)`` tuples;
* dataclasses (frozen messages, mutable requests alike) become
  ``(class name, (field, value), ...)`` tuples via their declared fields;
* anything else falls back to ``repr``.

Two states hash equal iff their canonical forms are equal, so the explorer
never conflates states that differ in any protocol-relevant field.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Tuple

__all__ = ["canonical_value"]


def _sort_key(value: Hashable) -> Tuple[str, str]:
    # Sets may mix types (ints, tuples); sort on (type name, repr) so the
    # ordering is total and deterministic across runs.
    return (type(value).__name__, repr(value))


def canonical_value(value: Any) -> Hashable:
    """A deterministic, hashable rendering of ``value`` (see module doc)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical_value(v) for v in value), key=_sort_key))
    if isinstance(value, dict):
        return tuple(
            sorted(
                ((canonical_value(k), canonical_value(v)) for k, v in value.items()),
                key=_sort_key,
            )
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, canonical_value(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    return repr(value)
