"""Small shared utilities: table formatting for bench output and RNG helpers."""

from repro.util.tables import format_table
from repro.util.seeding import spawn_seeds

__all__ = ["format_table", "spawn_seeds"]
