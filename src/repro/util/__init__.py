"""Small shared utilities: table formatting, RNG helpers, canonical state."""

from repro.util.canon import canonical_value
from repro.util.tables import format_table
from repro.util.seeding import spawn_seeds

__all__ = ["canonical_value", "format_table", "spawn_seeds"]
