"""Plain-text table formatting for benchmark output.

The benchmark harness prints paper-shaped tables; this keeps the formatting
in one place (fixed-width columns, right-aligned numbers).
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width table; numbers right-aligned, text left-aligned."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def render_row(row: Sequence[str], raw: Sequence[Any] | None = None) -> str:
        parts = []
        for i, c in enumerate(row):
            is_num = raw is not None and isinstance(raw[i], (int, float))
            parts.append(c.rjust(widths[i]) if is_num else c.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, cells):
        lines.append(render_row(row, raw))
    return "\n".join(lines)
