"""Static effect analysis: the protocol reaction graph, extracted from source.

The paper's correctness argument (Lemmas 3.1/3.3, Theorems 1-4) rests on
each node reacting to one received message kind with a *bounded, known* set
of sends and state mutations.  This module pins that reaction graph
statically: a call-graph-, alias- and role-sensitive AST analysis over the
:class:`~repro.core.mechanism.LeaseNode` ``_DISPATCH`` handlers (and their
vectorized twins in :mod:`repro.flat.runtime`) extracts, per received
message kind, the **effect set**

* message kinds sent, tagged with the *neighbor role* of the destination —
  ``"src"`` (statically the neighbor the triggering message came from) or
  ``"other"`` (a computed neighbor target, which may coincide with the
  source at runtime);
* protocol trace events emitted (transport-level ``send``/``recv``/
  ``deliver`` events are excluded — they belong to the transport, not the
  reaction);
* normalized node-state fields read and written (the Figure-1 ``var``
  block plus ``policy``/``ghost``/waiter bookkeeping; the flat backend's
  arrays are mapped back onto the same names, e.g. ``_win_nid`` ->
  ``sntupdates``);
* **unknown effects**: writes that escape the node-local state model
  (shared objects, globals, class attributes).  A handler with unknown
  effects voids the independence argument below.

Three consumers share this one source of truth:

1. **PL50x lint rules** (:func:`check_reaction`, wired into
   :func:`repro.verify.protolint.run_lint`): the extracted sets are
   compared against the declared golden spec in
   :mod:`repro.verify.reaction_spec` and against each other (core vs
   flat), so protocol drift between the backends or against the paper is a
   lint failure rather than a flaky integration test.
2. **Derived POR independence** (:func:`derived_independence`): the model
   checker's claim that two deliveries to distinct nodes commute is
   *derived* here from the extracted footprints — every handler write is
   node-local state, so deliveries at distinct nodes touch disjoint state,
   and per-edge FIFO queues make the enqueue order of their sends
   immaterial.  If extraction finds an unknown (non-node-local) write the
   relation soundly degrades to full dependence.
3. **The reaction-graph artifact** (``python -m repro verify effects
   --json``): the JSON consumed by CI (uploaded as
   ``reaction_graph.json``) and by the DESIGN.md reaction table.

The analysis never imports the code under test — it parses source, so it
runs on deliberately broken fixtures (the seeded-mutant tests) exactly like
:mod:`repro.verify.protolint`.  It is path-insensitive (effects are
unioned over all branches — an over-approximation) but call-graph
sensitive (helper procedures like ``sendresponse`` are traversed with the
caller's neighbor-role bindings) and alias-sensitive (``targets =
self.snt.get(v)`` followed by ``targets.discard(w)`` is a ``snt`` write).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.verify.protolint import Finding, _parse, _rel

__all__ = [
    "EffectSet",
    "ReactionGraph",
    "DerivedIndependence",
    "extract_core_effects",
    "extract_flat_effects",
    "extract_reaction_graph",
    "check_reaction",
    "derived_independence",
    "reaction_graph_json",
    "MESSAGE_KINDS",
    "NODE_STATE_FIELDS",
]

#: Message class name -> wire kind, as declared in ``core/messages.py``.
MESSAGE_KINDS: Dict[str, str] = {
    "Probe": "probe",
    "Response": "response",
    "Update": "update",
    "Release": "release",
    "Revoke": "revoke",
}

#: Normalized node-state field names (the Figure-1 ``var`` block plus the
#: extension bookkeeping).  ``policy`` and ``ghost`` are opaque per-node
#: sub-objects: any policy hook call or ghost mutation is modeled as a
#: read+write / write of the whole sub-object.
NODE_STATE_FIELDS: FrozenSet[str] = frozenset(
    {
        "val",
        "taken",
        "granted",
        "aval",
        "uaw",
        "pndg",
        "snt",
        "upcntr",
        "sntupdates",
        "completed_requests",
        "waiters",
        "scoped_waiters",
        "policy",
        "ghost",
    }
)

#: Destination-role tags (see module docstring).
ROLES = ("src", "other")

#: Trace kinds owned by the transport, not the handler reaction.
_TRANSPORT_EVENT_KINDS = {"send", "recv", "deliver", "delivery_failed"}

#: Container methods that mutate their receiver.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: ``self.ghost`` methods that mutate the ghost log.
_GHOST_MUTATORS = {"merge", "append_gather", "append_write"}


# --------------------------------------------------------------------- model
@dataclass(frozen=True)
class EffectSet:
    """The static effect set of one message-kind handler."""

    #: sent message kind -> destination roles ("src" / "other").
    sends: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: protocol trace event kinds emitted.
    emits: FrozenSet[str]
    #: normalized node-state fields read.
    reads: FrozenSet[str]
    #: normalized node-state fields written.
    writes: FrozenSet[str]
    #: effects escaping the node-local model (empty for a correct handler).
    unknown: FrozenSet[str] = frozenset()

    @staticmethod
    def make(
        sends: Mapping[str, Iterable[str]],
        emits: Iterable[str],
        reads: Iterable[str],
        writes: Iterable[str],
        unknown: Iterable[str] = (),
    ) -> "EffectSet":
        return EffectSet(
            sends=tuple(
                sorted((k, tuple(sorted(set(v)))) for k, v in sends.items())
            ),
            emits=frozenset(emits),
            reads=frozenset(reads),
            writes=frozenset(writes),
            unknown=frozenset(unknown),
        )

    @property
    def send_map(self) -> Dict[str, FrozenSet[str]]:
        return {k: frozenset(v) for k, v in self.sends}

    def to_dict(self) -> Dict[str, object]:
        return {
            "sends": {k: sorted(v) for k, v in self.sends},
            "emits": sorted(self.emits),
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "unknown": sorted(self.unknown),
        }


@dataclass
class _Effects:
    """Mutable accumulator used during traversal."""

    sends: Dict[str, Set[str]] = field(default_factory=dict)
    emits: Set[str] = field(default_factory=set)
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    unknown: Set[str] = field(default_factory=set)

    def add_send(self, kind: str, role: str) -> None:
        self.sends.setdefault(kind, set()).add(role)

    def freeze(self) -> EffectSet:
        return EffectSet.make(
            self.sends, self.emits, self.reads, self.writes, self.unknown
        )


@dataclass(frozen=True)
class ReactionGraph:
    """Extracted effect sets per implementation, keyed by message kind."""

    core: Dict[str, EffectSet]
    flat: Dict[str, EffectSet]
    core_path: str
    flat_path: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": {k: e.to_dict() for k, e in sorted(self.core.items())},
            "flat": {k: e.to_dict() for k, e in sorted(self.flat.items())},
            "core_path": self.core_path,
            "flat_path": self.flat_path,
        }


# ----------------------------------------------------------- class analysis
class _ClassMethods:
    """Method-name -> FunctionDef for one class of a parsed module."""

    def __init__(self, module: ast.Module, class_name: str) -> None:
        self.methods: Dict[str, ast.FunctionDef] = {}
        for node in module.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.methods[item.name] = item


def _self_attr(expr: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"`` (descending through subscript chains)."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_name(expr: ast.expr) -> Optional[str]:
    """``name[...]...`` -> ``"name"`` (descending through subscripts)."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _ImplConfig:
    """Implementation-specific knobs for the shared traversal."""

    def __init__(
        self,
        *,
        state_map: Dict[str, str],
        read_only: Set[str],
        send_primitives: Dict[str, str],
        policy_attr: Optional[str],
    ) -> None:
        #: raw attribute -> normalized field name.
        self.state_map = state_map
        #: attributes that are legitimately read but must never be written
        #: by a handler (topology, transport seam, telemetry).
        self.read_only = read_only
        #: self-method name treated as a send primitive -> message kind
        #: (empty string = core's generic ``send`` whose kind comes from
        #: the message constructor argument).
        self.send_primitives = send_primitives
        #: attribute whose method calls are policy hooks (core only).
        self.policy_attr = policy_attr


class _MethodWalker:
    """Walks one method body, accumulating effects; recurses into
    same-class helper calls with the caller's neighbor-role bindings."""

    def __init__(self, cls: _ClassMethods, config: _ImplConfig, out: _Effects) -> None:
        self.cls = cls
        self.config = config
        self.out = out

    # -- roles ---------------------------------------------------------
    @staticmethod
    def _role_of(expr: ast.expr, roles: Dict[str, str]) -> str:
        if isinstance(expr, ast.Name):
            return roles.get(expr.id, "other")
        return "other"

    @staticmethod
    def _ctor_kind(expr: ast.expr) -> Optional[str]:
        """Message constructor call -> wire kind (None if unrecognizable)."""
        if isinstance(expr, ast.Call):
            fn = expr.func
            name = None
            if isinstance(fn, ast.Name):
                name = fn.id
            elif isinstance(fn, ast.Attribute):
                name = fn.attr
            if name is not None:
                return MESSAGE_KINDS.get(name, name.lower())
        return None

    # -- fields --------------------------------------------------------
    def _record_read(self, attr: str) -> None:
        norm = self.config.state_map.get(attr)
        if norm is not None:
            self.out.reads.add(norm)

    def _record_write(self, attr: str, line: int) -> None:
        norm = self.config.state_map.get(attr)
        if norm is not None:
            self.out.writes.add(norm)
        elif attr in self.config.read_only:
            self.out.unknown.add(f"write to shared read-only attribute '{attr}'")
        else:
            self.out.unknown.add(f"write to non-state attribute '{attr}'")

    # -- traversal -----------------------------------------------------
    def walk(self, method: str, roles: Dict[str, str], stack: FrozenSet[str]) -> None:
        fn = self.cls.methods.get(method)
        if fn is None or method in stack:
            return
        stack = stack | {method}
        aliases: Dict[str, str] = {}
        locals_seen: Set[str] = {
            a.arg for a in fn.args.args + fn.args.kwonlyargs
        }
        globals_declared: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                globals_declared.update(node.names)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for t in ast.walk(target):
                    if isinstance(t, ast.Name):
                        locals_seen.add(t.id)
            elif isinstance(node, ast.Assign):
                self._handle_assign_targets(
                    node.targets, node.value, aliases, locals_seen, globals_declared
                )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._handle_assign_targets(
                    [node.target], node.value, aliases, locals_seen, globals_declared
                )
            elif isinstance(node, ast.AugAssign):
                self._handle_store_target(
                    node.target, aliases, locals_seen, globals_declared
                )
                attr = _self_attr(node.target)
                if attr is not None:
                    self._record_read(attr)
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    self._handle_store_target(
                        t, aliases, locals_seen, globals_declared
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    self._record_read(node.attr)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in aliases:
                    self.out.reads.add(aliases[node.id])
            elif isinstance(node, ast.Call):
                self._handle_call(node, roles, aliases, stack)

    def _handle_assign_targets(
        self,
        targets: List[ast.expr],
        value: ast.expr,
        aliases: Dict[str, str],
        locals_seen: Set[str],
        globals_declared: Set[str],
    ) -> None:
        # Pairwise-match tuple targets to tuple values so swap idioms like
        # ``waiters, self._waiters = self._waiters, []`` resolve per-slot.
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Tuple)
            and isinstance(value, ast.Tuple)
            and len(targets[0].elts) == len(value.elts)
        ):
            for t, v in zip(targets[0].elts, value.elts):
                self._handle_assign_targets(
                    [t], v, aliases, locals_seen, globals_declared
                )
            return
        for target in targets:
            if isinstance(target, ast.Name):
                locals_seen.add(target.id)
                if target.id in globals_declared:
                    self.out.unknown.add(
                        f"write to module global '{target.id}'"
                    )
                    continue
                alias = self._alias_of(value, aliases)
                if alias is not None:
                    aliases[target.id] = alias
                else:
                    aliases.pop(target.id, None)
            else:
                self._handle_store_target(
                    target, aliases, locals_seen, globals_declared
                )

    def _alias_of(self, value: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
        """Normalized field a local is an alias of, if any: ``self.X``,
        ``self.X[...]``, ``self.X.get(...)``/``.pop(...)``, or another alias."""
        expr = value
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            expr = expr.func.value
        attr = _self_attr(expr)
        if attr is not None:
            return self.config.state_map.get(attr)
        base = _base_name(expr)
        if base is not None:
            return aliases.get(base)
        return None

    def _handle_store_target(
        self,
        target: ast.expr,
        aliases: Dict[str, str],
        locals_seen: Set[str],
        globals_declared: Set[str],
    ) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record_write(attr, target.lineno)
            return
        base = _base_name(target)
        if base is None:
            return
        if isinstance(target, ast.Name):
            return  # plain local rebind, handled by _handle_assign_targets
        # Subscript store through a local: an alias of node state writes the
        # state; a plain local container is fine; an attribute store on a
        # name that was never bound locally targets shared module/class
        # state and breaks node locality.
        if base in aliases:
            self.out.writes.add(aliases[base])
        elif base not in locals_seen and base != "self":
            self.out.unknown.add(f"write through non-local name '{base}'")

    def _handle_call(
        self,
        node: ast.Call,
        roles: Dict[str, str],
        aliases: Dict[str, str],
        stack: FrozenSet[str],
    ) -> None:
        fn = node.func
        # trace.emit(clock, "kind", node, ...) — any receiver (self.trace
        # or a local alias), same heuristic as protolint.
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "emit"
            and len(node.args) >= 3
        ):
            kind_arg = node.args[1]
            if isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str):
                if kind_arg.value not in _TRANSPORT_EVENT_KINDS:
                    self.out.emits.add(kind_arg.value)
            return
        if not isinstance(fn, ast.Attribute):
            return
        # self.<method>(...) — send primitive, helper recursion.
        if isinstance(fn.value, ast.Name) and fn.value.id == "self":
            name = fn.attr
            if name in self.config.send_primitives:
                kind = self.config.send_primitives[name]
                if kind == "":  # core generic send(dst, Message(...))
                    if len(node.args) >= 2:
                        ctor = self._ctor_kind(node.args[1])
                        role = self._role_of(node.args[0], roles)
                        self.out.add_send(
                            ctor if ctor is not None else "?", role
                        )
                    else:
                        self.out.unknown.add("unanalyzable send call")
                else:
                    role = (
                        self._role_of(node.args[0], roles)
                        if node.args
                        else "other"
                    )
                    self.out.add_send(kind, role)
                return
            if name in self.cls.methods:
                callee = self.cls.methods[name]
                formals = [a.arg for a in callee.args.args if a.arg != "self"]
                callee_roles: Dict[str, str] = {}
                for formal, actual in zip(formals, node.args):
                    callee_roles[formal] = self._role_of(actual, roles)
                self.walk(name, callee_roles, stack)
                return
            return
        # self.policy.<hook>(...): opaque read+write of the policy object.
        if (
            self.config.policy_attr is not None
            and isinstance(fn.value, ast.Attribute)
            and isinstance(fn.value.value, ast.Name)
            and fn.value.value.id == "self"
            and fn.value.attr == self.config.policy_attr
        ):
            self.out.reads.add("policy")
            self.out.writes.add("policy")
            return
        # Mutating container-method calls: self.X.add(...), self.X[...]
        # .clear(), alias.discard(...), self.ghost.merge(...).
        if fn.attr in _MUTATORS or fn.attr in _GHOST_MUTATORS:
            attr = _self_attr(fn.value)
            if attr is not None:
                self._record_write(attr, node.lineno)
                return
            base = _base_name(fn.value)
            if base is not None and base in aliases:
                self.out.writes.add(aliases[base])
            return


# -------------------------------------------------------------- core extract
_CORE_STATE_MAP: Dict[str, str] = {
    "val": "val",
    "taken": "taken",
    "granted": "granted",
    "aval": "aval",
    "uaw": "uaw",
    "pndg": "pndg",
    "snt": "snt",
    "upcntr": "upcntr",
    "sntupdates": "sntupdates",
    "completed_requests": "completed_requests",
    "_waiters": "waiters",
    "_scoped_waiters": "scoped_waiters",
    "policy": "policy",
    "ghost": "ghost",
}

_CORE_READ_ONLY: Set[str] = {
    "id",
    "tree",
    "op",
    "nbrs",
    "trace",
    "_clock",
    "_send",
    "_send_to",
    "_DISPATCH",
}


def _dispatch_handlers(module: ast.Module) -> Dict[str, Tuple[str, int]]:
    """kind -> (handler method name, line) from the ``_DISPATCH.update``
    block (and any literal ``_DISPATCH = {...}`` assignment)."""
    out: Dict[str, Tuple[str, int]] = {}

    def scan_dict(d: ast.expr) -> None:
        if not isinstance(d, ast.Dict):
            return
        for k, v in zip(d.keys, d.values):
            cls_name = None
            if isinstance(k, ast.Name):
                cls_name = k.id
            elif isinstance(k, ast.Attribute):
                cls_name = k.attr
            if cls_name is None:
                continue
            kind = MESSAGE_KINDS.get(cls_name)
            if kind is None:
                continue
            if isinstance(v, ast.Attribute):
                out[kind] = (v.attr, v.lineno)
            elif isinstance(v, ast.Name):
                out[kind] = (v.id, v.lineno)

    for node in ast.walk(module):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "_DISPATCH"
            and node.args
        ):
            scan_dict(node.args[0])
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", None)
                if name == "_DISPATCH" and node.value is not None:
                    scan_dict(node.value)
    return out


def extract_core_effects(mechanism_py: Path) -> Dict[str, EffectSet]:
    """Effect set per received kind for the reference ``LeaseNode``."""
    module = ast.parse(mechanism_py.read_text(encoding="utf-8"))
    cls = _ClassMethods(module, "LeaseNode")
    config = _ImplConfig(
        state_map=_CORE_STATE_MAP,
        read_only=_CORE_READ_ONLY,
        send_primitives={"send": ""},
        policy_attr="policy",
    )
    handlers = _dispatch_handlers(module)
    out: Dict[str, EffectSet] = {}
    for kind, (method, _line) in sorted(handlers.items()):
        effects = _Effects()
        walker = _MethodWalker(cls, config, effects)
        fn = cls.methods.get(method)
        if fn is None:
            effects.unknown.add(f"dispatch handler '{method}' not found")
        else:
            formals = [a.arg for a in fn.args.args if a.arg != "self"]
            roles = {formals[0]: "src"} if formals else {}
            walker.walk(method, roles, frozenset())
        out[kind] = effects.freeze()
    return out


# -------------------------------------------------------------- flat extract
_FLAT_STATE_MAP: Dict[str, str] = {
    "_val": "val",
    "_taken": "taken",
    "_granted": "granted",
    "_aval": "aval",
    "_uaw": "uaw",
    "_pndg": "pndg",
    "_snt": "snt",
    "_upcntr": "upcntr",
    "_win_nid": "sntupdates",
    "_win_uid": "sntupdates",
    "_completed": "completed_requests",
    "_waiters": "waiters",
    "_scoped_waiters": "scoped_waiters",
    "_lt": "policy",
    "_cc": "policy",
    "_pa": "policy",
    "_pb": "policy",
    "_mode": "policy",
    "_ghost": "ghost",
}

_FLAT_READ_ONLY: Set[str] = {
    "tree",
    "op",
    "trace",
    "stats",
    "_off",
    "_peer",
    "_owner",
    "_rev",
    "_sib",
    "_slot_index",
    "_queue",
    "crashed",
    "_specs",
    "metrics",
}

_FLAT_SEND_PRIMITIVES: Dict[str, str] = {
    "_send_probe": "probe",
    "_send_response": "response",
    "_send_update": "update",
    "_send_release": "release",
    "_send_revoke": "revoke",
}


def extract_flat_effects(runtime_py: Path) -> Dict[str, EffectSet]:
    """Effect set per received kind for the vectorized ``FlatRuntime``
    (``_recv_<kind>`` twins), normalized onto the core field names."""
    module = ast.parse(runtime_py.read_text(encoding="utf-8"))
    cls = _ClassMethods(module, "FlatRuntime")
    config = _ImplConfig(
        state_map=_FLAT_STATE_MAP,
        read_only=_FLAT_READ_ONLY,
        send_primitives=_FLAT_SEND_PRIMITIVES,
        policy_attr=None,
    )
    out: Dict[str, EffectSet] = {}
    for kind in sorted(MESSAGE_KINDS.values()):
        method = f"_recv_{kind}"
        effects = _Effects()
        fn = cls.methods.get(method)
        if fn is None:
            effects.unknown.add(f"flat handler '{method}' not found")
        else:
            walker = _MethodWalker(cls, config, effects)
            formals = [a.arg for a in fn.args.args if a.arg != "self"]
            roles = {formals[0]: "src"} if formals else {}
            walker.walk(method, roles, frozenset())
        out[kind] = effects.freeze()
    return out


# ------------------------------------------------------------------ assembly
def _default_paths(package_root: Optional[Path]) -> Tuple[Path, Path, Path]:
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    package_root = Path(package_root)
    return (
        package_root / "core" / "mechanism.py",
        package_root / "flat" / "runtime.py",
        package_root / "net" / "codec.py",
    )


def extract_reaction_graph(package_root: Optional[Path] = None) -> ReactionGraph:
    """Extract both implementations' reaction graphs from source."""
    mechanism_py, runtime_py, _codec_py = _default_paths(package_root)
    return ReactionGraph(
        core=extract_core_effects(mechanism_py),
        flat=extract_flat_effects(runtime_py),
        core_path=str(mechanism_py),
        flat_path=str(runtime_py),
    )


# ----------------------------------------------------------- PL50x checking
def _spec_module() -> Dict[str, EffectSet]:
    from repro.verify.reaction_spec import REACTION_SPEC

    return REACTION_SPEC


def _diff_effects(
    kind: str,
    impl_name: str,
    impl: EffectSet,
    spec: EffectSet,
    path: str,
    line: int,
    findings: List[Finding],
) -> None:
    """PL501 (spec effect missing from impl) / PL502 (undeclared effect)."""
    impl_sends = impl.send_map
    spec_sends = spec.send_map
    for skind, roles in sorted(spec_sends.items()):
        missing = roles - impl_sends.get(skind, frozenset())
        for role in sorted(missing):
            findings.append(
                Finding(
                    code="PL501",
                    path=path,
                    line=line,
                    message=(
                        f"{impl_name} handler for {kind!r} drops the declared "
                        f"send of {skind!r} to role {role!r}"
                    ),
                    hint=(
                        "the reaction spec declares this send; restore it or "
                        "update verify/reaction_spec.py with a rationale"
                    ),
                )
            )
    for skind, roles in sorted(impl_sends.items()):
        extra = roles - spec_sends.get(skind, frozenset())
        for role in sorted(extra):
            findings.append(
                Finding(
                    code="PL502",
                    path=path,
                    line=line,
                    message=(
                        f"{impl_name} handler for {kind!r} sends {skind!r} to "
                        f"role {role!r}, not declared by the reaction spec"
                    ),
                    hint="declare the send in verify/reaction_spec.py or remove it",
                )
            )
    for label, got, want in (
        ("emit", impl.emits, spec.emits),
        ("read of", impl.reads, spec.reads),
        ("write of", impl.writes, spec.writes),
    ):
        for item in sorted(want - got):
            findings.append(
                Finding(
                    code="PL501",
                    path=path,
                    line=line,
                    message=(
                        f"{impl_name} handler for {kind!r} lost the declared "
                        f"{label} {item!r}"
                    ),
                    hint=(
                        "the reaction spec declares this effect; restore it or "
                        "update verify/reaction_spec.py with a rationale"
                    ),
                )
            )
        for item in sorted(got - want):
            findings.append(
                Finding(
                    code="PL502",
                    path=path,
                    line=line,
                    message=(
                        f"{impl_name} handler for {kind!r} has undeclared "
                        f"{label} {item!r}"
                    ),
                    hint="declare the effect in verify/reaction_spec.py or remove it",
                )
            )
    for item in sorted(impl.unknown):
        findings.append(
            Finding(
                code="PL502",
                path=path,
                line=line,
                message=(
                    f"{impl_name} handler for {kind!r} has a non-node-local "
                    f"effect: {item}"
                ),
                hint=(
                    "handlers may only mutate their own node's state; shared "
                    "writes void the POR independence argument"
                ),
            )
        )


def check_reaction(
    package_root: Optional[Path] = None,
    project_root: Optional[Path] = None,
    spec: Optional[Dict[str, EffectSet]] = None,
) -> List[Finding]:
    """Run the PL50x rules; empty list when the reaction graph is clean.

    PL501  declared effect missing from an implementation (dropped send /
           emit / state access)
    PL502  implementation effect not declared by the spec (protocol drift,
           or a non-node-local write)
    PL503  spec names a state field / kind that does not exist (stale spec)
    PL504  core and flat handler effect sets disagree
    PL505  the reaction graph sends a kind with no wire-codec entry
    """
    mechanism_py, runtime_py, codec_py = _default_paths(package_root)
    findings: List[Finding] = []
    if not mechanism_py.is_file() or not runtime_py.is_file():
        return findings  # fixture tree without both impls: nothing to pin
    parse_guard: List[Finding] = []
    if (
        _parse(mechanism_py, _rel(mechanism_py, project_root), parse_guard) is None
        or _parse(runtime_py, _rel(runtime_py, project_root), parse_guard) is None
    ):
        return parse_guard
    if spec is None:
        spec = _spec_module()
    core = extract_core_effects(mechanism_py)
    flat = extract_flat_effects(runtime_py)
    core_rel = _rel(mechanism_py, project_root)
    flat_rel = _rel(runtime_py, project_root)
    spec_rel = "src/repro/verify/reaction_spec.py"

    # PL503: stale spec entries.
    for kind, eff in sorted(spec.items()):
        if kind not in MESSAGE_KINDS.values():
            findings.append(
                Finding(
                    code="PL503",
                    path=spec_rel,
                    line=1,
                    message=f"reaction spec declares unknown message kind {kind!r}",
                    hint="spec kinds must match core/messages.py kinds",
                )
            )
            continue
        for fieldname in sorted((eff.reads | eff.writes) - NODE_STATE_FIELDS):
            findings.append(
                Finding(
                    code="PL503",
                    path=spec_rel,
                    line=1,
                    message=(
                        f"reaction spec for {kind!r} names stale state field "
                        f"{fieldname!r}"
                    ),
                    hint=(
                        "valid fields are the normalized LeaseNode state set: "
                        + ", ".join(sorted(NODE_STATE_FIELDS))
                    ),
                )
            )
        for skind, roles in eff.sends:
            if skind not in MESSAGE_KINDS.values():
                findings.append(
                    Finding(
                        code="PL503",
                        path=spec_rel,
                        line=1,
                        message=(
                            f"reaction spec for {kind!r} declares a send of "
                            f"unknown kind {skind!r}"
                        ),
                        hint="spec send kinds must match core/messages.py kinds",
                    )
                )
            for role in roles:
                if role not in ROLES:
                    findings.append(
                        Finding(
                            code="PL503",
                            path=spec_rel,
                            line=1,
                            message=(
                                f"reaction spec for {kind!r} uses unknown "
                                f"role {role!r}"
                            ),
                            hint=f"roles are {ROLES}",
                        )
                    )
    for kind in sorted(set(core) | set(flat)):
        if kind not in spec:
            findings.append(
                Finding(
                    code="PL503",
                    path=spec_rel,
                    line=1,
                    message=(
                        f"handler for message kind {kind!r} exists but the "
                        "reaction spec has no entry for it"
                    ),
                    hint="add the kind to verify/reaction_spec.py",
                )
            )

    # PL501/PL502 against the spec, per implementation.
    for kind, eff in sorted(spec.items()):
        if kind in core:
            _diff_effects(kind, "core", core[kind], eff, core_rel, 1, findings)
        if kind in flat:
            _diff_effects(kind, "flat", flat[kind], eff, flat_rel, 1, findings)

    # PL504: core <-> flat drift, independent of the spec.
    for kind in sorted(set(core) & set(flat)):
        c, f = core[kind], flat[kind]
        deltas: List[str] = []
        if c.send_map != f.send_map:
            deltas.append(f"sends core={c.to_dict()['sends']} flat={f.to_dict()['sends']}")
        if c.emits != f.emits:
            deltas.append(f"emits core={sorted(c.emits)} flat={sorted(f.emits)}")
        if c.writes != f.writes:
            deltas.append(f"writes core={sorted(c.writes)} flat={sorted(f.writes)}")
        if c.reads != f.reads:
            deltas.append(f"reads core={sorted(c.reads)} flat={sorted(f.reads)}")
        if deltas:
            findings.append(
                Finding(
                    code="PL504",
                    path=flat_rel,
                    line=1,
                    message=(
                        f"core and flat handlers for {kind!r} diverge: "
                        + "; ".join(deltas)
                    ),
                    hint=(
                        "the flat backend must be effect-equivalent to the "
                        "reference automaton (DESIGN.md decision 13)"
                    ),
                )
            )

    # PL505: every kind the reaction graph sends must have a wire codec.
    if codec_py.is_file():
        codec_findings: List[Finding] = []
        codec_mod = _parse(codec_py, _rel(codec_py, project_root), codec_findings)
        if codec_mod is not None:
            from repro.verify.protolint import _codec_registered_names

            registered = _codec_registered_names(codec_mod)
            if registered is not None:
                kinds_by_class = {v: k for k, v in MESSAGE_KINDS.items()}
                wired = {
                    MESSAGE_KINDS[name]
                    for name in registered
                    if name in MESSAGE_KINDS
                }
                sent = {
                    skind
                    for eff in list(core.values()) + list(flat.values())
                    for skind, _roles in eff.sends
                }
                for skind in sorted(sent - wired):
                    cls_name = kinds_by_class.get(skind, skind)
                    findings.append(
                        Finding(
                            code="PL505",
                            path=_rel(codec_py, project_root),
                            line=1,
                            message=(
                                f"reaction graph sends {skind!r} but "
                                f"{cls_name} has no wire-codec entry"
                            ),
                            hint=(
                                "add an encode/decode pair to _ENCODERS / "
                                "_DECODERS in net/codec.py"
                            ),
                        )
                    )
    return findings


# ------------------------------------------------- derived POR independence
@dataclass(frozen=True)
class DerivedIndependence:
    """The POR independence relation derived from static footprints.

    Soundness argument (DESIGN.md decision 13): every handler effect is
    node-local state (``node_local``), and sends enqueue onto per-directed-
    edge FIFO queues whose relative order across distinct edges is not part
    of the network model.  Hence two message *deliveries at distinct
    destination nodes* read/write disjoint state and commute; everything
    else (same destination; request initiations, which flip the schedule's
    serial flag) is conservatively dependent.  If any handler has an
    unknown (non-node-local) effect the premise fails and the relation
    degrades to full dependence — sound, merely slower.
    """

    node_local: bool
    unknown_effects: Tuple[str, ...] = ()

    def independent(self, a: Tuple[object, ...], b: Tuple[object, ...]) -> bool:
        if not self.node_local:
            return False
        return a[0] == "deliver" and b[0] == "deliver" and a[2] != b[2]

    def to_dict(self) -> Dict[str, object]:
        return {
            "relation": "deliveries-at-distinct-nodes-commute",
            "node_local": self.node_local,
            "unknown_effects": list(self.unknown_effects),
        }


def _derive(graph: ReactionGraph) -> DerivedIndependence:
    unknown: List[str] = []
    for impl_name, table in (("core", graph.core), ("flat", graph.flat)):
        for kind, eff in sorted(table.items()):
            for item in sorted(eff.unknown):
                unknown.append(f"{impl_name}/{kind}: {item}")
            stray = (eff.reads | eff.writes) - NODE_STATE_FIELDS
            for item in sorted(stray):
                unknown.append(f"{impl_name}/{kind}: non-state field {item!r}")
    return DerivedIndependence(
        node_local=not unknown, unknown_effects=tuple(unknown)
    )


def derive_independence(graph: ReactionGraph) -> DerivedIndependence:
    """Derive the independence relation from an extracted reaction graph."""
    return _derive(graph)


@lru_cache(maxsize=1)
def derived_independence() -> DerivedIndependence:
    """The relation derived from the installed sources (cached: the source
    cannot change under a running process)."""
    return _derive(extract_reaction_graph())


# ------------------------------------------------------------------ artifact
def reaction_graph_json(package_root: Optional[Path] = None) -> str:
    """The full reaction-graph artifact: extracted effect sets, the golden
    spec, the derived independence relation, and any PL50x findings."""
    graph = extract_reaction_graph(package_root)
    spec = _spec_module()
    findings = check_reaction(package_root)
    payload = {
        "graph": graph.to_dict(),
        "spec": {k: e.to_dict() for k, e in sorted(spec.items())},
        "independence": _derive(graph).to_dict(),
        "findings": [f.to_dict() for f in findings],
        "ok": not findings,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
