"""The declared golden reaction spec for the lease automaton.

One entry per *received* message kind, declaring the complete static
effect set a handler is allowed (and required) to have — the reaction
graph of the Figure-1 automaton, written down once and enforced by the
PL50x rules in :mod:`repro.verify.effects` against **both** the reference
``LeaseNode`` handlers and the vectorized ``FlatRuntime`` twins.

Reading guide (roles refer to the *destination* of a send relative to the
neighbor the triggering message arrived from):

``probe``     T3: forward probes down the subtree (``sendprobes`` → role
              ``other``) or answer immediately at a frontier node
              (``sendresponse`` → role ``src``, emitting
              ``lease_granted``/``probe_round``).
``response``  T4: absorb the child's aggregate, possibly complete a
              combine (``combine_done``/``scoped_combine_done``) or close
              another pending round (``sendresponse`` → role ``other``).
``update``    T5: granted leases elsewhere ⇒ forward renumbered updates
              (``forwardupdates`` → role ``other``); otherwise the lease
              just broke ⇒ ``forwardrelease`` (role ``other``,
              ``lease_released``).
``release``   T6: the upstream lease broke (``lease_broken``); trim the
              sent-updates window and cascade (``onrelease`` →
              ``forwardrelease``).
``revoke``    Crash-recovery extension: void the local lease
              (``lease_voided``), revoke downstream grants
              (``lease_revoked`` → role ``other``), renormalize, and
              re-probe the recovering neighbor (role ``src``) if a round
              is stuck on it.

Any drift — a dropped send, a new trace event, a state field touched that
is not declared here — fails ``python -m repro verify lint`` (PL501/
PL502) instead of waiting for an integration test to flake.  Deliberate
protocol changes update this file *in the same commit*, which is the
point: the reaction graph is reviewed, not rediscovered.
"""

from __future__ import annotations

from typing import Dict

from repro.verify.effects import EffectSet

__all__ = ["REACTION_SPEC"]


REACTION_SPEC: Dict[str, EffectSet] = {
    "probe": EffectSet.make(
        sends={"probe": {"other"}, "response": {"src"}},
        emits={"probe_round", "lease_granted"},
        reads={
            "aval",
            "ghost",
            "granted",
            "pndg",
            "policy",
            "snt",
            "taken",
            "uaw",
            "val",
        },
        writes={"granted", "pndg", "policy", "snt", "uaw"},
    ),
    "response": EffectSet.make(
        sends={"response": {"other"}},
        emits={
            "combine_done",
            "lease_acquired",
            "lease_granted",
            "scoped_combine_done",
        },
        reads={
            "aval",
            "completed_requests",
            "ghost",
            "granted",
            "pndg",
            "policy",
            "scoped_waiters",
            "snt",
            "taken",
            "val",
            "waiters",
        },
        writes={
            "aval",
            "completed_requests",
            "ghost",
            "granted",
            "pndg",
            "policy",
            "scoped_waiters",
            "snt",
            "taken",
            "waiters",
        },
    ),
    "update": EffectSet.make(
        sends={"update": {"other"}, "release": {"other"}},
        emits={"lease_released"},
        reads={
            "aval",
            "ghost",
            "granted",
            "policy",
            "sntupdates",
            "taken",
            "uaw",
            "upcntr",
            "val",
        },
        writes={
            "aval",
            "ghost",
            "policy",
            "sntupdates",
            "taken",
            "uaw",
            "upcntr",
        },
    ),
    "release": EffectSet.make(
        sends={"release": {"other"}},
        emits={"lease_broken", "lease_released"},
        reads={"granted", "policy", "sntupdates", "taken", "uaw"},
        writes={"granted", "policy", "taken", "uaw"},
    ),
    "revoke": EffectSet.make(
        sends={"revoke": {"other"}, "release": {"other"}, "probe": {"src"}},
        emits={"lease_voided", "lease_revoked", "lease_released"},
        reads={"granted", "policy", "scoped_waiters", "snt", "taken", "uaw"},
        writes={"granted", "policy", "taken", "uaw"},
    ),
}
