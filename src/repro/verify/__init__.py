"""Protocol verification toolkit: five cooperating static/dynamic analyzers.

The repo's tests check the paper's lemmas on *particular* executions; this
package checks them in complementary, stronger ways:

* :mod:`repro.verify.protolint` — a custom AST lint pass over the source
  itself: dispatch-table completeness, trace-schema conformance of every
  ``emit`` call site, layering rules, and deprecated-shim imports.  Runs
  without importing (most of) the code under analysis, so it also works on
  broken fixtures.
* :mod:`repro.verify.effects` — flow-sensitive static effect analysis of
  the protocol handlers: per received message kind, the sends (by neighbor
  role), trace emits, and node-state reads/writes, extracted from both the
  reference ``core`` implementation and its ``flat`` twin.  Checked against
  the golden reaction spec (:mod:`repro.verify.reaction_spec`, rules
  PL50x) and used to *derive* the explorer's partial-order-reduction
  independence relation from read/write sets instead of trusting a
  hand-coded one.
* :mod:`repro.verify.asynclint` — an async-safety pass over
  :mod:`repro.net` (rules PL60x): blocking calls reachable from
  coroutines, dropped task references, unbounded peer-I/O awaits, and
  fields mutated from multiple task roots without a declared
  single-writer/atomicity argument (``_ASYNC_SHARED``).
* :mod:`repro.verify.explore` — a small-scope stateless model checker that
  exhaustively enumerates message-delivery interleavings of a bounded
  request script on a small tree (sleep-set partial-order reduction +
  canonical state hashing), asserting the quiescent-state lemmas, causal
  consistency, strict consistency of serial schedules, and absence of
  deadlock at every reachable state.
* :mod:`repro.verify.causal` — an offline vector-clock happens-before
  checker over recorded JSONL traces (:mod:`repro.obs.export`), verifying
  exactly-once per-edge FIFO delivery and causal visibility of writes by
  completed combines.

All are wired into the CLI as ``python -m repro verify
{lint,effects,explore,causal}`` and into CI (see
``.github/workflows/ci.yml``).  DESIGN.md ("The verification toolkit" and
"Static effect analysis") records what each analyzer does and does not
prove.
"""

from repro.verify.asynclint import run_async_lint
from repro.verify.causal import CausalReport, TraceViolation, check_trace
from repro.verify.effects import (
    DerivedIndependence,
    EffectSet,
    ReactionGraph,
    check_reaction,
    derive_independence,
    derived_independence,
    extract_core_effects,
    extract_flat_effects,
    extract_reaction_graph,
    reaction_graph_json,
)
from repro.verify.explore import (
    ExploreResult,
    Explorer,
    OpSpec,
    Violation,
    default_script,
    parse_script,
)
from repro.verify.protolint import Finding, run_lint
from repro.verify.reaction_spec import REACTION_SPEC

__all__ = [
    "CausalReport",
    "TraceViolation",
    "check_trace",
    "DerivedIndependence",
    "EffectSet",
    "ReactionGraph",
    "check_reaction",
    "derive_independence",
    "derived_independence",
    "extract_core_effects",
    "extract_flat_effects",
    "extract_reaction_graph",
    "reaction_graph_json",
    "REACTION_SPEC",
    "run_async_lint",
    "ExploreResult",
    "Explorer",
    "OpSpec",
    "Violation",
    "default_script",
    "parse_script",
    "Finding",
    "run_lint",
]
