"""Protocol verification toolkit: three cooperating static/dynamic analyzers.

The repo's tests check the paper's lemmas on *particular* executions; this
package checks them in three complementary, stronger ways:

* :mod:`repro.verify.protolint` — a custom AST lint pass over the source
  itself: dispatch-table completeness, trace-schema conformance of every
  ``emit`` call site, layering rules, and deprecated-shim imports.  Runs
  without importing (most of) the code under analysis, so it also works on
  broken fixtures.
* :mod:`repro.verify.explore` — a small-scope stateless model checker that
  exhaustively enumerates message-delivery interleavings of a bounded
  request script on a small tree (sleep-set partial-order reduction +
  canonical state hashing), asserting the quiescent-state lemmas, causal
  consistency, strict consistency of serial schedules, and absence of
  deadlock at every reachable state.
* :mod:`repro.verify.causal` — an offline vector-clock happens-before
  checker over recorded JSONL traces (:mod:`repro.obs.export`), verifying
  exactly-once per-edge FIFO delivery and causal visibility of writes by
  completed combines.

All three are wired into the CLI as ``python -m repro verify
{lint,explore,causal}`` and into CI (see ``.github/workflows/ci.yml``).
DESIGN.md ("The verification toolkit") records what each analyzer does and
does not prove.
"""

from repro.verify.causal import CausalReport, TraceViolation, check_trace
from repro.verify.explore import (
    ExploreResult,
    Explorer,
    OpSpec,
    Violation,
    default_script,
    parse_script,
)
from repro.verify.protolint import Finding, run_lint

__all__ = [
    "CausalReport",
    "TraceViolation",
    "check_trace",
    "ExploreResult",
    "Explorer",
    "OpSpec",
    "Violation",
    "default_script",
    "parse_script",
    "Finding",
    "run_lint",
]
