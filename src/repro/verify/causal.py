"""Offline happens-before checking of recorded traces.

While :mod:`repro.verify.explore` checks all schedules of a small scope and
the ghost-log oracle (:mod:`repro.consistency.causal`) checks one live run
from *inside* the system, this module checks a run **post hoc from its
trace alone**: a JSONL file exported by :func:`repro.obs.export.
export_jsonl` (or any equal list of :class:`~repro.sim.trace.TraceEvent`)
is enough to re-derive the causal structure of the execution and validate
it — including traces recorded on systems where ghost logs were disabled.

**Declared losses.**  Crash and partition faults black-hole messages *by
design*, and every such casualty is announced in the trace as a
``delivery_failed`` event (the transports emit one for wire black-holes,
reliable-layer give-ups and crash-time conversation resets alike).  The
checker consumes each announced loss by retiring the first pending send of
the same message kind on the same edge, so declared casualties never count
as lost-message violations — only *silent* losses (a protocol bug) do.

Two families of checks:

**Exactly-once, per-edge FIFO delivery.**  Logical sends (``send`` events
whose message kind passes :func:`repro.obs.export.is_logical_kind` — frame
traffic of the reliability layer is excluded) are matched against delivery
events on the same directed edge in FIFO order.  ``deliver`` events are
used when the trace contains any (the reliable stack's payload-release
events); bare ``recv`` events otherwise.  A delivery with no matching send
is a duplicate; a kind mismatch is a FIFO reordering; an unmatched send at
end of trace is a loss.  Running this over a ``FaultyNetwork`` trace
*without* the reliability layer reports exactly the injected faults; over a
``ReliableNetwork`` trace it must come back clean — that is Theorem-style
evidence that the retransmission layer restores the paper's network model.

**Causal visibility of writes (Theorem 4).**  Vector clocks are rebuilt
from the trace: every event ticks its node's component, and each matched
delivery joins the sender's clock at the send.  Two clock families are
maintained, because message arrival alone does not imply *value*
visibility: the **full** clocks join on every delivery and order the
execution; the **payload** clocks join only on ``update``/``response``
deliveries — the messages that actually carry aggregate values and write
logs (a ``probe`` or ``release`` arriving from ``v`` does not make ``v``'s
writes visible).  For each completed unscoped combine the checker then
requires a consistent cut: per node, the latest write that
payload-precedes the ``combine_begin`` is a *lower bound* (it or a newer
write must be included), writes that the combine's completion fully
precedes are *excluded*, and anything between is optional (concurrent).
The combine's value must be achievable as the operator product of one
choice per node — decided by an achievable-value set DP (exact for SUM;
floats compared after rounding).

**Crash-touched nodes.**  A node with a ``node_crash`` event anywhere in
the trace gets a *relaxed* candidate set: every one of its writes (and
no-write) is admissible for every combine, except writes the combine's
completion precedes.  This is forced by crash semantics, not a shortcut —
a restart restores the last durable checkpoint, so writes applied after
it are legitimately rolled back, and while the node is down its peers
expire its leases and serve combines that exclude its whole subtree.
Which of those histories a given combine observed cannot be recovered
from the trace alone, so inclusion is genuinely optional.  Crash-free
traces keep the strict lower-bound rule on every node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from repro.obs.export import is_logical_kind
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.trace import TraceEvent

__all__ = ["TraceViolation", "CausalReport", "check_trace"]

#: Message kinds whose delivery makes the sender's writes visible at the
#: receiver (they carry aggregate values / ghost write-logs).
PAYLOAD_KINDS = ("update", "response")

_ROUND = 9  # float comparison precision for aggregate values


@dataclass(frozen=True)
class TraceViolation:
    """One post-hoc violation found in a trace."""

    kind: str  # duplicate-delivery | fifo-order | lost-message | causal-visibility
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "message": self.message}


@dataclass
class CausalReport:
    """What was checked and what failed."""

    events: int = 0
    sends: int = 0
    deliveries: int = 0
    writes: int = 0
    combines_checked: int = 0
    declared_losses: int = 0
    delivery_kind: str = "recv"
    violations: List[TraceViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "sends": self.sends,
            "deliveries": self.deliveries,
            "writes": self.writes,
            "combines_checked": self.combines_checked,
            "declared_losses": self.declared_losses,
            "delivery_kind": self.delivery_kind,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass
class _Send:
    msg: str
    full: Dict[int, int]
    pay: Dict[int, int]


@dataclass
class _Write:
    node: int
    arg: Any
    pay_own: int  # payload clock of its node at the write
    full: Dict[int, int]  # full clock of its node at the write


@dataclass
class _Combine:
    req: int
    node: int
    value: Any
    begin_pay: Optional[Dict[int, int]] = None
    comp_own: Optional[int] = None  # completion's own full-clock component


def check_trace(
    events: Sequence[TraceEvent],
    op: AggregationOperator = SUM,
    n_nodes: Optional[int] = None,
) -> CausalReport:
    """Check one recorded execution (see module doc).  ``events`` must be in
    emit order — which JSONL round-trips preserve bit-identically."""
    report = CausalReport(events=len(events))
    report.delivery_kind = (
        "deliver" if any(ev.kind == "deliver" for ev in events) else "recv"
    )

    vc_full: Dict[int, Dict[int, int]] = {}
    vc_pay: Dict[int, Dict[int, int]] = {}
    pending: Dict[Tuple[int, int], Deque[_Send]] = {}
    writes: Dict[int, List[_Write]] = {}
    begins: Dict[int, Dict[int, int]] = {}  # req -> payload clock at begin
    combines: List[_Combine] = []
    crashed: set = set()  # nodes whose writes get the relaxed candidate rule
    max_node = -1

    def tick(node: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        full = vc_full.setdefault(node, {})
        pay = vc_pay.setdefault(node, {})
        full[node] = full.get(node, 0) + 1
        pay[node] = pay.get(node, 0) + 1
        return full, pay

    def join(into: Dict[int, int], other: Dict[int, int]) -> None:
        for k, v in other.items():
            if v > into.get(k, 0):
                into[k] = v

    for ev in events:
        if ev.node >= 0:
            max_node = max(max_node, ev.node)
        if ev.kind == "send":
            msg = ev.detail.get("msg")
            if not isinstance(msg, str) or not is_logical_kind(msg):
                continue
            full, pay = tick(ev.node)
            report.sends += 1
            edge = (ev.node, ev.detail["dst"])
            pending.setdefault(edge, deque()).append(
                _Send(msg=msg, full=dict(full), pay=dict(pay))
            )
        elif ev.kind == report.delivery_kind:
            msg = ev.detail.get("msg")
            if not isinstance(msg, str) or not is_logical_kind(msg):
                continue
            full, pay = tick(ev.node)
            report.deliveries += 1
            edge = (ev.detail["src"], ev.node)
            queue = pending.get(edge)
            if not queue:
                report.violations.append(
                    TraceViolation(
                        kind="duplicate-delivery",
                        message=(
                            f"delivery of {msg!r} on edge {edge} has no "
                            "matching send (duplicate or phantom)"
                        ),
                    )
                )
                continue
            sent = queue.popleft()
            if sent.msg != msg:
                report.violations.append(
                    TraceViolation(
                        kind="fifo-order",
                        message=(
                            f"edge {edge}: delivered {msg!r} but FIFO order "
                            f"expected {sent.msg!r}"
                        ),
                    )
                )
            join(full, sent.full)
            if sent.msg in PAYLOAD_KINDS:
                join(pay, sent.pay)
        elif ev.kind == "delivery_failed":
            if ev.node >= 0:
                tick(ev.node)
            msg = ev.detail.get("msg")
            if not isinstance(msg, str) or not is_logical_kind(msg):
                continue  # frame-level casualty; retransmission covers it
            edge = (ev.node, ev.detail["dst"])
            queue = pending.get(edge)
            if queue:
                # Retire the first pending send of the announced kind.  A
                # declaration may race a delivery that already matched its
                # send (a segment delivered but unACKed at a crash-time
                # reset is re-declared); with no same-kind send pending the
                # announcement is simply stale — skip, never invent a
                # violation.
                for i, sent in enumerate(queue):
                    if sent.msg == msg:
                        del queue[i]
                        report.declared_losses += 1
                        break
        elif ev.kind == "write_done":
            full, pay = tick(ev.node)
            report.writes += 1
            writes.setdefault(ev.node, []).append(
                _Write(
                    node=ev.node,
                    arg=ev.detail.get("arg"),
                    pay_own=pay[ev.node],
                    full=dict(full),
                )
            )
        elif ev.kind == "combine_begin":
            _, pay = tick(ev.node)
            req = ev.detail.get("req")
            if isinstance(req, int) and ev.detail.get("scope") is None:
                begins[req] = dict(pay)
        elif ev.kind == "span":
            full, _ = tick(ev.node)
            d = ev.detail
            if (
                d.get("op") == "combine"
                and d.get("scope") is None
                and d.get("failure") is None
                and "value" in d
                and isinstance(d.get("req"), int)
            ):
                combines.append(
                    _Combine(
                        req=d["req"],
                        node=ev.node,
                        value=d["value"],
                        begin_pay=begins.get(d["req"]),
                        comp_own=full[ev.node],
                    )
                )
        elif ev.kind == "node_crash":
            crashed.add(ev.node)
            if ev.node >= 0:
                tick(ev.node)
        elif ev.node >= 0:
            tick(ev.node)

    for edge, queue in sorted(pending.items()):
        for sent in queue:
            report.violations.append(
                TraceViolation(
                    kind="lost-message",
                    message=f"send of {sent.msg!r} on edge {edge} was never delivered",
                )
            )

    total_nodes = n_nodes if n_nodes is not None else max_node + 1
    for c in combines:
        if c.begin_pay is None:
            continue  # initiation not in the trace window
        report.combines_checked += 1
        _check_combine(c, writes, total_nodes, op, report, crashed)
    return report


def _candidates(
    c: _Combine,
    node_writes: List[_Write],
    begin_pay: Dict[int, int],
    relaxed: bool = False,
) -> List[Any]:
    """Admissible contributions of one node to combine ``c``: the value of
    the latest payload-visible write, any newer non-excluded write, or
    no-write when nothing was mandatorily visible.  ``relaxed`` (crash-
    touched nodes) drops the lower bound: checkpoint rollback and dead-
    window subtree exclusion make every inclusion optional."""
    if relaxed:
        out: List[Any] = [None]
        for w in node_writes:
            if c.comp_own is not None and w.full.get(c.node, 0) >= c.comp_own:
                continue  # the combine completed before this write happened
            out.append(w.arg)
        return out
    mandatory = sum(1 for w in node_writes if w.pay_own <= begin_pay.get(w.node, 0))
    out: List[Any] = [] if mandatory else [None]
    for j, w in enumerate(node_writes):
        if j < mandatory - 1:
            continue  # overwritten by a later already-visible write
        if c.comp_own is not None and w.full.get(c.node, 0) >= c.comp_own:
            continue  # the combine completed before this write happened
        out.append(w.arg)
    return out


def _check_combine(
    c: _Combine,
    writes: Dict[int, List[_Write]],
    n_nodes: int,
    op: AggregationOperator,
    report: CausalReport,
    crashed: Optional[set] = None,
) -> None:
    assert c.begin_pay is not None

    def key(x: Any) -> Any:
        # Dedup key only — the kept values stay exact, so rounding never
        # accumulates across nodes (round-then-add drifts in the 9th
        # decimal after a few additions).
        return round(x, _ROUND) if isinstance(x, float) else x

    achievable: Dict[Any, Any] = {key(op.identity): op.identity}
    for node in range(n_nodes):
        cands = _candidates(
            c, writes.get(node, []), c.begin_pay,
            relaxed=bool(crashed) and node in crashed,
        )
        step: Dict[Any, Any] = {}
        for acc in achievable.values():
            for a in cands:
                s = op.combine(acc, op.identity if a is None else op.lift(a))
                step[key(s)] = s
        achievable = step
        if len(achievable) > 200_000:
            return  # scope too large to decide; stay silent rather than guess
    if isinstance(c.value, float):
        tol = 1e-6 * (1.0 + abs(c.value))
        ok = any(
            isinstance(s, float) and abs(s - c.value) <= tol
            for s in achievable.values()
        )
    else:
        ok = key(c.value) in achievable
    if not ok:
        report.violations.append(
            TraceViolation(
                kind="causal-visibility",
                message=(
                    f"combine req={c.req} at node {c.node} returned "
                    f"{c.value!r}, which no causally consistent cut of the "
                    "trace's writes can produce"
                ),
            )
        )
