"""Protocol lint: AST-level rules the type checker cannot express.

The rules encode repo-specific contracts that have each been broken (or
nearly broken) by past refactors:

=======  ==============================================================
PL000    file does not parse (reported, never crashes the linter)
PL101    ``Message`` subclass with no ``LeaseNode._DISPATCH`` handler
PL102    ``Message`` subclass with no wire-codec entry in
         ``repro.net.codec._ENCODERS`` (it could never cross a socket)
PL201    ``emit`` call site uses an event kind not in ``EVENT_SCHEMAS``
PL202    ``emit`` call site omits a required detail field of its kind
PL301    layering: ``sim/`` imports from ``repro.core``
PL302    layering: ``obs/`` imports ``repro.sim`` internals (only
         ``repro.sim.trace`` and ``repro.sim.stats`` are the published
         surface)
PL401    import of a removed legacy module (``repro.core.policy`` /
         ``repro.core.rww``) instead of ``repro.core.policies``
=======  ==============================================================

Everything works on source text via :mod:`ast` — the linter never imports
the code under analysis, so it can lint fixtures that would not survive
import (e.g. the missing-handler fixture in the tests) and never executes
side effects.  ``emit`` detection is heuristic by necessity: a call whose
callee attribute is ``emit``, with at least three positional arguments of
which the second is a string literal, is taken to be a
:meth:`~repro.sim.trace.TraceLog.emit` site.  Call sites with a computed
kind (e.g. the re-emit loop in ``obs/export.py``) are deliberately out of
scope — they are validated dynamically by strict logs instead.

The dynamic twins of PL101/PL201/PL202 live in ``tests/test_verify.py``:
the lint proves the properties for every *call site*, the tests prove them
for every *executed* event of the engines' real runs.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Finding", "run_lint", "findings_to_json"]

#: The legacy modules PL401 flags.  These started life as deprecated
#: one-release shims re-exporting from ``repro.core.policies``; the shim
#: files are gone now, so *any* import of them is an error — the rule
#: stays so a stale branch resurrecting one gets a structured finding
#: (with a fix hint) instead of an ImportError deep inside a run.
REMOVED_MODULES = {"repro.core.policy", "repro.core.rww"}

#: The only ``repro.sim`` modules ``obs/`` may import (PL302): the trace
#: event bus and the message-count value objects.  Transports, channels and
#: the scheduler are execution-layer internals.
OBS_ALLOWED_SIM = {"repro.sim.trace", "repro.sim.stats"}


@dataclass(frozen=True)
class Finding:
    """One lint finding: rule code, location, message, and a fix hint."""

    code: str
    path: str
    line: int
    message: str
    hint: str

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message} ({self.hint})"


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable rendering (one JSON array, stable key order)."""
    return json.dumps([f.to_dict() for f in findings], indent=2, sort_keys=True)


# --------------------------------------------------------------------- parsing
def _parse(path: Path, rel: str, findings: List[Finding]) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        findings.append(
            Finding(
                code="PL000",
                path=rel,
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            )
        )
        return None


def _python_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def _rel(path: Path, project_root: Optional[Path]) -> str:
    if project_root is not None:
        try:
            return str(path.relative_to(project_root))
        except ValueError:
            pass
    return str(path)


# ------------------------------------------------------- PL101: dispatch table
def _message_classes(module: ast.Module) -> Dict[str, Tuple[int, List[str]]]:
    """name -> (lineno, base names) for every class in ``messages.py``."""
    out: Dict[str, Tuple[int, List[str]]] = {}
    for node in module.body:
        if isinstance(node, ast.ClassDef):
            bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
            out[node.name] = (node.lineno, bases)
    return out


def _derives_from_message(
    name: str, classes: Dict[str, Tuple[int, List[str]]]
) -> bool:
    seen: Set[str] = set()
    frontier = [name]
    while frontier:
        cur = frontier.pop()
        if cur in seen:
            continue
        seen.add(cur)
        if cur == "Message":
            return True
        _, bases = classes.get(cur, (0, []))
        frontier.extend(bases)
    return False


def _registered_message_names(module: ast.Module) -> Set[str]:
    """Names used as dict keys in any ``*._DISPATCH.update({...})`` call or
    ``_DISPATCH = {...}`` assignment of ``mechanism.py``."""
    registered: Set[str] = set()

    def keys_of(d: ast.expr) -> Iterable[str]:
        if isinstance(d, ast.Dict):
            for k in d.keys:
                if isinstance(k, ast.Name):
                    yield k.id
                elif isinstance(k, ast.Attribute):
                    yield k.attr

    for node in ast.walk(module):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "_DISPATCH"
            and node.args
        ):
            registered.update(keys_of(node.args[0]))
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", None)
                if name == "_DISPATCH" and node.value is not None:
                    registered.update(keys_of(node.value))
    return registered


def _lint_dispatch(
    package_root: Path, project_root: Optional[Path], findings: List[Finding]
) -> None:
    messages_py = package_root / "core" / "messages.py"
    mechanism_py = package_root / "core" / "mechanism.py"
    if not messages_py.is_file() or not mechanism_py.is_file():
        return
    msg_mod = _parse(messages_py, _rel(messages_py, project_root), findings)
    mech_mod = _parse(mechanism_py, _rel(mechanism_py, project_root), findings)
    if msg_mod is None or mech_mod is None:
        return
    classes = _message_classes(msg_mod)
    registered = _registered_message_names(mech_mod)

    def covered(name: str) -> bool:
        # A subclass is dispatchable when any ancestor is registered
        # (LeaseNode._resolve_handler walks the MRO).
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            if cur in registered:
                return True
            _, bases = classes.get(cur, (0, []))
            frontier.extend(bases)
        return False

    for name, (lineno, _) in sorted(classes.items()):
        if name == "Message" or not _derives_from_message(name, classes):
            continue
        if not covered(name):
            findings.append(
                Finding(
                    code="PL101",
                    path=_rel(messages_py, project_root),
                    line=lineno,
                    message=f"message class {name} has no LeaseNode._DISPATCH handler",
                    hint=(
                        "register a handler for it in the _DISPATCH.update({...}) "
                        "block at the bottom of core/mechanism.py"
                    ),
                )
            )


# ------------------------------------------------------ PL102: wire codec
def _codec_registered_names(module: ast.Module) -> Optional[Set[str]]:
    """Class names keyed in the ``_ENCODERS`` dict literal of
    ``net/codec.py`` (``None`` when the dict is not statically readable)."""
    for node in ast.walk(module):
        value: Optional[ast.expr] = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "_ENCODERS":
                value = node.value
        elif isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "_ENCODERS" for t in node.targets):
                value = node.value
        if value is None:
            continue
        if not isinstance(value, ast.Dict):
            return None
        names: Set[str] = set()
        for k in value.keys:
            if isinstance(k, ast.Name):
                names.add(k.id)
            elif isinstance(k, ast.Attribute):
                names.add(k.attr)
            else:
                return None
        return names
    return None


def _lint_codec(
    package_root: Path, project_root: Optional[Path], findings: List[Finding]
) -> None:
    """PL102 — the live-deployment twin of PL101: every concrete message
    class needs a wire codec, or it silently cannot cross a socket."""
    messages_py = package_root / "core" / "messages.py"
    codec_py = package_root / "net" / "codec.py"
    if not messages_py.is_file() or not codec_py.is_file():
        return
    msg_mod = _parse(messages_py, _rel(messages_py, project_root), findings)
    codec_mod = _parse(codec_py, _rel(codec_py, project_root), findings)
    if msg_mod is None or codec_mod is None:
        return
    classes = _message_classes(msg_mod)
    registered = _codec_registered_names(codec_mod)
    if registered is None:
        findings.append(
            Finding(
                code="PL102",
                path=_rel(codec_py, project_root),
                line=1,
                message="_ENCODERS is not a literal {ClassName: encoder} dict",
                hint="keep the codec registry statically analyzable "
                "(plain class-name keys)",
            )
        )
        return
    for name, (lineno, _) in sorted(classes.items()):
        if name == "Message" or not _derives_from_message(name, classes):
            continue
        if name not in registered:
            findings.append(
                Finding(
                    code="PL102",
                    path=_rel(messages_py, project_root),
                    line=lineno,
                    message=f"message class {name} has no wire codec entry",
                    hint=(
                        "add an encode/decode pair for it to _ENCODERS / "
                        "_DECODERS in net/codec.py"
                    ),
                )
            )


# -------------------------------------------------- PL201/PL202: emit schemas
def _event_schemas_from_source(module: ast.Module) -> Optional[Dict[str, Tuple[str, ...]]]:
    """The ``EVENT_SCHEMAS`` dict literal of ``sim/trace.py``, statically."""
    for node in module.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "EVENT_SCHEMAS":
                value = node.value
        elif isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "EVENT_SCHEMAS" for t in node.targets):
                value = node.value
        if value is None or not isinstance(value, ast.Dict):
            continue
        schemas: Dict[str, Tuple[str, ...]] = {}
        for k, v in zip(value.keys, value.values):
            if not (isinstance(k, ast.Constant) and isinstance(k.value, str)):
                return None
            if not isinstance(v, ast.Tuple):
                return None
            fields = []
            for elt in v.elts:
                if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                    return None
                fields.append(elt.value)
            schemas[k.value] = tuple(fields)
        return schemas
    return None


def _lint_emit_sites(
    package_root: Path, project_root: Optional[Path], findings: List[Finding]
) -> None:
    trace_py = package_root / "sim" / "trace.py"
    if not trace_py.is_file():
        return
    trace_mod = _parse(trace_py, _rel(trace_py, project_root), findings)
    if trace_mod is None:
        return
    schemas = _event_schemas_from_source(trace_mod)
    if schemas is None:
        findings.append(
            Finding(
                code="PL201",
                path=_rel(trace_py, project_root),
                line=1,
                message="EVENT_SCHEMAS is not a literal {str: (str, ...)} dict",
                hint="keep EVENT_SCHEMAS statically analyzable",
            )
        )
        return
    for path in _python_files(package_root):
        rel = _rel(path, project_root)
        module = _parse(path, rel, findings)
        if module is None:
            continue
        for node in ast.walk(module):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and len(node.args) >= 3
            ):
                continue
            kind_arg = node.args[1]
            if not (isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str)):
                continue  # computed kind: strict TraceLogs validate at runtime
            kind = kind_arg.value
            required = schemas.get(kind)
            if required is None:
                findings.append(
                    Finding(
                        code="PL201",
                        path=rel,
                        line=node.lineno,
                        message=f"emit of unknown trace event kind {kind!r}",
                        hint="add the kind to EVENT_SCHEMAS in sim/trace.py "
                        "or fix the call site",
                    )
                )
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **splat: field set unknowable statically
            present = {kw.arg for kw in node.keywords}
            missing = [f for f in required if f not in present]
            if missing:
                findings.append(
                    Finding(
                        code="PL202",
                        path=rel,
                        line=node.lineno,
                        message=(
                            f"emit of {kind!r} missing required detail "
                            f"field(s) {missing}"
                        ),
                        hint=f"EVENT_SCHEMAS[{kind!r}] requires {list(required)}",
                    )
                )


# ----------------------------------------------------- PL301/PL302: layering
def _imported_modules(module: ast.Module) -> List[Tuple[int, str, Optional[str]]]:
    """(lineno, module, imported name or None) for every import statement."""
    out: List[Tuple[int, str, Optional[str]]] = []
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((node.lineno, alias.name, None))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                out.append((node.lineno, node.module, alias.name))
    return out


def _lint_layering(
    package_root: Path, project_root: Optional[Path], findings: List[Finding]
) -> None:
    sim_root = package_root / "sim"
    if sim_root.is_dir():
        for path in _python_files(sim_root):
            rel = _rel(path, project_root)
            module = _parse(path, rel, findings)
            if module is None:
                continue
            for lineno, mod, name in _imported_modules(module):
                full = f"{mod}.{name}" if name else mod
                if mod.startswith("repro.core") or full.startswith("repro.core."):
                    findings.append(
                        Finding(
                            code="PL301",
                            path=rel,
                            line=lineno,
                            message=f"sim/ imports {full} (transport layer must "
                            "not depend on the mechanism layer)",
                            hint="invert the dependency: core/ drives sim/, "
                            "never the reverse",
                        )
                    )
    obs_root = package_root / "obs"
    if obs_root.is_dir():
        for path in _python_files(obs_root):
            rel = _rel(path, project_root)
            module = _parse(path, rel, findings)
            if module is None:
                continue
            for lineno, mod, name in _imported_modules(module):
                # Resolve to the module actually referenced: `from
                # repro.sim import transport` names repro.sim.transport.
                target = f"{mod}.{name}" if (mod == "repro.sim" and name) else mod
                if not (target == "repro.sim" or target.startswith("repro.sim.")):
                    continue
                if any(
                    target == a or target.startswith(a + ".") for a in OBS_ALLOWED_SIM
                ):
                    continue
                findings.append(
                    Finding(
                        code="PL302",
                        path=rel,
                        line=lineno,
                        message=f"obs/ imports sim internal {target}",
                        hint="obs/ may only use repro.sim.trace and "
                        "repro.sim.stats; anything else belongs behind "
                        "the runtime",
                    )
                )


# ---------------------------------------------- PL401: removed-module imports
def _lint_removed_imports(
    roots: List[Path], project_root: Optional[Path], findings: List[Finding]
) -> None:
    for root in roots:
        if not root.is_dir():
            continue
        for path in _python_files(root):
            rel = _rel(path, project_root)
            module = _parse(path, rel, findings)
            if module is None:
                continue
            for lineno, mod, name in _imported_modules(module):
                full = f"{mod}.{name}" if name else mod
                hit = next(
                    (
                        d
                        for d in sorted(REMOVED_MODULES)
                        if mod == d or mod.startswith(d + ".") or full == d
                    ),
                    None,
                )
                if hit is not None:
                    findings.append(
                        Finding(
                            code="PL401",
                            path=rel,
                            line=lineno,
                            message=f"import of removed module {hit}",
                            hint="the policy shims were deleted; import "
                            "from repro.core.policies instead",
                        )
                    )


# ------------------------------------------------------------------- driver
def run_lint(
    package_root: Optional[Path] = None,
    project_root: Optional[Path] = None,
) -> List[Finding]:
    """Run every rule; returns findings sorted by (path, line, code).

    ``package_root`` is the ``repro`` package directory (defaults to the
    installed/importable one); ``project_root`` is the repo checkout whose
    ``tests/`` and ``benchmarks/`` trees are additionally scanned for
    removed-module imports (defaults to two levels above the package, the
    ``src`` layout).  Both are overridable so the test suite can lint
    deliberately-broken fixture trees.
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    package_root = Path(package_root)
    if project_root is None:
        candidate = package_root.parent.parent
        if (candidate / "tests").is_dir() or (candidate / "pyproject.toml").is_file():
            project_root = candidate
    findings: List[Finding] = []
    _lint_dispatch(package_root, project_root, findings)
    _lint_codec(package_root, project_root, findings)
    _lint_emit_sites(package_root, project_root, findings)
    _lint_layering(package_root, project_root, findings)
    extra = [package_root]
    if project_root is not None:
        extra += [project_root / "tests", project_root / "benchmarks"]
    _lint_removed_imports(extra, project_root, findings)
    # PL50x (reaction-graph spec conformance) and PL60x (async safety)
    # live in sibling modules; late imports keep the layering acyclic
    # (both import Finding/_parse from here).  Each pass no-ops when its
    # subject tree is absent, so fixture packages without flat/ or net/
    # lint exactly as before.
    from repro.verify.asynclint import run_async_lint
    from repro.verify.effects import check_reaction

    findings.extend(check_reaction(package_root, project_root))
    findings.extend(run_async_lint(package_root, project_root))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
