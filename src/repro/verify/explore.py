"""Small-scope stateless model checking of the lease protocol.

The engines execute *one* schedule per run; :class:`Explorer` executes **all
of them**: every interleaving of message deliveries and request initiations
that the network model permits (per-edge FIFO, arbitrary cross-edge order)
for a bounded request script on a small tree.  At every reachable state it
asserts the properties the paper proves, so a bug that only appears under
one adversarial schedule — the kind random simulation can miss forever — is
found by exhaustion:

* **quiescent-state lemmas** — whenever no message is in flight, Lemma 3.1
  (taken/granted symmetry), Lemma 3.2 (a grant implies taken elsewhere) and
  Lemma 3.4 (no open probe rounds) must hold
  (:func:`repro.core.runtime.check_quiescent_invariants`);
* **no lost quiescence / deadlock** — a node with an open probe round while
  nothing is in flight can never complete: reported as ``deadlock``;
* **completion** — every request of the script has completed at every
  terminal state;
* **causal consistency** (Theorem 4) — at terminal states, via the
  Section-5 ghost write-logs (:func:`repro.consistency.causal.
  check_causal_consistency`);
* **strict consistency** — on *serial* schedules (every request initiated
  at full quiescence), results must equal the sequential-specification
  values (:func:`repro.consistency.strict.check_strict_consistency`).

Scripts may also schedule **crash/recover transitions** (``kN`` / ``rN``):
a crash black-holes the node's wire and loses its volatile state (open
requests die and are excluded from the oracles, mirroring the engines'
fast-fail behavior), a recover reopens the wire and runs the
lease-reconciliation round.  While any node is down the quiescent-state
lemmas and the deadlock rule are suspended (a down node legitimately breaks
symmetry); they re-arm the moment the last node recovers, so a recovery
path that leaves stale leases behind — the classic stale-lease mutant — is
caught as a lemma, causal or deadlock violation with a replayable schedule.

Small-scope caveat (documented in DESIGN.md): exhaustiveness is relative to
the bounded scope — the synchronous reliable network, trees of a few nodes
and scripts of a few operations.  Per the small-scope hypothesis most
protocol bugs already manifest there (the seeded-mutation tests demonstrate
it), but the explorer proves nothing about larger instances.

State-space techniques:

* **canonical state hashing** — :meth:`NodeRuntime.state_snapshot` plus the
  script position, per-request results and the serial flag form a hashable
  key; a state reached twice is expanded once (per sleep-set rule below).
* **sleep-set partial-order reduction** (Godefroid) — two *deliveries* to
  distinct nodes commute exactly (disjoint node mutations; disjoint edge
  queues — see :meth:`SynchronousNetwork.pending_snapshot`), so exploring
  both orders is redundant.  After exploring action ``a`` at a state, ``a``
  enters the *sleep set* of the remaining branches and is skipped in any
  successor until a dependent action wakes it.  Request initiations are
  treated as dependent on everything (they flip the schedule's serial
  flag, which is part of the checked semantics, so they must not commute
  away).  Sleep sets prune *transitions only* — every reachable state is
  still visited, so the per-state invariant checks remain exhaustive.  A
  previously visited state is re-expanded only when the recorded sleep
  sets do not subsume the current one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.consistency.causal import check_causal_consistency
from repro.consistency.strict import check_strict_consistency
from repro.core.backend import Backend, build_backend
from repro.core.mechanism import LeaseNode
from repro.core.runtime import PolicyFactory
from repro.core.policies import RWWPolicy
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.sim.transport import TransportConfig
from repro.tree.topology import Tree
from repro.util.canon import canonical_value
from repro.workloads.requests import COMBINE, WRITE, Request, combine, write

__all__ = [
    "OpSpec",
    "Violation",
    "ExploreResult",
    "Explorer",
    "parse_script",
    "default_script",
]

#: An explorer action: ("deliver", src, dst) or ("op", script_index).
Action = Tuple[Any, ...]

#: OpSpec kinds beyond WRITE/COMBINE: scheduled crash/recover transitions.
CRASH = "crash"
RECOVER = "recover"


@dataclass(frozen=True)
class OpSpec:
    """One scripted operation: a write of ``arg``, a combine at ``node``,
    or a crash/recover fault transition at ``node``."""

    kind: str  # WRITE, COMBINE, CRASH or RECOVER
    node: int
    arg: Optional[float] = None

    def __str__(self) -> str:
        if self.kind == WRITE:
            return f"w{self.node}={self.arg:g}"
        if self.kind == CRASH:
            return f"k{self.node}"
        if self.kind == RECOVER:
            return f"r{self.node}"
        return f"c{self.node}"


def parse_script(text: str) -> List[OpSpec]:
    """Parse the CLI script DSL: ``"w0=1,c2,k0,r0,w2=5,c0"``.

    ``wN=X`` writes value ``X`` at node ``N``; ``cN`` combines at node
    ``N``; ``kN`` kills (crashes) node ``N``; ``rN`` recovers it.
    Whitespace around commas is ignored.
    """
    ops: List[OpSpec] = []
    for chunk in text.split(","):
        tok = chunk.strip()
        if not tok:
            continue
        try:
            if tok.startswith("w"):
                lhs, rhs = tok[1:].split("=", 1)
                ops.append(OpSpec(WRITE, int(lhs), float(rhs)))
            elif tok.startswith("c"):
                ops.append(OpSpec(COMBINE, int(tok[1:])))
            elif tok.startswith("k"):
                ops.append(OpSpec(CRASH, int(tok[1:])))
            elif tok.startswith("r"):
                ops.append(OpSpec(RECOVER, int(tok[1:])))
            else:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"bad script token {tok!r}: expected wN=X, cN, kN or rN"
            ) from None
    return ops


def default_script(n_nodes: int, max_ops: int) -> List[OpSpec]:
    """A deterministic script mixing writes and combines across the tree.

    Alternates writes (distinct values, rotating nodes) with combines at
    other nodes, so every prefix already exercises update propagation and
    lease hand-off.
    """
    ops: List[OpSpec] = []
    for i in range(max_ops):
        if i % 2 == 0:
            ops.append(OpSpec(WRITE, i % n_nodes, float(i + 1)))
        else:
            ops.append(OpSpec(COMBINE, (i + n_nodes // 2) % n_nodes))
    return ops


@dataclass(frozen=True)
class Violation:
    """One property violation, with the schedule that reaches it."""

    kind: str  # deadlock | lemma | causal | strict | completion
    message: str
    schedule: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "schedule": list(self.schedule),
        }


@dataclass
class ExploreResult:
    """Exploration statistics and every violation found."""

    states: int = 0
    transitions: int = 0
    slept: int = 0
    revisits: int = 0
    terminals: int = 0
    serial_terminals: int = 0
    truncated: bool = False
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    @property
    def reduction_ratio(self) -> float:
        """Fraction of candidate transitions pruned by sleep sets."""
        total = self.transitions + self.slept
        return self.slept / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "slept": self.slept,
            "revisits": self.revisits,
            "terminals": self.terminals,
            "serial_terminals": self.serial_terminals,
            "reduction_ratio": round(self.reduction_ratio, 4),
            "truncated": self.truncated,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def _noop_complete(request: Request) -> None:
    """Combine-completion callback for explored worlds.

    Deliberately stateless: completion is read back from ``request.index``
    (set by ``_finish_combine`` before the callback fires), which keeps
    every world deep-copyable without sharing mutable state across
    branches.
    """


class _World:
    """One point of the schedule tree: a forked runtime plus script cursor."""

    def __init__(self, runtime: Backend, script: List[OpSpec]) -> None:
        self.runtime = runtime
        self.script = script
        self.pos = 0
        self.requests: List[Request] = []
        self.serial = True
        self.path: List[str] = []

    def fork(self) -> "_World":
        # One deepcopy per transition: runtime and requests share the memo,
        # so waiter tuples inside nodes keep pointing at the clone's
        # request objects.
        clone: "_World" = copy.deepcopy(self)
        return clone

    # ------------------------------------------------------------- actions
    def enabled_actions(self) -> List[Action]:
        actions: List[Action] = [
            ("deliver", src, dst) for src, dst in self.runtime.network.pending_edges()
        ]
        if self.pos < len(self.script):
            actions.append(("op", self.pos))
        return actions

    def fully_quiescent(self) -> bool:
        return self.runtime.is_quiescent() and not any(
            node.has_pending() for node in self.runtime.nodes.values()
        )

    def apply(self, action: Action) -> None:
        if action[0] == "deliver":
            _, src, dst = action
            self.path.append(f"deliver {src}->{dst}")
            self.runtime.network.deliver_next(src, dst)
            return
        spec = self.script[self.pos]
        self.path.append(f"op {spec}")
        if not self.fully_quiescent():
            self.serial = False
        self.pos += 1
        if spec.kind == CRASH:
            # A fault transition is never serial: it tears state mid-flight.
            self.serial = False
            for q in self.runtime.crash(spec.node):
                q.failed = True
            return
        if spec.kind == RECOVER:
            self.serial = False
            self.runtime.recover(spec.node)
            return
        if spec.node in self.runtime.crashed:
            # The engines fast-fail initiations at a down node; mirror that.
            request = write(spec.node, spec.arg) if spec.kind == WRITE else combine(
                spec.node
            )
            request.failed = True
            self.requests.append(request)
            return
        if spec.kind == WRITE:
            request = write(spec.node, spec.arg)
            self.requests.append(request)
            self.runtime.submit_write(request)
        else:
            request = combine(spec.node)
            self.requests.append(request)
            self.runtime.submit_combine(request, _noop_complete)

    # --------------------------------------------------------------- state
    def state_key(self) -> Tuple[Any, ...]:
        return (
            self.runtime.state_snapshot(),
            self.pos,
            tuple(
                (r.index, canonical_value(r.retval), r.failed)
                for r in self.requests
            ),
            self.serial,
        )


class Explorer:
    """Exhaustive DFS over delivery/initiation interleavings (see module doc).

    Parameters
    ----------
    tree:
        The (small) aggregation tree.
    script:
        The bounded request script, initiated in order at arbitrary points
        of the schedule.
    op:
        Aggregation operator (default SUM; consistency oracles assume an
        abelian-group operator).
    policy_factory / node_cls:
        Forwarded to :class:`NodeRuntime`; ``node_cls`` is the mutation-
        testing hook — pass a deliberately broken :class:`LeaseNode`
        subclass and the explorer reports the schedule exposing it.
    max_states:
        Safety valve; exceeding it sets ``truncated`` (the run is then NOT
        a proof of the scope).
    max_violations:
        Stop collecting after this many violations.
    backend:
        Execution backend the worlds run on (``"reference"`` or
        ``"flat"``).  Exploring the flat backend checks the *optimized*
        engine against the same lemma/consistency oracles — its
        ``state_snapshot``/``fork`` are part of the Backend protocol for
        exactly this purpose.  Mutation testing (``node_cls``) stays
        reference-only: the flat backend has no node class to subclass.
    independence:
        Where the POR independence relation comes from.  ``"derived"``
        (default) takes it from the static effect analysis
        (:func:`repro.verify.effects.derived_independence`): the premise
        that every handler effect is node-local is *checked against the
        extracted reaction graph*, and if it fails the relation soundly
        degrades to full dependence (no reduction, still exhaustive).
        ``"hand"`` keeps the original hand-coded relation — retained for
        the equivalence tests that pin derived == hand on the golden
        scopes.
    """

    INDEPENDENCE_MODES = ("derived", "hand")

    def __init__(
        self,
        tree: Tree,
        script: List[OpSpec],
        *,
        op: AggregationOperator = SUM,
        policy_factory: PolicyFactory = RWWPolicy,
        node_cls: type = LeaseNode,
        max_states: int = 500_000,
        max_violations: int = 10,
        backend: str = "reference",
        independence: str = "derived",
    ) -> None:
        for spec in script:
            if not (0 <= spec.node < tree.n):
                raise ValueError(f"script op {spec} targets a node outside the tree")
        if independence not in self.INDEPENDENCE_MODES:
            raise ValueError(
                f"unknown independence mode {independence!r}; "
                f"expected one of {self.INDEPENDENCE_MODES}"
            )
        self.tree = tree
        self.script = script
        self.op = op
        self.policy_factory = policy_factory
        self.node_cls = node_cls
        self.max_states = max_states
        self.max_violations = max_violations
        self.backend = backend
        self.independence = independence
        if independence == "derived":
            from repro.verify.effects import derived_independence

            self._indep: Callable[[Action, Action], bool] = (
                derived_independence().independent
            )
        else:
            self._indep = self._independent

    # ----------------------------------------------------------- independence
    @staticmethod
    def _independent(a: Action, b: Action) -> bool:
        """The original hand-coded relation: deliveries to distinct nodes
        commute exactly; everything involving a request initiation is
        treated as dependent (the serial flag is schedule-order
        sensitive).  The derived relation (see ``independence``) must
        prove the same — the equivalence tests compare the two."""
        return a[0] == "deliver" and b[0] == "deliver" and a[2] != b[2]

    # ------------------------------------------------------------------ checks
    def _check_state(self, world: _World, result: ExploreResult) -> None:
        if world.runtime.crashed:
            # Quiescent-state lemmas and the deadlock rule are only defined
            # with every node up: a down node legitimately breaks symmetry
            # and can legitimately wedge a neighbor's round until recovery.
            return
        if not world.runtime.is_quiescent():
            return
        stuck = sorted(
            i for i, node in world.runtime.nodes.items() if node.has_pending()
        )
        if stuck:
            result.violations.append(
                Violation(
                    kind="deadlock",
                    message=(
                        f"nothing in flight but node(s) {stuck} have open "
                        "probe rounds that can never complete"
                    ),
                    schedule=tuple(world.path),
                )
            )
            return
        try:
            world.runtime.check_quiescent_invariants()
        except AssertionError as exc:
            result.violations.append(
                Violation(kind="lemma", message=str(exc), schedule=tuple(world.path))
            )

    def _check_terminal(self, world: _World, result: ExploreResult) -> None:
        result.terminals += 1
        if world.runtime.crashed:
            # A script that ends with a node still down has no meaningful
            # terminal semantics (its requests may be legitimately wedged);
            # count the terminal but assert nothing.
            return
        incomplete = [
            str(self.script[i])
            for i, r in enumerate(world.requests)
            if r.index < 0 and not r.failed
        ]
        if incomplete:
            result.violations.append(
                Violation(
                    kind="completion",
                    message=f"request(s) {incomplete} never completed",
                    schedule=tuple(world.path),
                )
            )
            return
        ghost_logs = {
            i: node.ghost
            for i, node in world.runtime.nodes.items()
            if node.ghost is not None
        }
        live = [r for r in world.requests if not r.failed]
        for v in check_causal_consistency(
            ghost_logs, live, self.tree.n, op=self.op
        ):
            result.violations.append(
                Violation(kind="causal", message=str(v), schedule=tuple(world.path))
            )
        if world.serial:
            result.serial_terminals += 1
            for v in check_strict_consistency(
                world.requests, self.tree.n, op=self.op, tree=self.tree
            ):
                result.violations.append(
                    Violation(kind="strict", message=str(v), schedule=tuple(world.path))
                )

    # --------------------------------------------------------------------- run
    def run(self) -> ExploreResult:
        result = ExploreResult()
        runtime = build_backend(
            self.backend,
            self.tree,
            op=self.op,
            policy_factory=self.policy_factory,
            transport=TransportConfig(),  # synchronous: the model being checked
            ghost=True,
            node_cls=self.node_cls,
            require={"explore", "crash"},
        )
        root = _World(runtime, self.script)
        visited: Dict[Tuple[Any, ...], List[FrozenSet[Action]]] = {}

        def dfs(world: _World, sleep: FrozenSet[Action]) -> None:
            if result.truncated or len(result.violations) >= self.max_violations:
                return
            key = world.state_key()
            recorded = visited.get(key)
            if recorded is not None:
                result.revisits += 1
                if any(prev <= sleep for prev in recorded):
                    return  # an earlier visit explored a superset of branches
            visited.setdefault(key, []).append(sleep)
            if recorded is None:
                # Distinct state: count it and run the per-state checks
                # (re-expansions revisit a state only to widen coverage of
                # its outgoing transitions).
                result.states += 1
                if result.states > self.max_states:
                    result.truncated = True
                    return
                self._check_state(world, result)
            actions = world.enabled_actions()
            if not actions:
                if recorded is None:
                    self._check_terminal(world, result)
                return
            explored: List[Action] = []
            for action in actions:
                if action in sleep:
                    result.slept += 1
                    continue
                child = world.fork()
                child.apply(action)
                result.transitions += 1
                child_sleep = frozenset(
                    b
                    for b in list(sleep) + explored
                    if self._indep(action, b)
                )
                dfs(child, child_sleep)
                explored.append(action)

        dfs(root, frozenset())
        return result
