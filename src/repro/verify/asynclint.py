"""Async-safety lint (PL60x) for the live deployment layer ``repro.net``.

``python -m repro serve`` runs the lease automaton as real asyncio
processes (PR 9).  Everything shares one event loop, so the hazards are
not memory-model data races but *await-interleaving* ones: a blocking
call starves every peer connection; a fire-and-forget task can be
garbage-collected mid-flight or die with a swallowed exception; an
unbounded await on a dead peer wedges its task forever; and node state
touched from several tasks interleaves at await points unless it is
deliberately funneled through the single-writer queues.  All four are
invisible to tests that happen to win the race — and visible to AST
analysis, which is what this module does.  Like the rest of
:mod:`repro.verify`, it parses source and never imports the code under
test, so seeded-mutant fixtures lint like the real tree.

Rules:

PL601  blocking call reachable inside ``async def`` — ``time.sleep``,
       sync socket/pickle/file I/O — directly or through sync helper
       methods/functions it calls (move it to ``run_in_executor``)
PL602  coroutine scheduled with ``ensure_future``/``create_task`` as a
       bare expression statement: no retained reference, so the event
       loop holds the only (weak) ref and the task can vanish mid-flight
PL603  ``await`` on peer I/O (``open_connection``, ``readexactly``,
       ``readline``, ``readuntil``, ``drain``) without a bounding
       ``asyncio.wait_for`` / ``asyncio.timeout`` — a dead peer wedges
       the awaiting task forever
PL604  node/server state field written from more than one task root
       without being declared in the class's ``_ASYNC_SHARED`` set — the
       declaration is the reviewed license for multi-task mutation
PL605  stale ``_ASYNC_SHARED`` entry: declared, but not actually written
       from more than one task root

A *task root* is a method the class hands to the event loop as its own
task or callback: the argument of ``ensure_future``/``create_task``, or a
bare ``self.method`` reference passed as a callback (``start_server(
self._serve_conn, ...)``, ``call_soon(self._pump)``, an options-dict
value).  Writes are collected transitively through ``self.*`` helper
calls with the same alias tracking as :mod:`repro.verify.effects`; calls
that mutate a ``LeaseNode`` through a self-derived receiver
(``node.write(...)``, ``self.transport.deliver_remote(...)``) count as
writes to the pseudo-field ``"nodes"``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.verify.protolint import Finding, _parse, _python_files, _rel

__all__ = ["run_async_lint", "ASYNC_SHARED_ATTR"]

#: Class attribute naming the fields licensed for multi-task mutation.
ASYNC_SHARED_ATTR = "_ASYNC_SHARED"

#: ``module.function`` calls that block the event loop.
_BLOCKING_MODULE_CALLS: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("time", "sleep"),
        ("socket", "create_connection"),
        ("socket", "getaddrinfo"),
        ("pickle", "dump"),
        ("pickle", "load"),
        ("json", "dump"),
        ("json", "load"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("os", "system"),
        ("shutil", "rmtree"),
        ("shutil", "copyfile"),
    }
)

#: Method names that are synchronous file I/O on any receiver (pathlib).
_BLOCKING_ATTR_CALLS: FrozenSet[str] = frozenset(
    {"read_bytes", "read_text", "write_bytes", "write_text"}
)

#: Peer-I/O awaitables that must be bounded by a timeout (PL603).
_PEER_IO_ATTRS: FrozenSet[str] = frozenset(
    {"open_connection", "readexactly", "readline", "readuntil", "drain"}
)

#: Task-factory callables (PL602 / task-root detection).
_TASK_FACTORIES: FrozenSet[str] = frozenset({"ensure_future", "create_task"})

#: Calls that mutate LeaseNode / router state through a self-derived
#: receiver: pseudo-field ``"nodes"`` for PL604.
_NODE_STATE_METHODS: FrozenSet[str] = frozenset(
    {
        "deliver_remote",
        "route",
        "on_message",
        "write",
        "begin_combine",
        "begin_scoped_combine",
        "expire_taken",
        "expire_granted",
        "recover_reconcile",
        "crash_volatile",
        "send",
    }
)

#: Container/Event methods that mutate their receiver.
_MUTATORS: FrozenSet[str] = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "set",
        "setdefault",
        "update",
    }
)

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_attr(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_self_derived(expr: ast.expr, aliases: Set[str]) -> bool:
    """True when *expr* reaches an object owned by ``self`` — a ``self.X``
    chain (any depth) or a local alias bound from one."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        ):
            return node.value.id == "self" or node.value.id in aliases
        node = node.value
    if isinstance(node, ast.Name):
        return node.id == "self" or node.id in aliases
    return False


def _blocking_reason(call: ast.Call) -> Optional[str]:
    fn = call.func
    if isinstance(fn, ast.Attribute):
        if isinstance(fn.value, ast.Name):
            key = (fn.value.id, fn.attr)
            if key in _BLOCKING_MODULE_CALLS:
                return f"{key[0]}.{key[1]}"
        if fn.attr in _BLOCKING_ATTR_CALLS:
            return f"<receiver>.{fn.attr}"
    return None


def _is_task_factory(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id in _TASK_FACTORIES
    if isinstance(fn, ast.Attribute):
        return fn.attr in _TASK_FACTORIES
    return False


# ------------------------------------------------------------- module index
class _ModuleIndex:
    """Top-level sync functions and per-class method tables."""

    def __init__(self, module: ast.Module) -> None:
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.methods: Dict[str, Dict[str, ast.FunctionDef]] = {}
        for node in module.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                table: Dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, _FunctionDef):
                        table[item.name] = item
                self.methods[node.name] = table


# ------------------------------------------------------------------- PL601
def _find_blocking(
    fn: ast.FunctionDef,
    index: _ModuleIndex,
    class_name: Optional[str],
    chain: Tuple[str, ...],
    stack: FrozenSet[str],
    out: List[Tuple[int, str, Tuple[str, ...]]],
) -> None:
    """Collect (line, reason, chain) for blocking calls reachable from
    *fn*, recursing through sync ``self.*`` methods and same-module
    functions (never through ``async def`` callees — awaiting those is
    fine, and they are analyzed as entry points themselves)."""
    methods = index.methods.get(class_name or "", {})
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        reason = _blocking_reason(node)
        if reason is not None:
            out.append((node.lineno, reason, chain))
            continue
        callee: Optional[ast.FunctionDef] = None
        callee_name = ""
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            target = methods.get(node.func.attr)
            if isinstance(target, ast.FunctionDef):  # sync only
                callee, callee_name = target, f"self.{node.func.attr}"
        elif isinstance(node.func, ast.Name):
            target = index.functions.get(node.func.id)
            if isinstance(target, ast.FunctionDef):
                callee, callee_name = target, node.func.id
        if callee is not None and callee.name not in stack:
            _find_blocking(
                callee,
                index,
                class_name,
                chain + (callee_name,),
                stack | {callee.name},
                out,
            )


def _lint_blocking(
    module: ast.Module, index: _ModuleIndex, rel: str, findings: List[Finding]
) -> None:
    def check_async(fn: ast.AsyncFunctionDef, class_name: Optional[str]) -> None:
        qual = f"{class_name}.{fn.name}" if class_name else fn.name
        hits: List[Tuple[int, str, Tuple[str, ...]]] = []
        _find_blocking(fn, index, class_name, (), frozenset({fn.name}), hits)
        for line, reason, chain in sorted(hits):
            via = f" via {' -> '.join(chain)}" if chain else ""
            findings.append(
                Finding(
                    code="PL601",
                    path=rel,
                    line=line,
                    message=(
                        f"blocking call {reason}() reachable in "
                        f"async {qual}{via}"
                    ),
                    hint=(
                        "blocking I/O starves the event loop; move it to "
                        "loop.run_in_executor or an async equivalent"
                    ),
                )
            )

    for node in module.body:
        if isinstance(node, ast.AsyncFunctionDef):
            check_async(node, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.AsyncFunctionDef):
                    check_async(item, node.name)


# ------------------------------------------------------------------- PL602
def _lint_leaked_tasks(module: ast.Module, rel: str, findings: List[Finding]) -> None:
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and _is_task_factory(node.value)
        ):
            findings.append(
                Finding(
                    code="PL602",
                    path=rel,
                    line=node.lineno,
                    message=(
                        "task scheduled without a retained reference; the "
                        "event loop keeps only a weak ref, so it can be "
                        "garbage-collected mid-flight"
                    ),
                    hint=(
                        "assign the task and cancel/await it on shutdown "
                        "(e.g. append it to a pruned self._tasks list)"
                    ),
                )
            )


# ------------------------------------------------------------------- PL603
def _is_bounding_call(call: ast.Call) -> bool:
    fn = call.func
    name = fn.attr if isinstance(fn, ast.Attribute) else (
        fn.id if isinstance(fn, ast.Name) else ""
    )
    return name == "wait_for"


def _is_timeout_ctx(item: ast.withitem) -> bool:
    ctx = item.context_expr
    if isinstance(ctx, ast.Call):
        fn = ctx.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        return name in {"timeout", "timeout_at"}
    return False


def _peer_io_name(call: ast.Call) -> Optional[str]:
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in _PEER_IO_ATTRS:
        return fn.attr
    if isinstance(fn, ast.Name) and fn.id in _PEER_IO_ATTRS:
        return fn.id
    return None


def _lint_unbounded_awaits(
    module: ast.Module, rel: str, findings: List[Finding]
) -> None:
    def visit(node: ast.AST, bounded: bool) -> None:
        if isinstance(node, ast.AsyncWith) and any(
            _is_timeout_ctx(i) for i in node.items
        ):
            bounded = True
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Call):
                if _is_bounding_call(value):
                    for child in ast.iter_child_nodes(node):
                        visit(child, True)
                    return
                name = _peer_io_name(value)
                if name is not None and not bounded:
                    findings.append(
                        Finding(
                            code="PL603",
                            path=rel,
                            line=node.lineno,
                            message=(
                                f"unbounded await on peer I/O {name}(); a "
                                "dead peer wedges this task forever"
                            ),
                            hint=(
                                "wrap in asyncio.wait_for(...) or an "
                                "asyncio.timeout() block"
                            ),
                        )
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, bounded)

    for node in ast.walk(module):
        if isinstance(node, ast.AsyncFunctionDef):
            for stmt in node.body:
                visit(stmt, False)


# ------------------------------------------------------------- PL604/PL605
def _declared_shared(cls: ast.ClassDef) -> Tuple[Optional[int], Set[str]]:
    """Line and contents of the class's ``_ASYNC_SHARED`` declaration."""
    for node in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == ASYNC_SHARED_ATTR for t in targets
        ):
            continue
        names: Set[str] = set()
        assert value is not None
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.add(sub.value)
        return node.lineno, names
    return None, set()


def _task_roots(cls: ast.ClassDef, methods: Dict[str, ast.FunctionDef]) -> Set[str]:
    roots: Set[str] = set()
    call_funcs: Set[int] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
            if _is_task_factory(node) and node.args:
                arg = node.args[0]
                if (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Attribute)
                    and isinstance(arg.func.value, ast.Name)
                    and arg.func.value.id == "self"
                    and arg.func.attr in methods
                ):
                    roots.add(arg.func.attr)
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in methods
            and id(node) not in call_funcs
        ):
            roots.add(node.attr)
    return roots


def _collect_writes(
    method: str,
    methods: Dict[str, ast.FunctionDef],
    stack: FrozenSet[str],
    writes: Set[str],
) -> None:
    """Self-attribute fields written by *method*, transitively through
    ``self.*`` helper calls, with local-alias tracking."""
    fn = methods.get(method)
    if fn is None or method in stack:
        return
    stack = stack | {method}
    # local name -> the self attribute it aliases (e.g. ``queue =
    # self._out_queues[peer]`` -> "_out_queues"; ``node = self.nodes[nid]``
    # -> "nodes", so node.write(...) is attributed to the node table).
    aliases: Dict[str, str] = {}

    def note_store(target: ast.expr) -> None:
        attr = _self_attr(target)
        if attr is not None:
            writes.add(attr)

    def bind_alias(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            attr = _self_attr(value)
            if attr is not None:
                aliases[target.id] = attr
            else:
                aliases.pop(target.id, None)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)
            ):
                for t, v in zip(node.targets[0].elts, node.value.elts):
                    note_store(t)
                    bind_alias(t, v)
                continue
            for target in node.targets:
                note_store(target)
                bind_alias(target, node.value)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            note_store(node.target)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                note_store(t)
        elif isinstance(node, ast.Call):
            fn_expr = node.func
            if not isinstance(fn_expr, ast.Attribute):
                continue
            # self.helper(...) recursion
            if (
                isinstance(fn_expr.value, ast.Name)
                and fn_expr.value.id == "self"
                and fn_expr.attr in methods
            ):
                _collect_writes(fn_expr.attr, methods, stack, writes)
                continue
            # node-state mutation through a self-derived receiver
            if fn_expr.attr in _NODE_STATE_METHODS and _is_self_derived(
                fn_expr.value, set(aliases)
            ):
                writes.add("nodes")
                continue
            # container/Event mutator on self state or a self-derived alias
            if fn_expr.attr in _MUTATORS:
                attr = _self_attr(fn_expr.value)
                if attr is not None:
                    writes.add(attr)
                else:
                    base = fn_expr.value
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id in aliases:
                        writes.add(aliases[base.id])


def _lint_shared_state(
    module: ast.Module, index: _ModuleIndex, rel: str, findings: List[Finding]
) -> None:
    for class_name, cls in index.classes.items():
        methods = index.methods[class_name]
        roots = _task_roots(cls, methods)
        if not roots:
            continue
        writers: Dict[str, Set[str]] = {}
        for root in sorted(roots):
            writes: Set[str] = set()
            _collect_writes(root, methods, frozenset(), writes)
            for fieldname in writes:
                writers.setdefault(fieldname, set()).add(root)
        decl_line, declared = _declared_shared(cls)
        multi = {f for f, rs in writers.items() if len(rs) >= 2}
        for fieldname in sorted(multi - declared):
            roots_str = ", ".join(sorted(writers[fieldname]))
            findings.append(
                Finding(
                    code="PL604",
                    path=rel,
                    line=cls.lineno,
                    message=(
                        f"{class_name}.{fieldname} is written from multiple "
                        f"task roots ({roots_str}) without an "
                        f"{ASYNC_SHARED_ATTR} declaration"
                    ),
                    hint=(
                        "route the mutation through the single-writer queue, "
                        f"or declare the field in {class_name}."
                        f"{ASYNC_SHARED_ATTR} with a comment arguing why the "
                        "interleaving is safe"
                    ),
                )
            )
        for fieldname in sorted(declared - multi):
            findings.append(
                Finding(
                    code="PL605",
                    path=rel,
                    line=decl_line or cls.lineno,
                    message=(
                        f"stale {ASYNC_SHARED_ATTR} entry {fieldname!r} on "
                        f"{class_name}: not written from multiple task roots"
                    ),
                    hint="remove the entry so the declaration stays an "
                    "accurate license list",
                )
            )


# -------------------------------------------------------------------- driver
def run_async_lint(
    package_root: Optional[Path] = None,
    project_root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
) -> List[Finding]:
    """Run PL601–PL605 over ``repro/net`` (or explicit *paths*)."""
    if paths is None:
        if package_root is None:
            import repro

            package_root = Path(repro.__file__).resolve().parent
        net_root = Path(package_root) / "net"
        if not net_root.is_dir():
            return []
        paths = _python_files(net_root)
    findings: List[Finding] = []
    for path in paths:
        rel = _rel(Path(path), project_root)
        module = _parse(Path(path), rel, findings)
        if module is None:
            continue
        index = _ModuleIndex(module)
        _lint_blocking(module, index, rel, findings)
        _lint_leaked_tasks(module, rel, findings)
        _lint_unbounded_awaits(module, rel, findings)
        _lint_shared_state(module, index, rel, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
