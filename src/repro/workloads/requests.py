"""The request model.

Section 2: *"A request is a tuple (node, op, arg, retval)"* where ``op`` is
``combine`` or ``write``; Section 5 extends it with ``index`` (the number of
requests generated at ``q.node`` and completed before ``q``) and a ``gather``
op used only inside the causal-consistency analysis.

:class:`Request` carries all five fields.  ``retval`` and ``index`` are
filled in by the execution engine; generators produce requests with both
unset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

#: Request op constants.
COMBINE = "combine"
WRITE = "write"
GATHER = "gather"  # Section 5 analysis-only op.

_VALID_OPS = (COMBINE, WRITE, GATHER)


@dataclass
class Request:
    """One aggregation request.

    Attributes
    ----------
    node:
        Node where the request is initiated.
    op:
        ``"combine"`` or ``"write"`` (``"gather"`` appears only in ghost
        logs for the Section 5 analysis).
    arg:
        Write argument (the new local value); ``None`` for combines.
    retval:
        Filled by the engine: the returned global aggregate for combines.
    index:
        Filled by the engine: the number of requests initiated at
        ``node`` and completed before this one (Section 5's definition).
    initiated_at, completed_at:
        Virtual times stamped by the concurrent engine (0.0 when
        sequential).
    scope:
        ``None`` for the paper's global combine; a neighbor id for a
        *scoped* combine (extension): aggregate only over
        ``subtree(scope, node)``, the subtree hanging off that neighbor.
    failed:
        True when the engine gave up on this request — a combine that hung
        on a lossy channel (:func:`repro.core.engine.run_with_faults`) or
        exceeded its deadline (the reliability watchdog).  Distinguishes
        "never completed" from a legitimate ``retval`` of ``None``.
    """

    node: int
    op: str
    arg: Any = None
    retval: Any = None
    index: int = -1
    initiated_at: float = 0.0
    completed_at: float = 0.0
    scope: Optional[int] = None
    failed: bool = False

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"invalid op {self.op!r}; expected one of {_VALID_OPS}")
        if self.op == WRITE and self.arg is None:
            raise ValueError("write requests need an arg")

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    @property
    def is_combine(self) -> bool:
        return self.op == COMBINE

    def copy_unexecuted(self) -> "Request":
        """A fresh copy with retval/index/times reset (for replays)."""
        return Request(node=self.node, op=self.op, arg=self.arg, scope=self.scope)


def combine(node: int) -> Request:
    """Convenience constructor for a combine request at ``node``."""
    return Request(node=node, op=COMBINE)


def scoped_combine(node: int, toward: int) -> Request:
    """A scoped combine at ``node`` over ``subtree(toward, node)`` —
    the subtree hanging off neighbor ``toward`` (extension)."""
    return Request(node=node, op=COMBINE, scope=toward)


def write(node: int, arg: Any) -> Request:
    """Convenience constructor for a write of ``arg`` at ``node``."""
    return Request(node=node, op=WRITE, arg=arg)


def count_ops(sequence: Iterable[Request]) -> Tuple[int, int]:
    """Return ``(num_combines, num_writes)`` in the sequence."""
    c = w = 0
    for q in sequence:
        if q.op == COMBINE:
            c += 1
        elif q.op == WRITE:
            w += 1
    return c, w


def validate_sequence(sequence: Sequence[Request], n_nodes: int) -> None:
    """Raise ``ValueError`` if any request targets a node outside ``0..n-1``
    or uses an op other than combine/write."""
    for i, q in enumerate(sequence):
        if not (0 <= q.node < n_nodes):
            raise ValueError(f"request {i} targets node {q.node}, outside 0..{n_nodes - 1}")
        if q.op not in (COMBINE, WRITE):
            raise ValueError(f"request {i} has op {q.op!r}; sequences use combine/write only")


def copy_sequence(sequence: Sequence[Request]) -> List[Request]:
    """Fresh unexecuted copies of every request (for running the same σ
    through several algorithms)."""
    return [q.copy_unexecuted() for q in sequence]


def latest_writes(sequence: Sequence[Request], upto: Optional[int] = None) -> dict:
    """Map ``node -> arg`` of each node's most recent write among the first
    ``upto`` requests (all by default).  The reference for strict
    consistency: ``A(σ, q)`` of Section 2."""
    stop = len(sequence) if upto is None else upto
    out: dict = {}
    for q in sequence[:stop]:
        if q.op == WRITE:
            out[q.node] = q.arg
    return out
