"""The Theorem 3 adversary.

Theorem 3's lower bound: for any ``(a, b)``-algorithm on a sufficiently long
request sequence, the competitive ratio is at least 5/2.  The adversary ADV
works on the 2-node tree (edge ``(u, v)`` = ``(1, 0)`` here): it generates
``a`` combine requests at the reading node followed by ``b`` write requests
at the writing node, repeatedly.

Against an ``(a, b)``-algorithm this forces the worst case of both rules:
the lease is granted on exactly the last combine of each read burst (paying
the full probe/response cost for all ``a`` combines) and broken on exactly
the last write of each write burst (paying for all ``b`` updates plus the
release), while the offline algorithm either keeps the lease through the
whole round or never grants it — whichever is cheaper.
"""

from __future__ import annotations

from typing import List

from repro.workloads.requests import Request, combine, write


def adv_sequence(
    a: int,
    b: int,
    rounds: int,
    reader: int = 0,
    writer: int = 1,
    value_base: float = 1.0,
) -> List[Request]:
    """``rounds`` repetitions of [``a`` combines at ``reader``, ``b`` writes
    at ``writer``] — the ADV request generator of Theorem 3."""
    if a < 1 or b < 1:
        raise ValueError(f"need a >= 1 and b >= 1, got a={a}, b={b}")
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if reader == writer:
        raise ValueError("reader and writer must differ")
    out: List[Request] = []
    val = value_base
    for _ in range(rounds):
        for _ in range(a):
            out.append(combine(reader))
        for _ in range(b):
            out.append(write(writer, val))
            val += 1.0
    return out


def single_edge_alternating(rounds: int, reader: int = 0, writer: int = 1) -> List[Request]:
    """Strictly alternating combine/write — the classic worst case for
    eager strategies; ADV(1, 1)."""
    return adv_sequence(1, 1, rounds, reader=reader, writer=writer)


def adv_sequence_strong(
    a: int,
    b: int,
    rounds: int,
    reader: int = 0,
    writer: int = 1,
    value_base: float = 1.0,
) -> List[Request]:
    """The strengthened adversary: ``a`` combines at ``reader``, one write
    *at the reader*, then ``b`` writes at ``writer``, per round.

    The reader-side write is invisible to the (a, b)-algorithm's automaton
    for the edge direction under attack (it generates no messages) but
    hands the offline algorithm a *noop* break opportunity costing 1
    (Figure 2's true-N-false row).  With it, the offline cost per round is
    ``min(2a, b, 3)`` and the forced ratio ``(2a + b + 1) / min(2a, b, 3)``
    is at least 5/2 for **every** (a, b), with equality exactly at
    RWW = (1, 2) — the full strength of Theorem 3.

    (The paper's proof sketch describes only the combine/write rounds; on
    the plain pattern the (2, 4)-algorithm achieves 9/4 < 5/2, so the
    noop is necessary — see EXPERIMENTS.md, THM3.)
    """
    if a < 1 or b < 1:
        raise ValueError(f"need a >= 1 and b >= 1, got a={a}, b={b}")
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if reader == writer:
        raise ValueError("reader and writer must differ")
    out: List[Request] = []
    val = value_base
    for _ in range(rounds):
        for _ in range(a):
            out.append(combine(reader))
        out.append(write(reader, val))
        val += 1.0
        for _ in range(b):
            out.append(write(writer, val))
            val += 1.0
    return out
