"""Phase-shifting workloads.

The introduction's core motivation: *"different nodes may exhibit activity
at different times. Therefore, a static aggregation strategy is not
suitable."*  These generators concatenate phases with different read/write
mixes (and optionally different active node sets) so adaptive algorithms
(RWW) can be compared against statically-tuned baselines across regime
changes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads.requests import Request, combine, write


@dataclass(frozen=True)
class Phase:
    """One workload phase.

    Attributes
    ----------
    length:
        Number of requests in the phase.
    read_ratio:
        Probability a request is a combine during this phase.
    nodes:
        Optional restriction of which nodes are active (default: all).
    """

    length: int
    read_ratio: float
    nodes: Optional[Sequence[int]] = None


def phase_workload(n_nodes: int, phases: Sequence[Phase], seed: int = 0) -> List[Request]:
    """Concatenate the given phases into one request sequence."""
    rng = random.Random(seed)
    out: List[Request] = []
    for ph in phases:
        if not (0.0 <= ph.read_ratio <= 1.0):
            raise ValueError(f"read_ratio must be in [0, 1], got {ph.read_ratio}")
        active = list(ph.nodes) if ph.nodes is not None else list(range(n_nodes))
        for a in active:
            if not (0 <= a < n_nodes):
                raise ValueError(f"phase node {a} out of range for n={n_nodes}")
        for _ in range(ph.length):
            node = active[rng.randrange(len(active))]
            if rng.random() < ph.read_ratio:
                out.append(combine(node))
            else:
                out.append(write(node, rng.uniform(0, 100)))
    return out


def alternating_phases(
    n_nodes: int,
    n_phases: int,
    phase_length: int,
    read_heavy: float = 0.9,
    write_heavy: float = 0.1,
    seed: int = 0,
) -> List[Request]:
    """Alternate read-heavy and write-heavy phases ``n_phases`` times.

    The canonical "no static strategy wins" workload: push-all baselines
    bleed during the write-heavy phases, pull-always baselines bleed during
    the read-heavy ones.
    """
    phases = [
        Phase(length=phase_length, read_ratio=read_heavy if i % 2 == 0 else write_heavy)
        for i in range(n_phases)
    ]
    return phase_workload(n_nodes, phases, seed=seed)


def migrating_hotspot(
    n_nodes: int,
    n_phases: int,
    phase_length: int,
    read_ratio: float = 0.5,
    seed: int = 0,
) -> List[Request]:
    """Activity concentrates on one node per phase and migrates each phase."""
    rng = random.Random(seed)
    phases = []
    for i in range(n_phases):
        hot = rng.randrange(n_nodes)
        phases.append(Phase(length=phase_length, read_ratio=read_ratio, nodes=[hot]))
    return phase_workload(n_nodes, phases, seed=seed + 1)
