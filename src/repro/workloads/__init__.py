"""Request model and workload generators.

:mod:`repro.workloads.requests` defines the paper's request tuple
``(node, op, arg, retval, index)`` and sequence helpers.  The generator
modules produce the synthetic request sequences the benchmarks sweep over:

* :mod:`repro.workloads.synthetic` — seeded uniform/Zipf/hotspot mixes with a
  configurable combine (read) ratio.
* :mod:`repro.workloads.phases` — workloads whose read/write mix shifts over
  time (the intro's motivation for adaptive aggregation).
* :mod:`repro.workloads.adversarial` — the Theorem 3 adversary ``ADV(a, b)``
  on the 2-node tree.
"""

from repro.workloads.requests import (
    COMBINE,
    WRITE,
    Request,
    combine,
    count_ops,
    scoped_combine,
    validate_sequence,
    write,
)
from repro.workloads.synthetic import (
    WorkloadSpec,
    hotspot_workload,
    uniform_workload,
    zipf_node_weights,
    zipf_workload,
)
from repro.workloads.phases import alternating_phases, phase_workload
from repro.workloads.adversarial import adv_sequence, adv_sequence_strong

__all__ = [
    "Request",
    "COMBINE",
    "WRITE",
    "combine",
    "scoped_combine",
    "write",
    "count_ops",
    "validate_sequence",
    "WorkloadSpec",
    "uniform_workload",
    "zipf_workload",
    "hotspot_workload",
    "zipf_node_weights",
    "phase_workload",
    "alternating_phases",
    "adv_sequence",
    "adv_sequence_strong",
]
