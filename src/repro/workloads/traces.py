"""Workload trace serialization (JSONL).

Deterministic seeds regenerate synthetic workloads, but real deployments
replay *recorded* traces.  This module round-trips request sequences (and
executed results) through a line-per-request JSON format so experiments
can be archived, diffed, and replayed across machines:

    {"node": 3, "op": "write", "arg": 7.5}
    {"node": 0, "op": "combine"}

Executed fields (``retval``/``index``/timestamps) are preserved when
present, so a saved result file is itself a valid replayable workload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.workloads.requests import Request

PathLike = Union[str, Path]


def request_to_dict(q: Request) -> dict:
    """A JSON-safe dict for one request (unset fields omitted)."""
    out: dict = {"node": q.node, "op": q.op}
    if q.arg is not None:
        out["arg"] = q.arg
    if q.scope is not None:
        out["scope"] = q.scope
    if q.retval is not None:
        out["retval"] = q.retval
    if q.index >= 0:
        out["index"] = q.index
    if q.initiated_at or q.completed_at:
        out["initiated_at"] = q.initiated_at
        out["completed_at"] = q.completed_at
    return out


def request_from_dict(d: dict) -> Request:
    """Inverse of :func:`request_to_dict`."""
    if "node" not in d or "op" not in d:
        raise ValueError(f"trace record missing node/op: {d!r}")
    q = Request(node=int(d["node"]), op=str(d["op"]), arg=d.get("arg"), scope=d.get("scope"))
    q.retval = d.get("retval")
    q.index = int(d.get("index", -1))
    q.initiated_at = float(d.get("initiated_at", 0.0))
    q.completed_at = float(d.get("completed_at", 0.0))
    return q


def save_trace(path: PathLike, requests: Sequence[Request]) -> int:
    """Write requests as JSONL; returns the number of lines written."""
    p = Path(path)
    with p.open("w") as fh:
        for q in requests:
            fh.write(json.dumps(request_to_dict(q)) + "\n")
    return len(requests)


def load_trace(path: PathLike) -> List[Request]:
    """Read a JSONL trace back into unexecuted-or-executed requests."""
    out: List[Request] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            out.append(request_from_dict(record))
    return out


def dumps_trace(requests: Iterable[Request]) -> str:
    """The JSONL text for a sequence (for tests and in-memory use)."""
    return "".join(json.dumps(request_to_dict(q)) + "\n" for q in requests)


def loads_trace(text: str) -> List[Request]:
    """Inverse of :func:`dumps_trace`."""
    out: List[Request] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        out.append(request_from_dict(json.loads(line)))
    return out
