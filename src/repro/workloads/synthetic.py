"""Seeded synthetic workload generators.

Every generator returns a plain list of unexecuted
:class:`~repro.workloads.requests.Request` objects and is deterministic in
its ``seed``.  The knobs mirror the paper's discussion: the combine/write
mix (the intro's read- vs write-dominated regimes) and the spatial skew of
which nodes issue requests (uniform, Zipf, hotspot).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.workloads.requests import Request, combine, write


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload description (used by benchmark sweeps).

    Attributes
    ----------
    length:
        Number of requests.
    read_ratio:
        Probability a request is a combine.
    skew:
        Zipf exponent for node selection (0 = uniform).
    seed:
        RNG seed.
    """

    length: int
    read_ratio: float
    skew: float = 0.0
    seed: int = 0

    def generate(self, n_nodes: int) -> List[Request]:
        """Materialize the spec on an ``n_nodes``-node tree."""
        if self.skew == 0.0:
            return uniform_workload(
                n_nodes, self.length, read_ratio=self.read_ratio, seed=self.seed
            )
        return zipf_workload(
            n_nodes,
            self.length,
            read_ratio=self.read_ratio,
            exponent=self.skew,
            seed=self.seed,
        )


def _mixed_sequence(
    rng: random.Random,
    length: int,
    read_ratio: float,
    pick_node: "callable",
    value_lo: float = 0.0,
    value_hi: float = 100.0,
) -> List[Request]:
    if not (0.0 <= read_ratio <= 1.0):
        raise ValueError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    out: List[Request] = []
    for _ in range(length):
        node = pick_node(rng)
        if rng.random() < read_ratio:
            out.append(combine(node))
        else:
            out.append(write(node, rng.uniform(value_lo, value_hi)))
    return out


def uniform_workload(
    n_nodes: int,
    length: int,
    read_ratio: float = 0.5,
    seed: int = 0,
) -> List[Request]:
    """Requests at uniformly random nodes with the given combine ratio."""
    rng = random.Random(seed)
    return _mixed_sequence(rng, length, read_ratio, lambda r: r.randrange(n_nodes))


def zipf_node_weights(n_nodes: int, exponent: float) -> np.ndarray:
    """Normalized Zipf weights ``rank^-exponent`` over node ids 0..n-1."""
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n_nodes + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


def zipf_workload(
    n_nodes: int,
    length: int,
    read_ratio: float = 0.5,
    exponent: float = 1.0,
    seed: int = 0,
) -> List[Request]:
    """Requests at Zipf-distributed nodes (node 0 hottest)."""
    rng = random.Random(seed)
    weights = zipf_node_weights(n_nodes, exponent)
    cum = np.cumsum(weights)

    def pick(r: random.Random) -> int:
        return int(np.searchsorted(cum, r.random(), side="right"))

    return _mixed_sequence(rng, length, read_ratio, pick)


def hotspot_workload(
    n_nodes: int,
    length: int,
    hot_nodes: Sequence[int],
    hot_fraction: float = 0.9,
    read_ratio: float = 0.5,
    seed: int = 0,
) -> List[Request]:
    """A ``hot_fraction`` of requests land on ``hot_nodes``, the rest uniform."""
    if not hot_nodes:
        raise ValueError("hot_nodes must be non-empty")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    for h in hot_nodes:
        if not (0 <= h < n_nodes):
            raise ValueError(f"hot node {h} out of range for n={n_nodes}")
    rng = random.Random(seed)
    hot = list(hot_nodes)

    def pick(r: random.Random) -> int:
        if r.random() < hot_fraction:
            return hot[r.randrange(len(hot))]
        return r.randrange(n_nodes)

    return _mixed_sequence(rng, length, read_ratio, pick)


def reader_writer_partition_workload(
    reader_nodes: Sequence[int],
    writer_nodes: Sequence[int],
    length: int,
    read_ratio: float = 0.5,
    seed: int = 0,
) -> List[Request]:
    """Combines come only from ``reader_nodes``, writes only from
    ``writer_nodes`` — the paper's two-sided picture of an edge, writ large."""
    if not reader_nodes or not writer_nodes:
        raise ValueError("both node groups must be non-empty")
    rng = random.Random(seed)
    readers, writers = list(reader_nodes), list(writer_nodes)
    out: List[Request] = []
    for _ in range(length):
        if rng.random() < read_ratio:
            out.append(combine(readers[rng.randrange(len(readers))]))
        else:
            out.append(write(writers[rng.randrange(len(writers))], rng.uniform(0, 100)))
    return out
