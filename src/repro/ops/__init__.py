"""Aggregation operators (commutative monoids) used by the aggregation tree.

The paper assumes an aggregation operator ``⊕`` that is commutative,
associative, and has an identity element ``0`` (Section 2).  This subpackage
provides the abstraction (:class:`~repro.ops.monoid.AggregationOperator`) and
a library of standard instances: :data:`SUM`, :data:`MIN`, :data:`MAX`,
:data:`COUNT`, :data:`AVERAGE` (a sum/count pair monoid), :data:`BOUNDED_SUM`
factories, :class:`~repro.ops.standard.KSmallest`, and
:class:`~repro.ops.standard.Histogram`.

All operators are pure value-level objects: the lease mechanism recomputes
``gval``/``subval`` from scratch on demand, so operators need not be
invertible (``MIN``/``MAX`` work out of the box).
"""

from repro.ops.monoid import AggregationOperator, check_monoid_laws
from repro.ops.standard import (
    AVERAGE,
    COUNT,
    MAX,
    MIN,
    SUM,
    Average,
    BoundedSum,
    Histogram,
    KSmallest,
    bounded_sum,
    k_smallest,
)

__all__ = [
    "AggregationOperator",
    "check_monoid_laws",
    "SUM",
    "MIN",
    "MAX",
    "COUNT",
    "AVERAGE",
    "Average",
    "BoundedSum",
    "Histogram",
    "KSmallest",
    "bounded_sum",
    "k_smallest",
]
