"""Standard aggregation operators.

The paper's examples (Section 1/2): *min, max, sum, average*.  ``COUNT`` and
the bounded/top-k/histogram operators are common aggregation-framework
functions (SDIMS/Astrolabe expose similar ones) and exercise non-numeric
monoid domains in the mechanism.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Tuple

from repro.ops.monoid import AggregationOperator

#: Sum of local values; identity 0.  The paper's running concrete operator.
SUM = AggregationOperator(name="sum", combine_fn=lambda a, b: a + b, identity=0.0)

#: Minimum of local values; identity +inf.
MIN = AggregationOperator(name="min", combine_fn=min, identity=math.inf)

#: Maximum of local values; identity -inf.
MAX = AggregationOperator(name="max", combine_fn=max, identity=-math.inf)

#: Number of nodes (every local value lifts to 1); identity 0.
COUNT = AggregationOperator(
    name="count",
    combine_fn=lambda a, b: a + b,
    identity=0,
    lift_fn=lambda _raw: 1,
)


class Average(AggregationOperator):
    """Arithmetic mean via the ``(sum, count)`` pair monoid.

    Plain averaging is neither associative nor has an identity, so the
    standard trick applies: aggregate pairs ``(Σx, n)`` and finalize to
    ``Σx / n`` (``nan`` for the empty aggregate).
    """

    def __init__(self) -> None:
        super().__init__(
            name="average",
            combine_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            identity=(0.0, 0),
            lift_fn=lambda raw: (float(raw), 1),
            finalize_fn=lambda agg: (agg[0] / agg[1]) if agg[1] else math.nan,
        )


#: Shared arithmetic-mean operator instance.
AVERAGE = Average()


class BoundedSum(AggregationOperator):
    """Sum saturating at ``bound`` — a monoid on ``[identity, bound]``.

    Saturating addition ``min(a + b, bound)`` is commutative and associative
    on non-negative values and keeps aggregate magnitudes bounded, a common
    requirement in monitoring overlays (e.g. "count alarms, cap at 1000").
    """

    def __init__(self, bound: float) -> None:
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self.bound = bound
        super().__init__(
            name=f"bounded_sum[{bound}]",
            combine_fn=lambda a, b: min(a + b, bound),
            identity=0.0,
            lift_fn=lambda raw: min(max(float(raw), 0.0), bound),
        )


def bounded_sum(bound: float) -> BoundedSum:
    """Return a :class:`BoundedSum` operator saturating at ``bound``."""
    return BoundedSum(bound)


class KSmallest(AggregationOperator):
    """The multiset of the ``k`` smallest local values, as a sorted tuple.

    Merging two sorted tuples and truncating to length ``k`` is commutative
    and associative with the empty tuple as identity.  Useful for "top-k
    loaded machines"-style queries in monitoring trees.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

        def merge(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
            return tuple(sorted(a + b)[: self.k])

        super().__init__(
            name=f"k_smallest[{k}]",
            combine_fn=merge,
            identity=(),
            lift_fn=lambda raw: (raw,),
        )


def k_smallest(k: int) -> KSmallest:
    """Return a :class:`KSmallest` operator keeping the ``k`` smallest values."""
    return KSmallest(k)


class Histogram(AggregationOperator):
    """Fixed-bin histogram over ``[lo, hi)`` as a tuple of counts.

    Values below ``lo`` land in the first bin, values at or above ``hi`` in
    the last; tuple-wise addition is the monoid operation.
    """

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got lo={lo}, hi={hi}")
        self.lo, self.hi, self.bins = float(lo), float(hi), int(bins)
        width = (self.hi - self.lo) / self.bins
        empty = (0,) * self.bins

        def lift(raw: Any) -> Tuple[int, ...]:
            idx = int((float(raw) - self.lo) / width)
            idx = min(max(idx, 0), self.bins - 1)
            counts = [0] * self.bins
            counts[idx] = 1
            return tuple(counts)

        super().__init__(
            name=f"histogram[{lo},{hi},{bins}]",
            combine_fn=lambda a, b: tuple(x + y for x, y in zip(a, b)),
            identity=empty,
            lift_fn=lift,
        )

    def bin_edges(self) -> Tuple[float, ...]:
        """Return the ``bins + 1`` bin edge positions."""
        width = (self.hi - self.lo) / self.bins
        return tuple(self.lo + i * width for i in range(self.bins + 1))

    def as_mapping(self, aggregate: Tuple[int, ...]) -> Mapping[Tuple[float, float], int]:
        """Present an aggregate as ``{(edge_lo, edge_hi): count}``."""
        edges = self.bin_edges()
        return {(edges[i], edges[i + 1]): aggregate[i] for i in range(self.bins)}
