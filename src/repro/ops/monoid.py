"""The aggregation-operator abstraction.

Section 2 of the paper: *"We are also given an aggregation operator ⊕ that is
commutative, associative, and has an identity element 0."*  An
:class:`AggregationOperator` bundles the binary operation with its identity
and (optionally) a conversion from a node's *local value* into the monoid
domain (e.g. ``COUNT`` maps every local value to ``1``; ``AVERAGE`` maps a
real ``x`` to the pair ``(x, 1)``).

The mechanism only ever calls :meth:`AggregationOperator.combine`,
:attr:`AggregationOperator.identity` and :meth:`AggregationOperator.lift`;
``finalize`` exists for user-facing presentation (e.g. turning a sum/count
pair into a mean).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


@dataclass(frozen=True)
class AggregationOperator:
    """A commutative monoid ``(domain, combine, identity)`` with lift/finalize.

    Parameters
    ----------
    name:
        Human-readable operator name (used in reprs and trace output).
    combine_fn:
        The binary operation ``⊕``.  Must be commutative and associative over
        the intended domain, with ``identity`` as a two-sided identity.
    identity:
        The identity element ``0`` of ``⊕``.
    lift_fn:
        Maps a node's raw local value into the monoid domain.  Defaults to
        the identity function.  ``write`` requests store raw local values;
        the mechanism lifts them before aggregation.
    finalize_fn:
        Maps an aggregate in the monoid domain to a user-facing result
        (defaults to the identity function).

    Examples
    --------
    >>> from repro.ops import SUM
    >>> SUM.combine(2.0, 3.0)
    5.0
    >>> SUM.aggregate([1.0, 2.0, 3.0])
    6.0
    """

    name: str
    combine_fn: Callable[[Any, Any], Any]
    identity: Any
    lift_fn: Callable[[Any], Any] = field(default=lambda x: x)
    finalize_fn: Callable[[Any], Any] = field(default=lambda x: x)

    def combine(self, a: Any, b: Any) -> Any:
        """Return ``a ⊕ b``."""
        return self.combine_fn(a, b)

    def lift(self, raw: Any) -> Any:
        """Map a raw local value into the monoid domain."""
        return self.lift_fn(raw)

    def finalize(self, aggregate: Any) -> Any:
        """Map an aggregate to its user-facing presentation."""
        return self.finalize_fn(aggregate)

    def aggregate(self, values: Iterable[Any], *, lifted: bool = True) -> Any:
        """Fold ``⊕`` over ``values`` starting from the identity.

        With ``lifted=False`` each value is passed through :meth:`lift`
        first; with the default ``lifted=True`` values are assumed to already
        live in the monoid domain.
        """
        acc = self.identity
        for v in values:
            acc = self.combine_fn(acc, v if lifted else self.lift_fn(v))
        return acc

    def aggregate_raw(self, raw_values: Iterable[Any]) -> Any:
        """Lift every raw value and fold ``⊕`` over the results."""
        return self.aggregate(raw_values, lifted=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregationOperator({self.name!r})"


def check_monoid_laws(
    op: AggregationOperator,
    samples: Sequence[Any],
    *,
    equal: Callable[[Any, Any], bool] | None = None,
) -> None:
    """Assert the monoid laws on a finite sample of domain elements.

    Checks, for all sampled ``a, b, c``:

    * identity: ``0 ⊕ a == a == a ⊕ 0``
    * commutativity: ``a ⊕ b == b ⊕ a``
    * associativity: ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)``

    Raises ``AssertionError`` naming the violated law.  ``equal`` defaults to
    ``==``; pass a tolerance-aware comparator for float-heavy domains.
    """
    eq = equal if equal is not None else (lambda x, y: x == y)
    for a in samples:
        left = op.combine(op.identity, a)
        right = op.combine(a, op.identity)
        assert eq(left, a), f"{op.name}: identity law failed: 0 ⊕ {a!r} = {left!r}"
        assert eq(right, a), f"{op.name}: identity law failed: {a!r} ⊕ 0 = {right!r}"
    for a, b in itertools.product(samples, repeat=2):
        assert eq(op.combine(a, b), op.combine(b, a)), (
            f"{op.name}: commutativity failed on {a!r}, {b!r}"
        )
    for a, b, c in itertools.product(samples, repeat=3):
        lhs = op.combine(op.combine(a, b), c)
        rhs = op.combine(a, op.combine(b, c))
        assert eq(lhs, rhs), f"{op.name}: associativity failed on {a!r}, {b!r}, {c!r}"
