"""Static-strategy baselines the paper motivates against (Section 1).

The intro contrasts adaptive lease-based aggregation with the static
strategies of deployed frameworks:

* **Astrolabe** — propagate every write's new aggregate to all nodes so
  every read is local (:func:`astrolabe_config`).
* **MDS-2** — aggregate on reads; every combine contacts all nodes
  (:func:`mds_config`).
* **SDIMS-like static hierarchies** — updates propagate part-way up a
  rooted hierarchy, reads pull the rest (:func:`up_tree_config`,
  :func:`up_to_level_k_config`).
* **Time-based leases** (Gray & Cheriton) — leases that silently expire
  after a TTL instead of being released
  (:class:`~repro.baselines.timelease.TimeLeaseBaseline`).

All static lease configurations are expressed as a fixed set of granted
directed edges validated against the mechanism's legality constraint
(Lemma 3.2: a granted edge requires every other incident edge's reverse
grant), and their message costs follow the Figure-2 per-edge accounting, so
they are directly comparable with RWW's simulated counts.
"""

from repro.baselines.base import BaselineResult, StaticLeaseBaseline
from repro.baselines.configs import (
    astrolabe_config,
    mds_config,
    up_to_level_k_config,
    up_tree_config,
    validate_lease_config,
)
from repro.baselines.timelease import TimeLeaseBaseline

__all__ = [
    "BaselineResult",
    "StaticLeaseBaseline",
    "astrolabe_config",
    "mds_config",
    "up_tree_config",
    "up_to_level_k_config",
    "validate_lease_config",
    "TimeLeaseBaseline",
]
