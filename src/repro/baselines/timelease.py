"""Time-based lease baseline (Gray & Cheriton style).

Classic TTL leases differ from the paper's message-released leases in two
ways: they are renewed by reads and they expire *silently* — no release
message.  Expressed in the per-ordered-edge accounting:

* A combine in ``σ(u, v)`` with no live lease costs 2 (probe/response) and
  installs a lease with ``ttl`` remaining tokens; with a live lease it
  costs 0 and renews the TTL.
* A write in ``σ(u, v)`` under a live lease costs 1 (update); with no lease
  it costs 0.
* Every request of ``σ(u, v)`` (including noops) ages the lease by one; at
  zero it lapses for free.

This is the "time-based leases" design point cited in the related work
([13], [10]); the MOTIV benchmark compares it against RWW's
request-pattern-driven breaking.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import BaselineResult
from repro.offline.projection import READ, WRITE_TOKEN, project_all_edges
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.recovery.lease_ttl import LeaseExpiry
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request


def time_lease_edge_cost(tokens: Sequence[str], ttl: int) -> int:
    """Message cost of TTL leasing on one ordered edge's token stream.

    Runs :class:`~repro.recovery.lease_ttl.LeaseExpiry` — the same expiry
    law the crash-recovery manager applies over virtual time — over the
    *token clock*: ``now`` is the token index, so a lease renewed by the
    read at index ``i`` survives through index ``i + ttl`` inclusive
    (every token, noops included, ages it by one) and lapses silently.
    """
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")
    expiry = LeaseExpiry(ttl)
    lease = "lease"  # single key: one ordered edge per call
    total = 0
    for i, tok in enumerate(tokens):
        if tok == READ:
            if not expiry.alive(lease, i):
                total += 2
            expiry.renew(lease, i)
        elif tok == WRITE_TOKEN and expiry.alive(lease, i):
            total += 1
    return total


class TimeLeaseBaseline:
    """TTL-lease aggregation over a tree.

    Parameters
    ----------
    tree:
        The aggregation tree.
    ttl:
        Lease lifetime in per-edge request tokens.
    op:
        Aggregation operator for combine retvals.
    """

    def __init__(self, tree: Tree, ttl: int, op: AggregationOperator = SUM) -> None:
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        self.tree = tree
        self.ttl = ttl
        self.op = op
        self.name = f"timelease[{ttl}]"

    def run(self, sequence: Sequence[Request]) -> BaselineResult:
        """Execute a sequence: per-edge TTL accounting + exact answers."""
        projections = project_all_edges(self.tree, list(sequence))
        total = sum(time_lease_edge_cost(toks, self.ttl) for toks in projections.values())
        latest: Dict[int, Any] = {}
        executed: List[Request] = []
        for q in sequence:
            if q.op == WRITE:
                latest[q.node] = q.arg
            elif q.op == COMBINE:
                acc = self.op.identity
                for node in self.tree.nodes():
                    if node in latest:
                        acc = self.op.combine(acc, self.op.lift(latest[node]))
                q.retval = acc
            executed.append(q)
        # Per-request attribution is not well defined across edges for TTL
        # leases; report the total only.
        return BaselineResult(
            total_messages=total,
            per_request=[],
            requests=executed,
        )
