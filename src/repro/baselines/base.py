"""Static-lease baseline simulator.

A *static* lease-based algorithm fixes the granted-edge set once and never
changes it.  Its message cost follows the Figure-2 per-request accounting
with the state frozen:

* leased ordered edge ``(u, v)``: each write in ``subtree(u, v)`` pushes one
  ``update`` across (cost 1); combines in ``subtree(v, u)`` are free.
* unleased ordered edge: each combine in ``subtree(v, u)`` pulls with a
  ``probe``/``response`` pair (cost 2); writes are free.

Static configurations are strictly consistent for the same reason any
lease-based algorithm is (Lemma 3.12), provided the configuration is
*legal* — i.e. realizable by the mechanism, which grants a lease only when
every other neighbor is taken (Lemma 3.2).  Legality is validated by
:func:`repro.baselines.configs.validate_lease_config`.

The simulator also tracks latest written values so examples can read actual
aggregates, not just message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.tree.topology import Tree
from repro.workloads.requests import COMBINE, WRITE, Request

Edge = Tuple[int, int]


@dataclass
class BaselineResult:
    """Outcome of running a baseline over a request sequence.

    Attributes
    ----------
    total_messages:
        Total message count (Figure-2 accounting).
    per_request:
        Message cost of each request, in order.
    requests:
        The executed requests with combine retvals filled in.
    """

    total_messages: int
    per_request: List[int]
    requests: List[Request]

    def combine_results(self) -> List[Any]:
        return [q.retval for q in self.requests if q.op == COMBINE]


class StaticLeaseBaseline:
    """Fixed-lease-configuration aggregation over a tree.

    Parameters
    ----------
    tree:
        The aggregation tree.
    leased:
        Set of ordered pairs ``(u, v)`` with a permanent lease ``u → v``.
        Use the factories in :mod:`repro.baselines.configs`.
    op:
        The aggregation operator (for combine retvals).
    name:
        Label for reports.
    validate:
        Check the Lemma-3.2 legality constraint at construction.
    """

    def __init__(
        self,
        tree: Tree,
        leased: Set[Edge],
        op: AggregationOperator = SUM,
        name: str = "static",
        validate: bool = True,
    ) -> None:
        from repro.baselines.configs import validate_lease_config

        self.tree = tree
        self.leased: FrozenSet[Edge] = frozenset(leased)
        self.op = op
        self.name = name
        for u, v in self.leased:
            if not tree.has_edge(u, v):
                raise ValueError(f"leased pair ({u}, {v}) is not a tree edge")
        if validate:
            validate_lease_config(tree, self.leased)
        # Precompute, for every node x, the per-request costs:
        #   write at x crosses every leased edge (u, v) with x on u's side;
        #   combine at x crosses every unleased edge (u, v) with x on v's
        #   side, twice.
        self._write_cost: Dict[int, int] = {}
        self._combine_cost: Dict[int, int] = {}
        sides = {(u, v): tree.subtree(u, v) for u, v in tree.directed_edges()}
        for x in tree.nodes():
            wcost = sum(1 for (u, v) in tree.directed_edges() if (u, v) in self.leased and x in sides[(u, v)])
            ccost = sum(
                2
                for (u, v) in tree.directed_edges()
                if (u, v) not in self.leased and x in sides[(v, u)]
            )
            self._write_cost[x] = wcost
            self._combine_cost[x] = ccost

    def write_cost(self, node: int) -> int:
        """Messages a write at ``node`` costs under this configuration."""
        return self._write_cost[node]

    def combine_cost(self, node: int) -> int:
        """Messages a combine at ``node`` costs under this configuration."""
        return self._combine_cost[node]

    def run(self, sequence: Sequence[Request]) -> BaselineResult:
        """Execute a sequence: count messages and answer combines exactly
        (static lease configurations are strictly consistent)."""
        latest: Dict[int, Any] = {}
        per_request: List[int] = []
        total = 0
        executed: List[Request] = []
        for q in sequence:
            if q.op == WRITE:
                latest[q.node] = q.arg
                cost = self._write_cost[q.node]
            elif q.op == COMBINE:
                acc = self.op.identity
                for node in self.tree.nodes():
                    if node in latest:
                        acc = self.op.combine(acc, self.op.lift(latest[node]))
                q.retval = acc
                cost = self._combine_cost[q.node]
            else:
                raise ValueError(f"cannot execute op {q.op!r}")
            per_request.append(cost)
            total += cost
            executed.append(q)
        return BaselineResult(total_messages=total, per_request=per_request, requests=executed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticLeaseBaseline({self.name!r}, leased={len(self.leased)} edges)"
