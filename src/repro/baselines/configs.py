"""Static lease configurations and their legality check.

Legality (Lemma 3.2): the mechanism grants ``u → v`` only when every other
neighbor of ``u`` has granted to ``u``; a static configuration must satisfy
the closure  ``(u, v) leased  ⟹  (w, u) leased for every neighbor w ≠ v``.
Intuitively a granted edge needs fresh inputs from all of ``u``'s other
subtrees, so the grants behind it must already be in place.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.tree.topology import Tree

Edge = Tuple[int, int]


def validate_lease_config(tree: Tree, leased: Iterable[Edge]) -> None:
    """Raise ``ValueError`` when the configuration violates Lemma 3.2's
    closure (and hence could never arise from the mechanism)."""
    leased_set = set(leased)
    for u, v in leased_set:
        for w in tree.neighbors(u):
            if w != v and (w, u) not in leased_set:
                raise ValueError(
                    f"illegal static lease set: ({u}, {v}) leased but ({w}, {u}) is not "
                    "(Lemma 3.2 closure)"
                )


def astrolabe_config(tree: Tree) -> Set[Edge]:
    """Every directed edge leased: writes flood to all nodes, reads are
    local — Astrolabe's strategy."""
    return set(tree.directed_edges())


def mds_config(tree: Tree) -> Set[Edge]:
    """No edge leased: reads contact every node, writes are silent —
    MDS-2's strategy."""
    return set()


def up_tree_config(tree: Tree, root: int) -> Set[Edge]:
    """All edges directed toward ``root`` leased: every write propagates to
    the root; a combine at the root is free, combines elsewhere pull their
    missing (downward) sides.  A root-maintained aggregate à la a single
    SDIMS aggregation point."""
    parents = tree.bfs_parents(root)
    return {(u, parents[u]) for u in tree.nodes() if u != root}


def up_to_level_k_config(tree: Tree, root: int, k: int) -> Set[Edge]:
    """Upward edges leased only below depth ``k``: writes propagate up
    until they reach a depth-``k`` ancestor (SDIMS "update-up-k"-like);
    reads pay to pull across the unleased top and all downward edges.

    ``k = 0`` equals :func:`up_tree_config`; ``k`` at least the tree height
    equals :func:`mds_config`.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    parents = tree.bfs_parents(root)
    depths = tree.depths(root)
    return {(u, parents[u]) for u in tree.nodes() if u != root and depths[u] > k}
