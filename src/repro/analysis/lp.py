"""Figure 5's linear program, built from the product machine and solved.

For each product transition the amortized-cost inequality

    Φ(dst) − Φ(src) + rww_cost ≤ c · opt_cost

must hold; the smallest feasible ``c`` (with Φ ≥ 0 and Φ(0,0) = 0) is the
competitive ratio the potential argument certifies.  The paper reports
``c = 5/2`` with Φ(0,0)=0, Φ(0,1)=2, Φ(0,2)=3, Φ(1,0)=5/2, Φ(1,1)=2,
Φ(1,2)=1/2; :func:`solve_competitive_lp` reproduces the value of ``c``
exactly (potentials may be any optimal vertex — the paper's values are
verified feasible separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.analysis.statemachine import State, Transition, product_transitions

#: The potential values reported in Section 4.3.
PAPER_POTENTIALS: Dict[State, float] = {
    (0, 0): 0.0,
    (0, 1): 2.0,
    (0, 2): 3.0,
    (1, 0): 2.5,
    (1, 1): 2.0,
    (1, 2): 0.5,
}

#: The competitive ratio the LP certifies.
PAPER_C = 2.5

#: Fixed variable order: six potentials then c.
STATE_ORDER: Tuple[State, ...] = ((0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2))


@dataclass(frozen=True)
class LPSolution:
    """Solved LP: the certified ratio and one optimal potential vector."""

    c: float
    potentials: Dict[State, float]
    n_constraints: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        phis = ", ".join(f"Φ{state}={val:.3g}" for state, val in sorted(self.potentials.items()))
        return f"c = {self.c:.6g} with {phis}"


def build_lp(
    transitions: Sequence[Transition] | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble ``minimize c  s.t.  A_ub x <= b_ub`` with
    ``x = [Φ(0,0), Φ(0,1), Φ(0,2), Φ(1,0), Φ(1,1), Φ(1,2), c]``.

    Returns ``(objective, A_ub, b_ub)``.  Φ(0,0) = 0 is enforced by the
    caller via an equality (see :func:`solve_competitive_lp`).
    """
    if transitions is None:
        transitions = product_transitions()
    idx = {s: i for i, s in enumerate(STATE_ORDER)}
    n_vars = len(STATE_ORDER) + 1
    rows: List[List[float]] = []
    rhs: List[float] = []
    for t in transitions:
        row = [0.0] * n_vars
        row[idx[t.dst]] += 1.0
        row[idx[t.src]] -= 1.0
        row[-1] = -float(t.opt_cost)
        rows.append(row)
        rhs.append(-float(t.rww_cost))
    objective = np.zeros(n_vars)
    objective[-1] = 1.0
    return objective, np.asarray(rows), np.asarray(rhs)


def solve_competitive_lp(
    transitions: Sequence[Transition] | None = None,
) -> LPSolution:
    """Solve the Figure-5 LP with scipy's HiGHS backend.

    Raises ``RuntimeError`` if the solver fails (the LP is feasible and
    bounded by construction, so this indicates an environment problem).
    """
    objective, a_ub, b_ub = build_lp(transitions)
    n_vars = objective.shape[0]
    # Equality Φ(0,0) = 0.
    a_eq = np.zeros((1, n_vars))
    a_eq[0, 0] = 1.0
    b_eq = np.zeros(1)
    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - solver environment issue
        raise RuntimeError(f"LP solve failed: {result.message}")
    potentials = {s: float(result.x[i]) for i, s in enumerate(STATE_ORDER)}
    return LPSolution(c=float(result.x[-1]), potentials=potentials, n_constraints=a_ub.shape[0])
