"""Empirical competitive-ratio harness.

Runs a policy's full simulation on a request sequence and compares its
message count against the offline comparators:

* the **lease OPT** lower bound (per-edge DP, Theorem 1's comparator), and
* the **nice** lower bound (per-edge epochs, Theorem 2's comparator).

:func:`ratio_sweep` fans one workload family across topologies and seeds,
producing the rows the THM1/THM2 benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.engine import AggregationSystem, PolicyFactory
from repro.core.policies import RWWPolicy
from repro.offline.edge_dp import offline_lease_lower_bound
from repro.offline.nice_bound import nice_lower_bound
from repro.ops.monoid import AggregationOperator
from repro.ops.standard import SUM
from repro.tree.topology import Tree
from repro.workloads.requests import Request, copy_sequence


@dataclass(frozen=True)
class RatioReport:
    """Competitive comparison of one run.

    ``ratio_vs_opt`` / ``ratio_vs_nice`` are ``inf`` when the corresponding
    lower bound is zero while the algorithm still sent messages, and 1.0
    when both are zero.
    """

    label: str
    algorithm_cost: int
    opt_lease_bound: int
    nice_bound: int

    @property
    def ratio_vs_opt(self) -> float:
        if self.opt_lease_bound == 0:
            return 1.0 if self.algorithm_cost == 0 else float("inf")
        return self.algorithm_cost / self.opt_lease_bound

    @property
    def ratio_vs_nice(self) -> float:
        if self.nice_bound == 0:
            return 1.0 if self.algorithm_cost == 0 else float("inf")
        return self.algorithm_cost / self.nice_bound


def competitive_ratio(
    tree: Tree,
    sequence: Sequence[Request],
    policy_factory: PolicyFactory = RWWPolicy,
    op: AggregationOperator = SUM,
    label: str = "run",
    check_invariants: bool = True,
) -> RatioReport:
    """Run ``sequence`` sequentially under ``policy_factory`` and compare
    its cost with the two offline lower bounds."""
    system = AggregationSystem(tree, op=op, policy_factory=policy_factory)
    result = system.run(copy_sequence(sequence))
    if check_invariants:
        system.check_quiescent_invariants()
    return RatioReport(
        label=label,
        algorithm_cost=result.total_messages,
        opt_lease_bound=offline_lease_lower_bound(tree, sequence),
        nice_bound=nice_lower_bound(tree, sequence),
    )


def ratio_sweep(
    topologies: Dict[str, Tree],
    workload_fn: Callable[[int, int], Sequence[Request]],
    seeds: Iterable[int],
    policy_factory: PolicyFactory = RWWPolicy,
    op: AggregationOperator = SUM,
) -> List[RatioReport]:
    """Cartesian sweep: every topology × seed.

    ``workload_fn(n_nodes, seed)`` builds the request sequence for a run.
    """
    reports: List[RatioReport] = []
    for name, tree in sorted(topologies.items()):
        for seed in seeds:
            sequence = workload_fn(tree.n, seed)
            reports.append(
                competitive_ratio(
                    tree,
                    sequence,
                    policy_factory=policy_factory,
                    op=op,
                    label=f"{name}/seed{seed}",
                )
            )
    return reports


def worst_ratio(reports: Sequence[RatioReport], vs: str = "opt") -> float:
    """Max ratio over a sweep (``vs`` = ``"opt"`` or ``"nice"``)."""
    if vs == "opt":
        return max(r.ratio_vs_opt for r in reports)
    if vs == "nice":
        return max(r.ratio_vs_nice for r in reports)
    raise ValueError(f"vs must be 'opt' or 'nice', got {vs!r}")
