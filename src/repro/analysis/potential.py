"""Potential-function verification.

Two views of the same amortized argument:

* :func:`verify_potential_on_machine` — symbolic: check
  ``Φ(dst) − Φ(src) + rww ≤ c · opt`` on **every** product transition.
* :func:`verify_potential_on_tokens` — empirical: replay one edge's token
  stream, tracking RWW's configuration and an optimal OPT schedule (from
  the per-edge DP), and check the same inequality per executed request,
  plus the telescoping conclusion
  ``C_RWW ≤ c · C_OPT + Φ(initial) − Φ(final) ≤ c · C_OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.statemachine import State, product_transitions, rww_step
from repro.offline.edge_dp import TRANSITIONS, edge_dp_cost
from repro.offline.projection import Token


@dataclass(frozen=True)
class PotentialViolation:
    """One transition breaking the amortized inequality."""

    src: State
    dst: State
    token: str
    rww_cost: int
    opt_cost: int
    slack: float  # positive = violated amount

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.src} --{self.token}--> {self.dst}: "
            f"ΔΦ + {self.rww_cost} exceeds c·{self.opt_cost} by {self.slack:.6g}"
        )


def verify_potential_on_machine(
    potentials: Dict[State, float],
    c: float,
    tol: float = 1e-9,
) -> List[PotentialViolation]:
    """Check the amortized inequality on all product transitions."""
    out: List[PotentialViolation] = []
    for t in product_transitions():
        lhs = potentials[t.dst] - potentials[t.src] + t.rww_cost
        rhs = c * t.opt_cost
        if lhs > rhs + tol:
            out.append(
                PotentialViolation(
                    src=t.src,
                    dst=t.dst,
                    token=t.token,
                    rww_cost=t.rww_cost,
                    opt_cost=t.opt_cost,
                    slack=lhs - rhs,
                )
            )
    return out


def verify_potential_on_tokens(
    tokens: Sequence[Token],
    potentials: Dict[State, float],
    c: float,
    tol: float = 1e-9,
) -> Tuple[int, int, List[PotentialViolation]]:
    """Replay one edge's stream against an optimal OPT schedule.

    Returns ``(rww_total, opt_total, violations)`` where violations list the
    requests whose amortized cost exceeded ``c`` times OPT's cost.
    """
    schedule = edge_dp_cost(tokens).schedule
    x, y = 0, 0
    rww_total = opt_total = 0
    violations: List[PotentialViolation] = []
    for tok, x2 in zip(tokens, schedule):
        y2, rww_cost = rww_step(y, tok)
        opt_cost = None
        for cand_state, cand_cost in TRANSITIONS[(x, tok)]:
            if cand_state == x2:
                opt_cost = cand_cost
                break
        if opt_cost is None:  # pragma: no cover - DP schedule is always legal
            raise RuntimeError(f"DP schedule made an illegal move {x}->{x2} on {tok}")
        lhs = potentials[(x2, y2)] - potentials[(x, y)] + rww_cost
        rhs = c * opt_cost
        if lhs > rhs + tol:
            violations.append(
                PotentialViolation(
                    src=(x, y),
                    dst=(x2, y2),
                    token=tok,
                    rww_cost=rww_cost,
                    opt_cost=opt_cost,
                    slack=lhs - rhs,
                )
            )
        rww_total += rww_cost
        opt_total += opt_cost
        x, y = x2, y2
    return rww_total, opt_total, violations
