"""Competitive-analysis machinery.

* :mod:`repro.analysis.statemachine` — Figure 4's product state machine
  ``S(x, y)`` (OPT lease state × RWW configuration), generated from first
  principles out of the Figure-2 cost table.
* :mod:`repro.analysis.lp` — Figure 5's linear program built from that
  machine and solved with ``scipy.optimize.linprog``; reproduces
  ``c = 5/2`` and the paper's potential values.
* :mod:`repro.analysis.potential` — verifies a potential function against
  every transition (the amortized inequality), both symbolically on the
  machine and empirically on executed traces.
* :mod:`repro.analysis.competitive` — the empirical competitive-ratio
  harness comparing any policy against the per-edge DP OPT and the nice
  bound across workload/topology sweeps.
"""

from repro.analysis.statemachine import (
    PAPER_CONSTRAINT_ROWS,
    State,
    Transition,
    product_transitions,
    reachable_states,
    rww_step,
    opt_choices,
)
from repro.analysis.lp import LPSolution, build_lp, solve_competitive_lp, PAPER_POTENTIALS
from repro.analysis.potential import (
    verify_potential_on_machine,
    verify_potential_on_tokens,
)
from repro.analysis.competitive import (
    RatioReport,
    competitive_ratio,
    ratio_sweep,
)
from repro.analysis.expected import (
    edge_token_probabilities,
    expected_cost_per_request,
    predict_total,
    stationary_edge_cost,
)
from repro.analysis.games import (
    PolicyAutomaton,
    ab_automaton,
    always_lease_automaton,
    build_product_graph,
    exact_competitive_ratio,
    never_lease_automaton,
    rww_automaton,
    ttl_automaton,
)

__all__ = [
    "State",
    "Transition",
    "rww_step",
    "opt_choices",
    "product_transitions",
    "reachable_states",
    "PAPER_CONSTRAINT_ROWS",
    "LPSolution",
    "build_lp",
    "solve_competitive_lp",
    "PAPER_POTENTIALS",
    "verify_potential_on_machine",
    "verify_potential_on_tokens",
    "RatioReport",
    "competitive_ratio",
    "ratio_sweep",
    "PolicyAutomaton",
    "ab_automaton",
    "rww_automaton",
    "always_lease_automaton",
    "never_lease_automaton",
    "ttl_automaton",
    "build_product_graph",
    "exact_competitive_ratio",
    "edge_token_probabilities",
    "stationary_edge_cost",
    "expected_cost_per_request",
    "predict_total",
]
