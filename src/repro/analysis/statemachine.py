"""Figure 4's product state machine, derived from the Figure-2 cost table.

A state ``S(x, y)`` pairs OPT's lease state ``x ∈ {0, 1}`` with RWW's
configuration ``y ∈ {0, 1, 2}`` (``F_RWW``: 0 = no lease / two writes ago,
1 = lease with one write against it, 2 = fresh lease).  For each request
token (R = combine in ``σ(u, v)``, W = write in ``σ(u, v)``, N = noop /
write in ``σ(v, u)``) RWW moves deterministically while OPT chooses among
the Figure-2 transitions — drawn as nondeterministic arrows in the paper's
figure.

:data:`PAPER_CONSTRAINT_ROWS` transcribes Figure 5's 21 inequality rows so
tests can assert our generated machine reproduces them exactly (the paper
omits the six trivially-satisfied ``0 ≤ 0`` self-loops and merges the two
identical (0,0) rows; we generate all transitions and normalize).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.offline.edge_dp import TRANSITIONS
from repro.offline.projection import NOOP, READ, WRITE_TOKEN

#: (x, y): OPT lease state × RWW configuration.
State = Tuple[int, int]

TOKENS = (READ, WRITE_TOKEN, NOOP)


@dataclass(frozen=True)
class Transition:
    """One product transition.

    Attributes
    ----------
    src, dst:
        Product states before/after executing the token.
    token:
        R, W, or N.
    rww_cost:
        RWW's messages for this request on this edge (Figure 2).
    opt_cost:
        OPT's messages under the chosen OPT transition.
    """

    src: State
    dst: State
    token: str
    rww_cost: int
    opt_cost: int


def rww_step(y: int, token: str) -> Tuple[int, int]:
    """RWW's deterministic configuration step: ``(new_y, cost)``.

    Mirrors :func:`repro.offline.edge_dp.rww_edge_cost`'s per-token rule.
    """
    if token == READ:
        return 2, (2 if y == 0 else 0)
    if token == WRITE_TOKEN:
        if y == 2:
            return 1, 1
        if y == 1:
            return 0, 2
        return 0, 0
    if token == NOOP:
        return y, 0
    raise ValueError(f"unknown token {token!r}")


def opt_choices(x: int, token: str) -> List[Tuple[int, int]]:
    """OPT's allowed ``(new_x, cost)`` choices — the Figure-2 rows."""
    return list(TRANSITIONS[(x, token)])


def product_transitions() -> List[Transition]:
    """Every transition of the Figure-4 product machine (27 in total:
    21 non-trivial + 6 zero-cost self-loops the paper's figure omits)."""
    out: List[Transition] = []
    for x in (0, 1):
        for y in (0, 1, 2):
            for token in TOKENS:
                y2, rww_cost = rww_step(y, token)
                for x2, opt_cost in opt_choices(x, token):
                    out.append(
                        Transition(
                            src=(x, y),
                            dst=(x2, y2),
                            token=token,
                            rww_cost=rww_cost,
                            opt_cost=opt_cost,
                        )
                    )
    return out


def reachable_states(initial: State = (0, 0)) -> Set[State]:
    """States reachable from the initial quiescent configuration."""
    trans = product_transitions()
    seen: Set[State] = {initial}
    frontier = [initial]
    while frontier:
        s = frontier.pop()
        for t in trans:
            if t.src == s and t.dst not in seen:
                seen.add(t.dst)
                frontier.append(t.dst)
    return seen


def nontrivial_transitions() -> List[Transition]:
    """Transitions that yield a non-vacuous LP row (drop zero-cost
    self-loops, which give ``0 ≤ 0``), deduplicated."""
    rows: List[Transition] = []
    seen: Set[Tuple] = set()
    for t in product_transitions():
        if t.src == t.dst and t.rww_cost == 0 and t.opt_cost == 0:
            continue
        key = (t.src, t.dst, t.rww_cost, t.opt_cost)
        if key in seen:
            continue
        seen.add(key)
        rows.append(t)
    return rows


#: Figure 5 verbatim: rows (dst_state, src_state, rww_cost, opt_cost)
#: meaning  Φ(dst) − Φ(src) + rww_cost ≤ opt_cost · c.
PAPER_CONSTRAINT_ROWS: List[Tuple[State, State, int, int]] = [
    ((0, 2), (0, 0), 2, 2),
    ((1, 2), (0, 0), 2, 2),
    ((0, 0), (0, 0), 0, 0),
    ((1, 2), (1, 0), 2, 0),
    ((0, 0), (1, 0), 0, 2),
    ((1, 0), (1, 0), 0, 1),
    ((0, 0), (1, 0), 0, 1),
    ((0, 2), (0, 2), 0, 2),
    ((1, 2), (0, 2), 0, 2),
    ((0, 1), (0, 2), 1, 0),
    ((1, 2), (1, 2), 0, 0),
    ((0, 1), (1, 2), 1, 2),
    ((1, 1), (1, 2), 1, 1),
    ((0, 2), (1, 2), 0, 1),
    ((0, 2), (0, 1), 0, 2),
    ((1, 2), (0, 1), 0, 2),
    ((0, 0), (0, 1), 2, 0),
    ((1, 2), (1, 1), 0, 0),
    ((0, 0), (1, 1), 2, 2),
    ((1, 0), (1, 1), 2, 1),
    ((0, 1), (1, 1), 0, 1),
]


def generated_constraint_rows() -> List[Tuple[State, State, int, int]]:
    """Our machine's non-trivial rows in the paper's (dst, src, rww, opt)
    format, deduplicated.

    Figure 5's cosmetic choices differ slightly (it keeps two trivially
    satisfied ``0 ≤ 0`` self-loop rows and merges the identical (0,0) W and
    N rows); tests compare both sides after dropping trivial self-loops.
    """
    rows: Set[Tuple[State, State, int, int]] = set()
    for t in nontrivial_transitions():
        rows.add((t.dst, t.src, t.rww_cost, t.opt_cost))
    return sorted(rows)
