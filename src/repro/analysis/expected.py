"""Analytic performance model: expected steady-state cost under random load.

For a uniform workload (combine with probability ``r``, requester uniform
over nodes), each ordered edge sees an i.i.d. token stream whose
probabilities follow from the subtree sizes:

    P[R] = r · |subtree(v, u)| / n        (combine on the far side)
    P[W] = (1 − r) · |subtree(u, v)| / n  (write on the near side)
    P[N] = (1 − r) · |subtree(v, u)| / n  (write on the far side)

and with the remaining probability the request is a combine on the near
side — invisible to the edge.  A deterministic per-edge policy automaton
under i.i.d. tokens is a finite Markov chain, so its long-run expected
message cost per request is the stationary expectation — computable in
closed form with one linear solve per edge.

:func:`expected_cost_per_request` sums this over all ordered edges,
yielding an O(n·|states|³) analytic prediction of what the simulator
measures over thousands of requests.  The tests validate the prediction
against long simulations to within a few percent — a statistical
cross-check of both the model and the simulator, and a planning tool
(capacity estimates without simulation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.games import PolicyAutomaton, rww_automaton
from repro.offline.projection import NOOP, READ, WRITE_TOKEN
from repro.tree.topology import Tree


def edge_token_probabilities(tree: Tree, u: int, v: int, read_ratio: float) -> Dict[str, float]:
    """P[R], P[W], P[N] for ordered edge (u, v) under a uniform workload
    with the given combine probability (the rest of the mass is the
    invisible near-side combine)."""
    if not (0.0 <= read_ratio <= 1.0):
        raise ValueError(f"read_ratio must be in [0, 1], got {read_ratio}")
    n = tree.n
    near = len(tree.subtree(u, v))
    far = n - near
    return {
        READ: read_ratio * far / n,
        WRITE_TOKEN: (1.0 - read_ratio) * near / n,
        NOOP: (1.0 - read_ratio) * far / n,
    }


def stationary_edge_cost(
    automaton: PolicyAutomaton, probs: Dict[str, float]
) -> float:
    """Long-run expected cost per *request* of the automaton under i.i.d.
    tokens with the given probabilities (mass missing from ``probs`` is a
    no-op stay)."""
    states = automaton.reachable_states()
    index = {s: i for i, s in enumerate(states)}
    k = len(states)
    P = np.zeros((k, k))
    c = np.zeros(k)  # expected cost paid from each state per request
    stay = 1.0 - sum(probs.values())
    if stay < -1e-12:
        raise ValueError("token probabilities exceed 1")
    for s in states:
        i = index[s]
        P[i, i] += max(stay, 0.0)
        for tok, p in probs.items():
            if p <= 0:
                continue
            nxt, cost = automaton.step(s, tok)
            P[i, index[nxt]] += p
            c[i] += p * cost
    # Stationary distribution: solve pi (P - I) = 0 with sum(pi) = 1.
    a = np.vstack([P.T - np.eye(k), np.ones((1, k))])
    b = np.zeros(k + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    return float(pi @ c)


def expected_cost_per_request(
    tree: Tree,
    read_ratio: float,
    automaton: PolicyAutomaton = None,
) -> float:
    """Expected steady-state messages per request for the whole tree under
    a uniform workload (default automaton: RWW)."""
    auto = automaton if automaton is not None else rww_automaton()
    total = 0.0
    for u, v in tree.directed_edges():
        probs = edge_token_probabilities(tree, u, v, read_ratio)
        total += stationary_edge_cost(auto, probs)
    return total


def predict_total(
    tree: Tree,
    read_ratio: float,
    length: int,
    automaton: PolicyAutomaton = None,
) -> float:
    """Predicted total messages for a ``length``-request uniform workload
    (steady-state approximation; ignores the O(n) warm-up transient)."""
    return expected_cost_per_request(tree, read_ratio, automaton) * length


# ------------------------------------------------- stochastic policies
def random_break_chain(p: float):
    """The per-edge Markov kernel of
    :class:`~repro.core.randomized.RandomBreakPolicy`:
    ``step_dist(state, token) -> [(next_state, cost, probability), ...]``.

    Two states: ``"U"`` (no lease) and ``"L"`` (leased); a write under the
    lease breaks with probability ``p`` (update + release, cost 2) and is
    tolerated otherwise (update, cost 1).
    """
    if not (0.0 < p <= 1.0):
        raise ValueError(f"p must be in (0, 1], got {p}")

    def step_dist(state, token):
        if state == "U":
            if token == READ:
                return [("L", 2, 1.0)]
            return [("U", 0, 1.0)]
        if token == READ:
            return [("L", 0, 1.0)]
        if token == WRITE_TOKEN:
            return [("L", 1, 1.0 - p), ("U", 2, p)]
        return [("L", 0, 1.0)]

    return ["U", "L"], step_dist


def stationary_stochastic_cost(states, step_dist, probs: Dict[str, float]) -> float:
    """Like :func:`stationary_edge_cost` but for *stochastic* policies:
    ``step_dist(state, token)`` yields (next, cost, probability) branches."""
    index = {s: i for i, s in enumerate(states)}
    k = len(states)
    P = np.zeros((k, k))
    c = np.zeros(k)
    stay = 1.0 - sum(probs.values())
    for s in states:
        i = index[s]
        P[i, i] += max(stay, 0.0)
        for tok, p_tok in probs.items():
            if p_tok <= 0:
                continue
            for nxt, cost, p_branch in step_dist(s, tok):
                P[i, index[nxt]] += p_tok * p_branch
                c[i] += p_tok * p_branch * cost
    a = np.vstack([P.T - np.eye(k), np.ones((1, k))])
    b = np.zeros(k + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    return float(pi @ c)


def expected_random_break_cost(tree: Tree, read_ratio: float, p: float) -> float:
    """Expected steady-state messages per request of the random-break
    policy over the whole tree, under the per-edge-independence
    approximation.

    Exact on the 2-node tree.  On larger trees it is an **upper bound**:
    the mechanism defers coin flips on relay edges (interior nodes forward
    updates without deciding) and a single head-of-chain break cascades
    down the whole lease chain, so real executions break *less often per
    edge* than independent per-edge coins would (measured: ~10–20% lower
    on a 5-node path).  Deterministic policies have no such coupling —
    every edge counts the same writes — which is why
    :func:`expected_cost_per_request` is near-exact for them.
    """
    states, step_dist = random_break_chain(p)
    total = 0.0
    for u, v in tree.directed_edges():
        probs = edge_token_probabilities(tree, u, v, read_ratio)
        total += stationary_stochastic_cost(states, step_dist, probs)
    return total
