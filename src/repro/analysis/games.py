"""Exact competitive ratios via maximum-ratio-cycle games.

The paper proves RWW's 5/2 bound with a hand-built potential function and
*sketches* the matching lower bound (Theorem 3) with a fixed adversary
pattern.  This module goes further: it computes the **exact** competitive
ratio of any deterministic per-edge lease policy, over **all** adversarial
request sequences, by reduction to a maximum ratio cycle problem.

Reduction.  A per-edge policy is a finite deterministic automaton over the
token alphabet {R, W, N} with per-transition message costs (Figure 2).  The
offline comparator is the nondeterministic 2-state OPT automaton of
:mod:`repro.offline.edge_dp`.  For an infinite token sequence σ,

    ratio(σ) = limsup alg(σ) / opt(σ),   opt = offline minimum.

Because ``−λ · min_path(opt)`` equals ``max_path(−λ · opt)`` for λ ≥ 0, the
sup over σ of ratio(σ) equals the **maximum ratio cycle** of the product
graph whose nodes pair a policy state with an OPT state and whose edges
carry ``(alg_cost, opt_cost)`` — both players maximize.  Cycles with zero
OPT cost but positive policy cost witness an unbounded ratio (that is how
never-lease and always-lease fail).

The value is computed exactly (a :class:`fractions.Fraction`): a float
Lawler binary search brackets it, ``limit_denominator`` proposes the unique
candidate rational (cycle ratios have denominator at most 2·|V|), and exact
Bellman–Ford certificates confirm "no positive cycle at λ*" and "positive
cycle just below λ*".

Findings this enables (see the EXT-GAME benchmark):

* RWW's exact competitive ratio is **5/2** — Theorem 1's bound is tight
  against *every* adversary, not only ADV(1, 2).
* Every (a, b)-automaton has exact ratio ≥ 5/2 with equality only at
  (1, 2) — Theorem 3 verified exactly, closing the gap left by the
  proof-sketch adversary (which under-forces (2, 4); see EXPERIMENTS.md).
* TTL-lease automata and the always/never extremes have **unbounded**
  ratios — request-pattern-driven breaking is essential, not incidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.offline.edge_dp import TRANSITIONS
from repro.offline.projection import NOOP, READ, WRITE_TOKEN

TOKENS = (READ, WRITE_TOKEN, NOOP)

PolicyState = Hashable


@dataclass(frozen=True)
class PolicyAutomaton:
    """A deterministic per-edge policy automaton.

    Attributes
    ----------
    name:
        Label for reports.
    initial:
        Start state (the no-lease quiescent configuration).
    step:
        ``step(state, token) -> (next_state, message_cost)``.
    """

    name: str
    initial: PolicyState
    step: Callable[[PolicyState, str], Tuple[PolicyState, int]]

    def reachable_states(self) -> List[PolicyState]:
        seen: Set[PolicyState] = {self.initial}
        frontier = [self.initial]
        while frontier:
            s = frontier.pop()
            for tok in TOKENS:
                nxt, _ = self.step(s, tok)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return sorted(seen, key=repr)

    def run(self, tokens: Sequence[str]) -> int:
        """Total cost of processing ``tokens`` from the initial state."""
        state, total = self.initial, 0
        for tok in tokens:
            state, cost = self.step(state, tok)
            total += cost
        return total


# --------------------------------------------------------------- automata
def ab_automaton(a: int, b: int) -> PolicyAutomaton:
    """The (a, b)-algorithm's per-edge automaton.

    States: ``("U", cc)`` with combine-streak ``cc`` in 0..a-1 (no lease),
    or ``("L", lt)`` with lease timer ``lt`` in 1..b.  Mirrors
    :class:`repro.core.policies.ABPolicy` on one edge direction (noops —
    writes on the reader side — are invisible to the automaton, exactly as
    they generate no messages toward the granter in the mechanism).
    """
    if a < 1 or b < 1:
        raise ValueError(f"need a >= 1 and b >= 1, got a={a}, b={b}")

    def step(state, token):
        kind, counter = state
        if kind == "U":
            if token == READ:
                if counter + 1 >= a:
                    return ("L", b), 2
                return ("U", counter + 1), 2
            if token == WRITE_TOKEN:
                return ("U", 0), 0
            return state, 0  # NOOP invisible
        # Leased.
        if token == READ:
            return ("L", b), 0
        if token == WRITE_TOKEN:
            if counter - 1 <= 0:
                return ("U", 0), 2  # update + release
            return ("L", counter - 1), 1
        return state, 0  # NOOP invisible

    return PolicyAutomaton(name=f"({a},{b})", initial=("U", 0), step=step)


def rww_automaton() -> PolicyAutomaton:
    """RWW = the (1, 2)-automaton."""
    auto = ab_automaton(1, 2)
    return PolicyAutomaton(name="RWW", initial=auto.initial, step=auto.step)


def always_lease_automaton() -> PolicyAutomaton:
    """Grant on first combine, never break."""

    def step(state, token):
        if state == "U":
            if token == READ:
                return "L", 2
            return "U", 0
        if token == WRITE_TOKEN:
            return "L", 1
        return "L", 0

    return PolicyAutomaton(name="always-lease", initial="U", step=step)


def never_lease_automaton() -> PolicyAutomaton:
    """Never grant: every combine pays the pull."""

    def step(state, token):
        return "U", 2 if token == READ else 0

    return PolicyAutomaton(name="never-lease", initial="U", step=step)


def ttl_automaton(ttl: int) -> PolicyAutomaton:
    """Time-based lease: reads renew a ``ttl``-token lease; every token ages
    it; expiry is silent (cost 0) — :mod:`repro.baselines.timelease`."""
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")

    def step(state, token):
        remaining = state
        if token == READ:
            return ttl, (0 if remaining > 0 else 2)
        cost = 1 if (token == WRITE_TOKEN and remaining > 0) else 0
        return max(remaining - 1, 0), cost

    return PolicyAutomaton(name=f"ttl[{ttl}]", initial=0, step=step)


# --------------------------------------------------------- product graph
#: Product edge: (src_node, dst_node, alg_cost, opt_cost, token).
ProductEdge = Tuple[int, int, int, int, str]


def build_product_graph(
    automaton: PolicyAutomaton,
) -> Tuple[List[Tuple[PolicyState, int]], List[ProductEdge]]:
    """Nodes (policy state × OPT state) reachable from the initial pair,
    and all (token, OPT-choice) edges between them."""
    initial = (automaton.initial, 0)
    index: Dict[Tuple[PolicyState, int], int] = {initial: 0}
    nodes: List[Tuple[PolicyState, int]] = [initial]
    edges: List[ProductEdge] = []
    frontier = [initial]
    while frontier:
        (p_state, o_state) = frontier.pop()
        src = index[(p_state, o_state)]
        for tok in TOKENS:
            p_next, alg_cost = automaton.step(p_state, tok)
            for o_next, opt_cost in TRANSITIONS[(o_state, tok)]:
                key = (p_next, o_next)
                if key not in index:
                    index[key] = len(nodes)
                    nodes.append(key)
                    frontier.append(key)
                edges.append((src, index[key], alg_cost, opt_cost, tok))
    return nodes, edges


# ------------------------------------------------------- cycle machinery
def _has_positive_cycle(
    n: int, edges: Sequence[Tuple[int, int, Fraction]]
) -> bool:
    """Bellman–Ford (longest-path form): any cycle with positive total
    weight reachable in the graph?  Exact arithmetic."""
    dist = [Fraction(0)] * n  # all nodes as sources simultaneously
    for _ in range(n):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            return False
    # One more relaxation round: any further improvement = positive cycle.
    for u, v, w in edges:
        if dist[u] + w > dist[v]:
            return True
    return False


def _weighted(edges: Sequence[ProductEdge], lam: Fraction):
    return [(u, v, Fraction(alg) - lam * Fraction(opt)) for u, v, alg, opt, _ in edges]


def exact_competitive_ratio(
    automaton: PolicyAutomaton,
    max_denominator: Optional[int] = None,
) -> Optional[Fraction]:
    """The exact competitive ratio of ``automaton`` against offline OPT,
    over all adversarial token sequences.

    Returns a :class:`~fractions.Fraction`, or ``None`` when the ratio is
    unbounded (a zero-OPT-cost cycle with positive policy cost exists).
    """
    nodes, edges = build_product_graph(automaton)
    n = len(nodes)

    # Unbounded check: positive-alg cycle using only opt-cost-0 edges.
    free_edges = [(u, v, Fraction(alg)) for u, v, alg, opt, _ in edges if opt == 0]
    if _has_positive_cycle(n, free_edges):
        return None

    max_den = max_denominator if max_denominator is not None else 2 * n
    # Distinct cycle ratios with denominators <= max_den differ by more
    # than 1 / max_den^2; bracket to below half that gap.
    gap = Fraction(1, 2 * max_den * max_den)

    lo, hi = 0.0, float(sum(alg for _, _, alg, _, _ in edges)) + 1.0
    while hi - lo > float(gap) / 4:
        mid = (lo + hi) / 2
        if _has_positive_cycle(n, _weighted(edges, Fraction(mid).limit_denominator(10**12))):
            lo = mid
        else:
            hi = mid
    candidate = Fraction((lo + hi) / 2).limit_denominator(max_den)

    # Certify: no positive cycle at the candidate, but one strictly below.
    if _has_positive_cycle(n, _weighted(edges, candidate)):
        raise RuntimeError(
            f"certification failed above for {automaton.name}: λ={candidate}"
        )
    if candidate > 0 and not _has_positive_cycle(n, _weighted(edges, candidate - gap)):
        raise RuntimeError(
            f"certification failed below for {automaton.name}: λ={candidate}"
        )
    return candidate


def _orbit_cost(automaton: PolicyAutomaton, start: PolicyState, cycle: Sequence[str]):
    """(period_cost, period_length_in_cycles) of the orbit the automaton
    enters when the token cycle repeats forever, starting from ``start``."""
    seen: Dict[PolicyState, Tuple[int, int]] = {}
    state, total, k = start, 0, 0
    while state not in seen:
        seen[state] = (k, total)
        for tok in cycle:
            state, cost = automaton.step(state, tok)
            total += cost
        k += 1
    k0, total0 = seen[state]
    return total - total0, k - k0


def _opt_cyclic_cost(cycle: Sequence[str]) -> int:
    """OPT's asymptotic per-period cost on a repeated token cycle: the
    cheapest cyclic path in the 2-state automaton over one period."""
    from math import inf

    best = inf
    for start in (0, 1):
        # dp[s] = min cost from `start` after processing the period, ending
        # in state s; require returning to `start` for a cyclic path.
        dp = {start: 0}
        for tok in cycle:
            ndp: Dict[int, float] = {}
            for s, c in dp.items():
                for s2, cost in TRANSITIONS[(s, tok)]:
                    cand = c + cost
                    if cand < ndp.get(s2, inf):
                        ndp[s2] = cand
            dp = ndp
        if start in dp:
            best = min(best, dp[start])
    return int(best)


def best_response_cycle(
    automaton: PolicyAutomaton,
    max_length: int = 8,
) -> Tuple[Tuple[str, ...], Fraction]:
    """A brute-force witness: the best adversarial token *cycle* up to the
    given length, with its forced asymptotic ratio.  Exponential —
    test/diagnostic use only.

    For each candidate cycle the policy's cost is its worst periodic-orbit
    cost over all reachable start states (the adversary may use a transient
    prefix to steer the automaton there), and OPT's cost is its cheapest
    cyclic path over one period.  Returns ``Fraction(-1)`` as an unbounded
    sentinel when some cycle costs OPT nothing but the policy something.
    """
    from itertools import product as iproduct

    states = automaton.reachable_states()
    best_cycle: Tuple[str, ...] = ()
    best_ratio = Fraction(0)
    for length in range(1, max_length + 1):
        for cycle in iproduct(TOKENS, repeat=length):
            alg = max(
                Fraction(*_orbit_cost(automaton, s, cycle)) for s in states
            )
            opt = _opt_cyclic_cost(cycle)
            if opt == 0:
                if alg > 0:
                    return cycle, Fraction(-1)  # sentinel: unbounded
                continue
            ratio = alg / opt
            if ratio > best_ratio:
                best_ratio = ratio
                best_cycle = cycle
    return best_cycle, best_ratio
