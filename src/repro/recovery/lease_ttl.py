"""The single lease-TTL expiry implementation (two clock domains, one law).

Classic time-based leases (Gray & Cheriton; PaxosLease-style timers)
expire *silently*: a lease renewed at time ``t`` is valid through
``t + ttl`` and lapses for free afterwards — no release message, so a
dead holder's leases cannot wedge the grantor forever.

:class:`LeaseExpiry` captures exactly that law over an abstract monotone
clock, so both users share one implementation:

* the :class:`~repro.recovery.manager.RecoveryManager` runs it over the
  simulator's **virtual clock** (``now`` is ``sim.now``) to expire leases
  whose peer has gone silent;
* the :class:`~repro.baselines.timelease.TimeLeaseBaseline` runs it over
  the **token clock** of a per-edge request projection (``now`` is the
  token index) for the offline cost accounting.

The boundary is inclusive: a lease renewed at ``t`` is still alive at
``t + ttl`` exactly (matching the token-clock semantics, where a lease
with ``ttl`` remaining tokens survives ``ttl`` decrements).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

__all__ = ["LeaseExpiry"]


class LeaseExpiry:
    """TTL bookkeeping for any set of lease keys over a monotone clock.

    Parameters
    ----------
    ttl:
        Lease lifetime in clock units; must be positive.
    """

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        self._expires: Dict[Hashable, float] = {}

    def renew(self, key: Hashable, now: float) -> None:
        """Refresh ``key``: it stays alive through ``now + ttl`` inclusive."""
        self._expires[key] = now + self.ttl

    def alive(self, key: Hashable, now: float) -> bool:
        """Whether ``key`` holds a live lease at ``now`` (never-renewed
        keys are dead)."""
        expires = self._expires.get(key)
        return expires is not None and expires >= now

    def expired(self, key: Hashable, now: float) -> bool:
        return not self.alive(key, now)

    def expires_at(self, key: Hashable) -> Optional[float]:
        """The key's current expiry instant, or ``None`` if never renewed."""
        return self._expires.get(key)

    def drop(self, key: Hashable) -> None:
        """Forget ``key`` entirely (it reads as dead until renewed)."""
        self._expires.pop(key, None)

    def clear(self) -> None:
        self._expires.clear()
