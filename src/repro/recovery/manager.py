"""The :class:`RecoveryManager`: crash-recovery orchestration for a runtime.

Responsibilities (see DESIGN.md, "Fault model and crash recovery"):

* **periodic checkpoints** — every ``checkpoint_interval`` of virtual time
  each live node's volatile state is captured
  (:class:`~repro.recovery.checkpoint.Checkpoint`) and a ``checkpoint``
  trace event emitted;
* **crash handling** — on a scheduled ``crash`` fault the node loses its
  volatile state (open requests fail, rounds die) via
  :meth:`NodeRuntime.crash`;
* **recovery** — on ``recover`` the last checkpoint is restored *first*,
  then :meth:`NodeRuntime.recover` reopens the wire, resets the reliable
  layer's conversations, and runs the lease-reconciliation round;
* **lease TTLs** — with ``lease_ttl`` set, per-edge lease timers expire a
  silent peer's leases (:meth:`LeaseNode.expire_taken` /
  ``expire_granted``) so a dead holder never wedges a combine; timers are
  renewed by any traffic received from the peer (PaxosLease-style: leases
  must be refreshed to stay alive — this deliberately trades the paper's
  message optimality for liveness under crashes);
* **metrics** — ``crashes_total``, ``recoveries_total``,
  ``checkpoints_total``, ``lost_messages_total``,
  ``lease_expirations_total`` counters and a ``time_to_recover``
  histogram.

Periodic work is scheduled as a bounded timeline up to ``horizon`` (by
default derived from the fault plan's last scheduled event), never as a
free-running timer — the simulator must still drain to quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.messages import Probe
from repro.recovery.checkpoint import Checkpoint, CheckpointStore
from repro.recovery.lease_ttl import LeaseExpiry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["RecoveryConfig", "RecoveryManager"]

#: Buckets for the time-to-recover histogram (virtual time units).
RECOVERY_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500)


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the crash-recovery subsystem.

    Attributes
    ----------
    checkpoint_interval:
        Virtual time between periodic checkpoints of every live node.
    lease_ttl:
        When set, enable TTL lease expiry: a lease whose peer has been
        silent for ``lease_ttl`` time units expires locally (synthesized
        revoke/release).  ``None`` disables the sweeps.
    sweep_interval:
        Virtual time between TTL sweeps (default: ``lease_ttl / 2``).
    horizon:
        End of the periodic-work timeline.  Default: the fault plan's last
        scheduled event plus one TTL (or one checkpoint interval), so the
        simulator still drains to quiescence after the last fault.
    expiry_grace:
        Extra slack before the *granter* side expires (default:
        ``lease_ttl / 2``).  Lease traffic is one-directional (grants and
        updates flow granter -> holder), so with symmetric TTLs the granter
        would time out first — the unsafe order, leaving the holder serving
        a voided lease.  The grace makes the holder expire first; its
        synthesized Release then clears the granter side through the
        normal protocol whenever the edge is connected, and the granter's
        own (grace-delayed) expiry is the fallback for a dead or
        partitioned holder.
    reestablish_probes:
        Whether recovery ends with a probe round re-pulling fresh subtree
        views (recommended; off only for protocol experiments).
    """

    checkpoint_interval: float = 10.0
    lease_ttl: Optional[float] = None
    sweep_interval: Optional[float] = None
    horizon: Optional[float] = None
    expiry_grace: Optional[float] = None
    reestablish_probes: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive when set")
        if self.sweep_interval is not None and self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive when set")
        if self.expiry_grace is not None and self.expiry_grace < 0:
            raise ValueError("expiry_grace must be non-negative when set")


class RecoveryManager:
    """Wires checkpointing, crash/recover handling and lease TTLs into a
    :class:`~repro.core.runtime.NodeRuntime`.

    Built by the runtime itself when its ``recovery`` parameter is set (the
    runtime's scheduled-fault listener then dispatches crash/recover events
    here), or attachable manually for direct-API use (dynamic engines call
    :meth:`handle_crash` / :meth:`handle_recover` / :meth:`checkpoint_now`
    themselves).
    """

    def __init__(self, runtime: "NodeRuntime", config: RecoveryConfig) -> None:
        self.runtime = runtime
        self.config = config
        self.store = CheckpointStore()
        if config.lease_ttl is not None and not runtime.trace.enabled:
            # TTL renewal rides the trace subscription (recv/deliver events
            # refresh the peer's timers); without tracing every lease would
            # silently expire at the first sweep.
            raise ValueError("lease_ttl requires a runtime with trace_enabled")
        self.expiry = (
            LeaseExpiry(config.lease_ttl) if config.lease_ttl is not None else None
        )
        # Stuck-round detection state: when a sweep first observed each
        # open probe round (keyed ``(node, root)``), and the last liveness
        # re-probe per directed edge (paces re-probes at one per TTL).
        # Edge traffic is no proxy for round health — wire-level ACKs and
        # retransmits keep flowing on a wedged conversation — so the sweep
        # watches round *age* instead.
        self._round_seen: Dict[Any, float] = {}
        self._reprobed: Dict[Any, float] = {}
        self.grace = (
            config.expiry_grace
            if config.expiry_grace is not None
            else (config.lease_ttl / 2 if config.lease_ttl is not None else 0.0)
        )
        #: Crash instants of currently-down nodes.
        self.crash_times: Dict[int, float] = {}
        #: Completed time-to-recover samples, in order.
        self.recovery_durations: List[float] = []
        runtime.trace.subscribe(self._on_trace)
        if self.expiry is not None:
            now = runtime.now
            for u, v in runtime.tree.directed_edges():
                self.expiry.renew((u, v), now)
        if runtime.sim is not None:
            self._schedule_timeline()

    # ------------------------------------------------------------ scheduling
    def _horizon(self) -> float:
        if self.config.horizon is not None:
            return self.config.horizon
        plan = getattr(self.runtime.config, "plan", None)
        events = getattr(plan, "events", ()) if plan is not None else ()
        if not events:
            return 0.0
        slack = (
            self.config.lease_ttl + self.grace
            if self.config.lease_ttl is not None
            else self.config.checkpoint_interval
        )
        # Extra sweep room past the last scheduled fault: one sweep period
        # so the granter's grace-delayed expiry still gets a tick, plus a
        # full TTL so a probe round wedged by the *last* fault ages into
        # the stuck-round re-probe (detection needs first-seen + TTL).
        if self.expiry is not None:
            slack += self.config.lease_ttl
            slack += self.config.sweep_interval or (self.config.lease_ttl / 2)
        return max(ev.time for ev in events) + slack

    def _schedule_timeline(self) -> None:
        sim = self.runtime.sim
        assert sim is not None
        horizon = self._horizon()
        t = self.config.checkpoint_interval
        while t <= horizon:
            sim.schedule_at(t, self._checkpoint_tick, label="checkpoint tick")
            t += self.config.checkpoint_interval
        if self.expiry is not None:
            step = self.config.sweep_interval or (self.config.lease_ttl / 2)
            t = step
            while t <= horizon:
                sim.schedule_at(t, self._sweep_tick, label="lease-ttl sweep")
                t += step

    # ----------------------------------------------------------- checkpoints
    def _checkpoint_tick(self) -> None:
        prof = self.runtime.profiler
        if prof is not None and prof.enabled:
            with prof.phase("recovery.checkpoint"):
                self.checkpoint_now()
            return
        self.checkpoint_now()

    def checkpoint_now(self, node_id: Optional[int] = None) -> List[Checkpoint]:
        """Checkpoint one live node (or all of them); returns the captures."""
        now = self.runtime.now
        targets = (
            [node_id] if node_id is not None else sorted(self.runtime.nodes)
        )
        out: List[Checkpoint] = []
        for nid in targets:
            if nid in self.runtime.crashed:
                continue
            cp = Checkpoint.capture(
                self.runtime.nodes[nid], self.store.next_seq(nid), now
            )
            self.store.save(cp)
            self.runtime.trace.emit(now, "checkpoint", nid, seq=cp.seq)
            self.runtime.metrics.counter("checkpoints_total", node=nid).inc()
            out.append(cp)
        return out

    # --------------------------------------------------------- crash/recover
    def handle_crash(self, node_id: int) -> None:
        """Node-level crash consequences (wire is already black-holed)."""
        if node_id in self.runtime.crashed:
            return
        self.crash_times[node_id] = self.runtime.now
        self.runtime.metrics.counter("crashes_total", node=node_id).inc()
        self.runtime.crash(node_id, emit_trace=False)

    def handle_recover(self, node_id: int) -> None:
        """Restore the last checkpoint, then reopen and reconcile."""
        if node_id not in self.runtime.crashed:
            return
        node = self.runtime.nodes[node_id]
        cp = self.store.latest(node_id)
        if cp is not None:
            cp.restore(node)
        self.runtime.recover(
            node_id,
            emit_trace=False,
            reestablish=self.config.reestablish_probes,
        )
        now = self.runtime.now
        self.runtime.metrics.counter("recoveries_total", node=node_id).inc()
        t0 = self.crash_times.pop(node_id, None)
        if t0 is not None:
            ttr = now - t0
            self.recovery_durations.append(ttr)
            self.runtime.metrics.histogram(
                "time_to_recover", buckets=RECOVERY_BUCKETS
            ).observe(ttr)
        if self.expiry is not None:
            for v in node.nbrs:
                self.expiry.renew((node_id, v), now)
                self.expiry.renew((v, node_id), now)

    # ------------------------------------------------------------- lease TTL
    def _sweep_tick(self) -> None:
        """Expire leases whose peer has been silent longer than the TTL."""
        if self.expiry is None:
            return
        prof = self.runtime.profiler
        if prof is not None and prof.enabled:
            with prof.phase("recovery.sweep"):
                self._sweep_body()
            return
        self._sweep_body()

    def _sweep_body(self) -> None:
        assert self.expiry is not None
        now = self.runtime.now
        for nid in sorted(self.runtime.nodes):
            if nid in self.runtime.crashed:
                continue
            node = self.runtime.nodes[nid]
            for v in list(node.nbrs):
                if node.taken.get(v, False) and not self.expiry.alive(
                    (nid, v), now
                ):
                    node.expire_taken(v)
                    self.runtime.metrics.counter(
                        "lease_expirations_total", node=nid, side="taken"
                    ).inc()
                # Granter side waits out the grace so the holder always
                # expires first (see RecoveryConfig.expiry_grace).
                if node.granted.get(v, False) and not self.expiry.alive(
                    (nid, v), now - self.grace
                ):
                    node.expire_granted(v)
                    self.runtime.metrics.counter(
                        "lease_expirations_total", node=nid, side="granted"
                    ).inc()
            # Liveness for stuck probe rounds: a round whose probe (or
            # response) died on a partitioned or crashed edge stays open
            # forever — and wire traffic is no tell (ACKs and retransmits
            # keep flowing on a wedged conversation).  A healthy round
            # completes in a few RTTs, so any round still open a full TTL
            # after a sweep first saw it is stuck: re-probe its awaited
            # peers.  Re-probes pace at one per TTL per edge; duplicate
            # responses are idempotent (T4 discards the peer from every
            # open round on the first one).
            for root in sorted(node.pndg):
                first = self._round_seen.setdefault((nid, root), now)
                if now - first < self.config.lease_ttl:
                    continue
                for w in sorted(node.snt.get(root, ())):
                    if w in self.runtime.crashed:
                        continue  # reconcile heals this edge on recovery
                    last = self._reprobed.get((nid, w))
                    if last is not None and now - last < self.config.lease_ttl:
                        continue
                    self._reprobed[(nid, w)] = now
                    self.runtime.trace.emit(now, "reprobe", nid, dst=w, root=root)
                    node.send(w, Probe())
        # Rounds that closed since the last sweep age out of the table.
        self._round_seen = {
            key: t0
            for key, t0 in self._round_seen.items()
            if key[0] in self.runtime.nodes
            and key[1] in self.runtime.nodes[key[0]].pndg
        }

    # -------------------------------------------------------------- telemetry
    def _on_trace(self, ev: Any) -> None:
        if ev.kind == "delivery_failed":
            self.runtime.metrics.counter(
                "lost_messages_total", msg=ev.detail.get("msg", "?")
            ).inc()
            return
        if self.expiry is None:
            return
        # Traffic in either direction renews the edge's lease timers:
        # receives are evidence the peer was alive, and sends matter
        # because lease traffic is one-directional (a granter streaming
        # updates would otherwise never refresh its own granted side).
        if ev.kind in ("recv", "deliver"):
            src = ev.detail.get("src")
            if src is not None and src >= 0:
                self.expiry.renew((ev.node, src), ev.time)
        elif ev.kind == "send":
            dst = ev.detail.get("dst")
            if dst is not None and dst >= 0:
                self.expiry.renew((ev.node, dst), ev.time)
        elif ev.kind == "lease_acquired":
            self.expiry.renew((ev.node, ev.detail["source"]), ev.time)
        elif ev.kind == "lease_granted":
            self.expiry.renew((ev.node, ev.detail["grantee"]), ev.time)
