"""Restorable checkpoints of a node's volatile protocol state.

The crash model splits :class:`~repro.core.mechanism.LeaseNode` state into
two durability classes:

* **durable** — ``val``, ``upcntr``, the ghost logs: the write-ahead part.
  A crash never loses these (every write is durable before it completes),
  so checkpoints neither capture nor restore them.
* **volatile** — the lease tables (``taken``/``granted``), the cached
  subtree views (``aval``), the ``uaw`` windows, ``sntupdates``, and the
  policy's bookkeeping.  A crash loses everything since the last
  checkpoint; recovery rolls these back to the checkpointed copies and
  then *distrusts* them — the reconciliation round
  (:meth:`LeaseNode.recover_reconcile`) voids the restored leases and
  re-pulls fresh views, because peers may have moved on while the node was
  down.  A recovery that skips that round and trusts the checkpointed
  lease tables serves stale reads — exactly the seeded mutant the model
  checker catches (see ``verify explore``).

Each checkpoint carries a deterministic :attr:`Checkpoint.digest` over its
canonical form (:func:`repro.util.canon.canonical_value`), so equality of
checkpoint content is testable without comparing mutable containers, and
the serialized form is stable across runs.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.util.canon import canonical_value

__all__ = ["Checkpoint", "CheckpointStore"]


def _digest(payload: Any) -> str:
    return hashlib.sha256(repr(canonical_value(payload)).encode()).hexdigest()[:16]


@dataclass
class Checkpoint:
    """One node's volatile state at a checkpoint instant.

    Attributes
    ----------
    node:
        The node id the checkpoint belongs to.
    seq:
        Monotone per-node checkpoint sequence number.
    time:
        Virtual time of the capture.
    taken / granted / aval / uaw / sntupdates / policy_state:
        Deep copies of the volatile protocol state (see module doc).
    digest:
        Canonical content digest (filled by :meth:`capture`).
    """

    node: int
    seq: int
    time: float
    taken: Dict[int, bool] = field(default_factory=dict)
    granted: Dict[int, bool] = field(default_factory=dict)
    aval: Dict[int, Any] = field(default_factory=dict)
    uaw: Dict[int, set] = field(default_factory=dict)
    sntupdates: list = field(default_factory=list)
    policy_state: Dict[str, Any] = field(default_factory=dict)
    digest: str = ""

    @classmethod
    def capture(cls, node: Any, seq: int, time: float) -> "Checkpoint":
        """Snapshot the volatile state of ``node`` (a ``LeaseNode``)."""
        cp = cls(
            node=node.id,
            seq=seq,
            time=time,
            taken=dict(node.taken),
            granted=dict(node.granted),
            aval=copy.deepcopy(node.aval),
            uaw={v: set(s) for v, s in node.uaw.items()},
            sntupdates=list(node.sntupdates),
            policy_state=copy.deepcopy(
                {k: v for k, v in vars(node.policy).items() if not k.startswith("_")}
            ),
        )
        cp.digest = _digest(
            (cp.taken, cp.granted, cp.aval, cp.uaw, cp.sntupdates, cp.policy_state)
        )
        return cp

    def restore(self, node: Any) -> None:
        """Write the checkpointed volatile state back into ``node``.

        Only neighbors the node *currently* has are restored — the
        topology may have changed while the node was down (dynamic trees);
        state for departed neighbors is dropped, new neighbors keep their
        fresh attach-time state.  Durable fields are untouched.
        """
        current = set(node.nbrs)
        node.taken.update({v: f for v, f in self.taken.items() if v in current})
        node.granted.update({v: f for v, f in self.granted.items() if v in current})
        node.aval.update(
            {v: copy.deepcopy(x) for v, x in self.aval.items() if v in current}
        )
        node.uaw.update({v: set(s) for v, s in self.uaw.items() if v in current})
        node.sntupdates = [t for t in self.sntupdates if t[0] in current]
        for k, v in copy.deepcopy(self.policy_state).items():
            setattr(node.policy, k, v)


class CheckpointStore:
    """Latest-checkpoint-per-node storage with per-node sequence numbers."""

    def __init__(self) -> None:
        self._latest: Dict[int, Checkpoint] = {}
        self._seq: Dict[int, int] = {}

    def next_seq(self, node: int) -> int:
        """The sequence number the node's next checkpoint should carry."""
        return self._seq.get(node, -1) + 1

    def save(self, cp: Checkpoint) -> None:
        self._latest[cp.node] = cp
        self._seq[cp.node] = cp.seq

    def latest(self, node: int) -> Optional[Checkpoint]:
        return self._latest.get(node)

    def drop(self, node: int) -> None:
        """Forget a node's checkpoints (dynamic leave)."""
        self._latest.pop(node, None)
        self._seq.pop(node, None)

    def __len__(self) -> int:
        return len(self._latest)
