"""Crash-recovery subsystem: checkpoints, lease TTLs, and the manager.

The paper proves its guarantees under permanently-live nodes; this package
makes node death survivable.  Three pieces:

* :mod:`repro.recovery.checkpoint` — periodic, restorable snapshots of
  each node's *volatile* protocol state (lease tables, cached subtree
  views, policy bookkeeping) with a canonical digest;
* :mod:`repro.recovery.lease_ttl` — the single TTL-expiry implementation
  shared by the recovery manager's virtual-clock lease timers and the
  token-clock :class:`~repro.baselines.timelease.TimeLeaseBaseline`;
* :mod:`repro.recovery.manager` — the :class:`RecoveryManager` wiring it
  into the runtime: it listens for scheduled crash/recover faults, loses
  volatile state at crash, restores the last checkpoint and runs the
  release/probe reconciliation round at recovery, expires a dead holder's
  leases by TTL, and reports recovery metrics (crash/recovery counters,
  lost messages, a time-to-recover histogram).

See DESIGN.md ("Fault model and crash recovery") for the protocol
rationale and the recovery sequence diagram.
"""

from repro.recovery.checkpoint import Checkpoint, CheckpointStore
from repro.recovery.lease_ttl import LeaseExpiry
from repro.recovery.manager import RecoveryConfig, RecoveryManager

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "LeaseExpiry",
    "RecoveryConfig",
    "RecoveryManager",
]
