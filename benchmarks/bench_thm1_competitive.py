"""THM1 — RWW is 5/2-competitive vs the optimal lease-based algorithm.

Sweeps topology families × workload mixes × seeds, reporting RWW's
simulated message count against the per-edge DP lower bound on the optimal
offline lease-based algorithm.  The paper's claim: every ratio ≤ 5/2, with
the adversarial workload approaching it.
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem, two_node_tree
from repro.analysis import competitive_ratio
from repro.offline import offline_lease_lower_bound
from repro.tree.generators import standard_topologies
from repro.util import format_table
from repro.workloads import adv_sequence, uniform_workload, zipf_workload
from repro.workloads.requests import copy_sequence

LENGTH = 400
SEEDS = (0, 1, 2)


def run_sweep():
    rows = []
    topologies = standard_topologies(15, seed=7)
    for name, tree in sorted(topologies.items()):
        for read_ratio in (0.2, 0.5, 0.8):
            for seed in SEEDS:
                wl = uniform_workload(tree.n, LENGTH, read_ratio=read_ratio, seed=seed)
                rep = competitive_ratio(tree, wl, label=f"{name}")
                rows.append(
                    (name, tree.n, f"uniform r={read_ratio}", seed,
                     rep.algorithm_cost, rep.opt_lease_bound, rep.ratio_vs_opt)
                )
        wl = zipf_workload(tree.n, LENGTH, exponent=1.2, seed=5)
        rep = competitive_ratio(tree, wl)
        rows.append((name, tree.n, "zipf e=1.2", 5,
                     rep.algorithm_cost, rep.opt_lease_bound, rep.ratio_vs_opt))
    # The matching adversarial workload: ratio -> 5/2 exactly.
    tree = two_node_tree()
    wl = adv_sequence(1, 2, rounds=LENGTH)
    rep = competitive_ratio(tree, wl)
    rows.append(("pair(adv)", 2, "ADV(1,2)", 0,
                 rep.algorithm_cost, rep.opt_lease_bound, rep.ratio_vs_opt))
    return rows


@pytest.mark.benchmark(group="thm1")
def test_thm1_competitive_sweep(benchmark, emit):
    tree = standard_topologies(15, seed=7)["binary"]
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=0)

    def one_run():
        return AggregationSystem(tree).run(copy_sequence(wl)).total_messages

    benchmark(one_run)
    rows = run_sweep()
    worst = max(r[-1] for r in rows)
    assert worst <= 2.5 + 1e-9
    adv_row = rows[-1]
    assert adv_row[-1] == pytest.approx(2.5, rel=0.01)
    text = format_table(
        ["topology", "n", "workload", "seed", "C_RWW", "C_OPT(lease)", "ratio"],
        rows,
        title=(
            "Theorem 1 — RWW vs optimal offline lease-based algorithm "
            f"(bound: 5/2; worst observed: {worst:.3f}):"
        ),
    )
    emit("thm1_competitive", text)
