"""THM2 — RWW is 5-competitive vs any nice (strictly consistent) algorithm.

Compares RWW against the epoch-counting lower bound on NOPT (Theorem 2's
proof object).  The bound is asymptotic — each ordered edge's final partial
epoch adds O(1) uncounted cost — so the sweep reports both the raw ratio on
long sequences (should settle ≤ 5) and the additive-form check
``C_RWW ≤ 5·nice + 5·2(n−1)`` which must hold on every run.
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem
from repro.offline import nice_lower_bound
from repro.tree.generators import standard_topologies
from repro.util import format_table
from repro.workloads import uniform_workload
from repro.workloads.requests import copy_sequence

LENGTH = 2000


def run_sweep():
    rows = []
    for name, tree in sorted(standard_topologies(15, seed=3).items()):
        for read_ratio in (0.3, 0.5, 0.7):
            wl = uniform_workload(tree.n, LENGTH, read_ratio=read_ratio, seed=11)
            cost = AggregationSystem(tree).run(copy_sequence(wl)).total_messages
            nice = nice_lower_bound(tree, wl)
            slack = 5 * 2 * (tree.n - 1)
            ratio = cost / nice if nice else float("inf")
            rows.append(
                (name, tree.n, read_ratio, cost, nice, ratio, cost <= 5 * nice + slack)
            )
    return rows


@pytest.mark.benchmark(group="thm2")
def test_thm2_nice_sweep(benchmark, emit):
    tree = standard_topologies(15, seed=3)["path"]
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=11)
    benchmark(lambda: nice_lower_bound(tree, wl))
    rows = run_sweep()
    assert all(r[-1] for r in rows), "additive Theorem-2 bound violated"
    worst = max(r[5] for r in rows)
    text = format_table(
        ["topology", "n", "read ratio", "C_RWW", "nice bound", "ratio", "<=5·nice+slack"],
        rows,
        title=(
            "Theorem 2 — RWW vs nice-algorithm lower bound "
            f"(asymptotic bound: 5; worst raw ratio at length {LENGTH}: {worst:.3f}):"
        ),
    )
    emit("thm2_nice", text)
