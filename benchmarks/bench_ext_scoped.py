"""EXT-SCOPED — scoped (subtree) reads vs global combines (extension).

SDIMS-style partial reads: a scoped combine aggregates one neighbor's
subtree only, served from the cached ``aval`` under a lease (0 messages) or
by a probe wave confined to that subtree.  This bench tabulates the cold
cost against the subtree size and the warm cost (always 0), next to the
global combine's full-tree pull — the point being that read cost scales
with the *queried* region, not the tree.
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem, balanced_kary_tree
from repro.util import format_table
from repro.workloads import combine
from repro.workloads.requests import scoped_combine

TREE = balanced_kary_tree(3, 3)  # 40 nodes, root 0 with children 1..3


def run_table():
    rows = []
    # Global combine at the root, cold.
    system = AggregationSystem(TREE)
    before = system.stats.total
    system.execute(combine(0))
    rows.append(("global combine @ root", TREE.n - 1, system.stats.total - before, 0))
    # Scoped reads of each depth's subtree, cold then warm.
    for toward, label in [(1, "child subtree (13 nodes)"),
                          (4, "grandchild subtree (4 nodes)")]:
        system = AggregationSystem(TREE)
        node = TREE.parent_towards(0, toward)
        before = system.stats.total
        system.execute(scoped_combine(node, toward=toward))
        cold = system.stats.total - before
        before = system.stats.total
        system.execute(scoped_combine(node, toward=toward))
        warm = system.stats.total - before
        rows.append((f"scoped read of {label}", len(TREE.subtree(toward, node)), cold, warm))
    return rows


@pytest.mark.benchmark(group="ext-scoped")
def test_scoped_read_costs(benchmark, emit, emit_json):
    def one_cold_scoped():
        system = AggregationSystem(TREE)
        system.execute(scoped_combine(0, toward=1))
        return system.stats.total

    benchmark(one_cold_scoped)
    rows = run_table()
    # Cold scoped cost = 2 messages per subtree member (probe+response per
    # edge into the region, including the entry edge); warm cost = 0.
    for label, size, cold, warm in rows[1:]:
        assert cold == 2 * size
        assert warm == 0
    assert rows[0][2] == 2 * (TREE.n - 1)
    text = format_table(
        ["operation", "queried nodes", "cold messages", "warm messages"],
        rows,
        title="EXT-SCOPED — read cost scales with the queried region (40-node 3-ary tree):",
    )
    emit("ext_scoped", text)
    emit_json("ext_scoped", {
        "benchmark": "ext_scoped",
        "tree_nodes": TREE.n,
        "rows": [
            {"operation": op, "queried_nodes": size,
             "cold_messages": cold, "warm_messages": warm}
            for op, size, cold, warm in rows
        ],
    })
