"""THM4 — any lease-based algorithm is causally consistent when concurrent.

Runs heavily overlapping workloads (Poisson arrivals over a random-latency
FIFO network) under three lease policies, checks every execution with the
Section-5 causal-consistency checker, and reports the concurrency level
(mean in-flight requests) alongside the verdicts.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AlwaysLeasePolicy,
    ConcurrentAggregationSystem,
    NeverLeasePolicy,
    RWWPolicy,
    ScheduledRequest,
    random_tree,
)
from repro.consistency import check_causal_consistency
from repro.sim.channel import uniform_latency
from repro.util import format_table
from repro.workloads import uniform_workload
from repro.workloads.requests import copy_sequence

POLICIES = [("RWW", RWWPolicy), ("AlwaysLease", AlwaysLeasePolicy), ("NeverLease", NeverLeasePolicy)]


def make_schedule(workload, seed, rate):
    rng = random.Random(seed)
    t, out = 0.0, []
    for q in copy_sequence(workload):
        t += rng.expovariate(rate)
        out.append(ScheduledRequest(time=t, request=q))
    return out


def run_one(policy_factory, tree, wl, seed):
    system = ConcurrentAggregationSystem(
        tree,
        policy_factory=policy_factory,
        latency=uniform_latency(0.5, 4.0),
        seed=seed,
        ghost=True,
    )
    result = system.run(make_schedule(wl, seed + 1, rate=2.0))
    violations = check_causal_consistency(result.ghost_logs(), result.requests, tree.n)
    return result, violations


def run_sweep():
    rows = []
    for name, policy in POLICIES:
        for seed in (0, 1, 2):
            tree = random_tree(8, seed + 10)
            wl = uniform_workload(tree.n, 120, read_ratio=0.5, seed=seed)
            result, violations = run_one(policy, tree, wl, seed)
            spans = [
                (q.initiated_at, q.completed_at)
                for q in result.requests
                if q.op == "combine"
            ]
            overlapping = sum(
                1
                for i, (s1, e1) in enumerate(spans)
                for s2, _ in spans[i + 1 :]
                if s2 < e1
            )
            rows.append(
                (name, seed, tree.n, len(result.requests), overlapping,
                 result.total_messages, len(violations))
            )
    return rows


@pytest.mark.benchmark(group="thm4")
def test_thm4_causal_consistency(benchmark, emit):
    tree = random_tree(8, 10)
    wl = uniform_workload(tree.n, 120, read_ratio=0.5, seed=0)
    benchmark(lambda: run_one(RWWPolicy, tree, wl, 0))
    rows = run_sweep()
    assert all(r[-1] == 0 for r in rows), "causal violations observed"
    assert any(r[4] > 0 for r in rows), "workload produced no overlap — not concurrent"
    text = format_table(
        ["policy", "seed", "n", "requests", "overlapping combines", "messages", "violations"],
        rows,
        title="Theorem 4 — causal consistency of concurrent executions (0 violations expected):",
    )
    emit("thm4_causal", text)
