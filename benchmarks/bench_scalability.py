"""SCALE — message and wall-time scaling with tree size.

Not a paper table (the paper has no testbed), but the natural systems
question a release must answer: how do RWW's message counts and the
simulator's throughput scale with n across topology families?  Message
counts per request should grow with the pull/push span (diameter for paths,
O(1)-ish amortized for stars), and the simulator should stay comfortably
laptop-scale at hundreds of nodes.
"""

from __future__ import annotations

import time

import pytest

from repro import AggregationSystem, balanced_kary_tree, path_tree, star_tree
from repro.util import format_table
from repro.workloads import uniform_workload
from repro.workloads.requests import copy_sequence

SIZES = (7, 15, 31, 63, 127, 255)
#: Extra sizes for the families whose message span actually grows with n
#: (path: diameter; binary: depth).  A 1023-leaf star adds no scaling
#: signal over 255 — its pull/push span is O(1) — so it is excluded.
LARGE_SIZES = (511, 1023)
LENGTH = 300


def sizes_for(kind: str):
    return SIZES + (LARGE_SIZES if kind in ("path", "binary") else ())


def topo(kind, n):
    if kind == "path":
        return path_tree(n)
    if kind == "star":
        return star_tree(n)
    if kind == "binary":
        import math

        depth = int(math.log2(n + 1)) - 1
        return balanced_kary_tree(2, depth)
    raise ValueError(kind)


def run_scaling():
    rows = []
    for kind in ("path", "star", "binary"):
        for n in sizes_for(kind):
            tree = topo(kind, n)
            wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=41)
            system = AggregationSystem(tree)
            t0 = time.perf_counter()
            result = system.run(copy_sequence(wl))
            dt = time.perf_counter() - t0
            rows.append(
                (kind, tree.n, result.total_messages,
                 result.total_messages / LENGTH, LENGTH / dt)
            )
    return rows


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n", [15, 63, 255])
def test_scalability_run(benchmark, n):
    tree = topo("binary", n)
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=41)
    benchmark(lambda: AggregationSystem(tree).run(copy_sequence(wl)).total_messages)


@pytest.mark.benchmark(group="scale")
def test_scalability_table(benchmark, emit, emit_json):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    # Sanity: message cost grows with n for every family.
    for kind in ("path", "star", "binary"):
        series = [r[2] for r in rows if r[0] == kind]
        assert series == sorted(series)
    text = format_table(
        ["topology", "n", "messages", "msgs/request", "requests/sec"],
        rows,
        title=f"SCALE — RWW message and throughput scaling ({LENGTH} requests, r=0.5):",
    )
    emit("scalability", text)
    emit_json("scalability", {
        "benchmark": "scalability",
        "length": LENGTH,
        "rows": [
            {"topology": r[0], "n": r[1], "messages": r[2],
             "messages_per_request": round(r[3], 4),
             "requests_per_sec": round(r[4], 1)}
            for r in rows
        ],
    })
