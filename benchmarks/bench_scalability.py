"""SCALE — message and wall-time scaling with tree size, per backend.

Not a paper table (the paper has no testbed), but the natural systems
question a release must answer: how do RWW's message counts and the
simulator's throughput scale with n across topology families?  Message
counts per request should grow with the pull/push span (diameter for paths,
O(1)-ish amortized for stars), and the simulator should stay comfortably
laptop-scale at hundreds of nodes.

Since the execution-backend seam, every size runs on both backends where
feasible: the ``reference`` object-graph runtime up to n=1023 and the
``flat`` vectorized engine everywhere — including the 2047/4095 sizes the
reference backend is too slow to sweep.  Message counts must be identical
wherever both ran (the equivalence contract); the flat backend must beat
the reference by >=10x at the n=1023 path size (the seam's headline
number, also recorded by ``benchmarks/trajectory.py``).
"""

from __future__ import annotations

import time

import pytest

from repro import AggregationSystem, balanced_kary_tree, path_tree, star_tree
from repro.util import format_table
from repro.workloads import uniform_workload
from repro.workloads.requests import copy_sequence

SIZES = (7, 15, 31, 63, 127, 255)
#: Extra sizes for the families whose message span actually grows with n
#: (path: diameter; binary: depth).  A 1023-leaf star adds no scaling
#: signal over 255 — its pull/push span is O(1) — so it is excluded.
LARGE_SIZES = (511, 1023)
#: Flat-backend-only sizes: the reference runtime takes tens of seconds
#: per 300-request run here, the flat engine stays sub-second.
XLARGE_SIZES = (2047, 4095)
LENGTH = 300
#: The seam's acceptance bar: flat over reference at the n=1023 path size.
FLAT_SPEEDUP_FLOOR = 10.0


def sizes_for(kind: str):
    return SIZES + (LARGE_SIZES if kind in ("path", "binary") else ())


def backends_for(kind: str, n: int):
    """Which backends sweep this cell: reference up to n=1023, flat always."""
    return ("reference", "flat") if n <= 1023 else ("flat",)


def topo(kind, n):
    if kind == "path":
        return path_tree(n)
    if kind == "star":
        return star_tree(n)
    if kind == "binary":
        import math

        depth = int(math.log2(n + 1)) - 1
        return balanced_kary_tree(2, depth)
    raise ValueError(kind)


def run_cell(kind: str, n: int, backend: str):
    tree = topo(kind, n)
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=41)
    system = AggregationSystem(tree, backend=backend)
    t0 = time.perf_counter()
    result = system.run(copy_sequence(wl))
    dt = time.perf_counter() - t0
    return (kind, tree.n, backend, result.total_messages,
            result.total_messages / LENGTH, LENGTH / dt)


def run_scaling():
    rows = []
    for kind in ("path", "star", "binary"):
        for n in sizes_for(kind) + (XLARGE_SIZES if kind in ("path", "binary") else ()):
            for backend in backends_for(kind, n):
                rows.append(run_cell(kind, n, backend))
    return rows


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n", [15, 63, 255])
@pytest.mark.parametrize("backend", ["reference", "flat"])
def test_scalability_run(benchmark, n, backend):
    tree = topo("binary", n)
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=41)
    benchmark(
        lambda: AggregationSystem(tree, backend=backend)
        .run(copy_sequence(wl))
        .total_messages
    )


@pytest.mark.benchmark(group="scale")
def test_flat_speedup_at_path_1023(benchmark):
    """The seam's acceptance number: flat >= 10x reference throughput on
    the 300-request n=1023 path workload.

    Best-of-3 interleaved runs per backend: single cold runs on a shared
    box jitter by +-30%, which is enough to produce false failures at a
    10x floor when the true ratio sits near 11x.  Interleaving keeps both
    backends exposed to the same background load.
    """
    def measure():
        refs, flats = [], []
        for _ in range(3):
            refs.append(run_cell("path", 1023, "reference"))
            flats.append(run_cell("path", 1023, "flat"))
        return max(refs, key=lambda r: r[5]), max(flats, key=lambda r: r[5])

    ref, flat = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ref[3] == flat[3], "backends disagree on message count"
    speedup = flat[5] / ref[5]
    assert speedup >= FLAT_SPEEDUP_FLOOR, (
        f"flat backend only {speedup:.1f}x reference at n=1023 path "
        f"(floor {FLAT_SPEEDUP_FLOOR:.0f}x)"
    )


@pytest.mark.benchmark(group="scale")
def test_scalability_table(benchmark, emit, emit_json):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    for kind in ("path", "star", "binary"):
        for backend in ("reference", "flat"):
            series = [r[3] for r in rows if r[0] == kind and r[2] == backend]
            # Sanity: message cost grows with n for every family/backend.
            assert series == sorted(series)
    # Equivalence: identical message counts wherever both backends ran.
    by_cell = {}
    for kind, n, backend, messages, _, _ in rows:
        by_cell.setdefault((kind, n), {})[backend] = messages
    for (kind, n), cells in by_cell.items():
        if len(cells) == 2:
            assert cells["reference"] == cells["flat"], (kind, n, cells)
    text = format_table(
        ["topology", "n", "backend", "messages", "msgs/request", "requests/sec"],
        rows,
        title=f"SCALE — RWW message and throughput scaling ({LENGTH} requests, r=0.5):",
    )
    emit("scalability", text)
    emit_json("scalability", {
        "benchmark": "scalability",
        "length": LENGTH,
        "rows": [
            {"topology": r[0], "n": r[1], "backend": r[2], "messages": r[3],
             "messages_per_request": round(r[4], 4),
             "requests_per_sec": round(r[5], 1)}
            for r in rows
        ],
    })
