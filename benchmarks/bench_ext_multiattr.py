"""EXT-MULTI — multi-attribute aggregation and message batching (extension).

SDIMS (the paper's ancestor system) manages many attributes over one tree.
This bench measures what per-attribute adaptive leasing plus physical
message batching buys: cold multi-attribute queries batch perfectly (one
probe wave serves k attributes), warm mixed workloads batch partially
(lease states diverge per attribute), and per-attribute policies let a
read-hot attribute stay pushed while a write-hot one stays pulled.
"""

from __future__ import annotations

import random

import pytest

from repro import AVERAGE, COUNT, MAX, SUM, binary_tree
from repro.core.multiattr import MultiAttributeSystem
from repro.util import format_table

ATTRS = {"load": AVERAGE, "peak": MAX, "alive": COUNT, "total": SUM}


def run_day(system, tree, seed, steps=300):
    rng = random.Random(seed)
    unb = bat = 0
    for _ in range(steps):
        node = rng.randrange(tree.n)
        if rng.random() < 0.5:
            r = system.query(node)
        else:
            r = system.write_many(
                node, {name: rng.uniform(0, 100) for name in ATTRS}
            )
        unb += r.unbatched_messages
        bat += r.batched_messages
    return unb, bat


def run_sweep():
    tree = binary_tree(3)
    rows = []
    for k in (1, 2, 3, 4):
        names = list(ATTRS)[:k]
        system = MultiAttributeSystem(tree, {n: ATTRS[n] for n in names})
        report = system.query(0)  # cold multi-query
        rows.append(
            (f"cold query, {k} attr(s)", report.unbatched_messages,
             report.batched_messages,
             report.unbatched_messages / max(report.batched_messages, 1))
        )
    tree = binary_tree(3)
    system = MultiAttributeSystem(tree, ATTRS)
    unb, bat = run_day(system, tree, seed=5)
    rows.append(("uniform day, 4 attrs", unb, bat, unb / max(bat, 1)))
    system.check_invariants()

    # Divergent access patterns: every operation touches a random subset of
    # the attributes, so per-attribute lease states drift apart and probe
    # waves stop coinciding — batching saves less than the homogeneous case.
    system = MultiAttributeSystem(tree, ATTRS)
    rng = random.Random(9)
    unb = bat = 0
    names = list(ATTRS)
    for _ in range(300):
        node = rng.randrange(tree.n)
        subset = rng.sample(names, rng.randint(1, len(names)))
        if rng.random() < 0.5:
            r = system.query(node, subset)
        else:
            r = system.write_many(node, {n: rng.uniform(0, 100) for n in subset})
        unb += r.unbatched_messages
        bat += r.batched_messages
    rows.append(("divergent day, 4 attrs", unb, bat, unb / max(bat, 1)))
    system.check_invariants()
    return rows


@pytest.mark.benchmark(group="ext-multi")
def test_multiattr_batching(benchmark, emit, emit_json):
    tree = binary_tree(3)

    def one_day():
        system = MultiAttributeSystem(tree, ATTRS)
        return run_day(system, tree, seed=5, steps=100)

    benchmark(one_day)
    rows = run_sweep()
    cold = {r[0]: r for r in rows}
    # Cold queries batch perfectly: k attributes for the price of one.
    assert cold["cold query, 4 attr(s)"][3] == pytest.approx(4.0)
    assert cold["cold query, 1 attr(s)"][3] == pytest.approx(1.0)
    # Homogeneous access patterns batch perfectly all day...
    uniform_day = cold["uniform day, 4 attrs"]
    assert uniform_day[3] == pytest.approx(4.0, rel=0.05)
    # ...divergent patterns batch less, but still save meaningfully.
    divergent = cold["divergent day, 4 attrs"]
    assert 1.2 <= divergent[3] < uniform_day[3]
    text = format_table(
        ["operation", "unbatched msgs", "batched msgs", "savings factor"],
        rows,
        title="EXT-MULTI — message batching across attributes (15-node binary tree):",
    )
    emit("ext_multiattr", text)
    emit_json("ext_multiattr", {
        "benchmark": "ext_multiattr",
        "rows": [
            {"operation": op, "unbatched_messages": unb,
             "batched_messages": bat, "savings_factor": round(sav, 6)}
            for op, unb, bat, sav in rows
        ],
    })
