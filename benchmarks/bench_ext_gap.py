"""EXT-GAP — how tight is the per-edge relaxation? (extension)

The paper's OPT comparator relaxes Lemma 3.2's closure (a grant needs all
upstream grants).  This bench computes the *exact* closure-constrained
offline optimum by DP over legal lease configurations on small trees and
compares it with the per-edge bound.

Measured finding: the gap is **1.000 on every sampled instance** — the
relaxation is empirically exact.  The structural reason: for a directed
edge (u, v) and any upstream edge (w, u) it requires, σ(w, u)'s write set
is a subset of σ(u, v)'s while its combine set is a superset, so whenever
leasing (u, v) pays, leasing (w, u) pays at least as much and the closure
never binds.  (Property-tested across seeds in tests/test_global_dp.py.)
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem, path_tree, star_tree, two_node_tree
from repro.offline.global_dp import relaxation_gap
from repro.util import format_table
from repro.workloads import adv_sequence, uniform_workload
from repro.workloads.requests import copy_sequence

TOPOLOGIES = {
    "pair": two_node_tree(),
    "path3": path_tree(3),
    "path4": path_tree(4),
    "path5": path_tree(5),
    "star4": star_tree(4),
    "star5": star_tree(5),
}


def run_table():
    rows = []
    for name, tree in TOPOLOGIES.items():
        for read_ratio in (0.3, 0.5, 0.7):
            wl = uniform_workload(tree.n, 25, read_ratio=read_ratio, seed=13)
            relaxed, exact, gap = relaxation_gap(tree, wl)
            rww = AggregationSystem(tree).run(copy_sequence(wl)).total_messages
            rows.append((name, read_ratio, relaxed, exact, gap, rww / exact))
    wl = adv_sequence(1, 2, rounds=10)
    relaxed, exact, gap = relaxation_gap(two_node_tree(), wl)
    rww = AggregationSystem(two_node_tree()).run(copy_sequence(wl)).total_messages
    rows.append(("pair/ADV", "-", relaxed, exact, gap, rww / exact))
    return rows


@pytest.mark.benchmark(group="ext-gap")
def test_relaxation_gap(benchmark, emit, emit_json):
    tree = path_tree(5)
    wl = uniform_workload(tree.n, 25, read_ratio=0.5, seed=13)
    benchmark(lambda: relaxation_gap(tree, wl))
    rows = run_table()
    assert all(r[4] == 1.0 for r in rows), "a binding closure instance appeared"
    assert all(r[5] <= 2.5 + 1e-9 for r in rows)
    text = format_table(
        ["topology", "read ratio", "per-edge bound", "constrained OPT",
         "gap", "RWW / OPT"],
        rows,
        title=(
            "EXT-GAP — per-edge relaxation vs exact closure-constrained "
            "offline OPT (gap 1.0 everywhere: the relaxation is tight):"
        ),
    )
    emit("ext_gap", text)
    emit_json("ext_gap", {
        "benchmark": "ext_gap",
        "rows": [
            {"topology": name, "read_ratio": rr if rr != "-" else None,
             "per_edge_bound": relaxed, "constrained_opt": exact,
             "gap": gap, "rww_over_opt": round(ratio, 6)}
            for name, rr, relaxed, exact, gap, ratio in rows
        ],
    })
