"""Benchmark trajectory: longitudinal throughput tracking across commits.

Runs the canonical benchmark suite (dispatch micro-op, scalability,
golden-workload messages, churn) in-process, appends one git-sha-stamped
row to ``benchmarks/results/BENCH_trajectory.json``, prints the delta
against the previous comparable row, and exits nonzero when any bench's
throughput regressed by more than the threshold (default 25%).

Unlike the pytest benchmarks (one-shot artifacts), this file is a
*trajectory*: the JSON accumulates one row per run, so plotting it over
commits shows the performance history of the repo.  CI runs it in
``--quick`` mode as the ``perf-smoke`` job and archives the JSON.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py [--quick] [--threshold 0.25]

Throughput metrics (higher is better; the regression gate only looks at
these — exact message counts are printed for context but gated by the
deterministic golden tests, not here):

* ``dispatch``     — warm-probe deliveries/sec through ``LeaseNode.on_message``
* ``scalability``  — sequential-engine requests/sec on a balanced binary tree
* ``flat``         — flat-backend requests/sec on the n=1023 path workload
                     (cross-checked against the reference backend's counts)
* ``messages``     — requests/sec across the four golden workloads
* ``churn``        — dynamic-engine churn ops/sec (oracle-checked)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))            # sibling bench modules
sys.path.insert(0, str(HERE.parent / "src"))  # repro, when PYTHONPATH unset

RESULTS_DIR = HERE / "results"
TRAJECTORY_PATH = RESULTS_DIR / "BENCH_trajectory.json"


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=HERE, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


# ----------------------------------------------------------------- benches
def bench_dispatch(quick: bool) -> Dict[str, Any]:
    """Warm-probe deliveries/sec at a star center (the hottest receive
    path), mirroring ``bench_mechanism_ops.test_dispatch_table_vs_...``."""
    from time import perf_counter

    from repro import AggregationSystem, star_tree
    from repro.core.mechanism import LeaseNode
    from repro.core.messages import Probe
    from repro.workloads import combine

    leaves = 15
    iters = 1000 if quick else 3000
    rounds = 3 if quick else 5
    probe = Probe()

    def one_round() -> float:
        system = AggregationSystem(star_tree(leaves + 1))
        system.execute(combine(0))
        node = system.nodes[0]
        srcs = [1 + (i % leaves) for i in range(iters)]
        t0 = perf_counter()
        for src in srcs:
            LeaseNode.on_message(node, src, probe)
        return perf_counter() - t0

    best = min(one_round() for _ in range(rounds))
    ns_per_op = best / iters * 1e9
    return {"throughput": iters / best, "unit": "deliveries/sec",
            "ns_per_op": round(ns_per_op, 1)}


def bench_scalability(quick: bool) -> Dict[str, Any]:
    """Sequential-engine requests/sec on a balanced binary tree, mirroring
    ``bench_scalability.run_scaling`` at one representative size."""
    from bench_scalability import topo

    from repro import AggregationSystem
    from repro.workloads import uniform_workload
    from repro.workloads.requests import copy_sequence

    n = 63 if quick else 255
    length = 150 if quick else 300
    tree = topo("binary", n)
    wl = uniform_workload(tree.n, length, read_ratio=0.5, seed=41)
    best_dt, messages = float("inf"), 0
    for _ in range(2):
        system = AggregationSystem(tree)
        t0 = time.perf_counter()
        result = system.run(copy_sequence(wl))
        dt = time.perf_counter() - t0
        best_dt, messages = min(best_dt, dt), result.total_messages
    return {"throughput": length / best_dt, "unit": "requests/sec",
            "n": n, "length": length, "messages": messages}


def bench_flat(quick: bool) -> Dict[str, Any]:
    """Flat-backend requests/sec on the n=1023 path workload (the
    execution-backend seam's headline configuration; ``--quick`` drops to
    n=255).  Also records the speedup over the reference backend — gated
    loosely here (the hard >=10x floor lives in
    ``bench_scalability.test_flat_speedup_at_path_1023``)."""
    from repro import AggregationSystem, path_tree
    from repro.workloads import uniform_workload
    from repro.workloads.requests import copy_sequence

    n = 255 if quick else 1023
    length = 150 if quick else 300
    tree = path_tree(n)
    wl = uniform_workload(tree.n, length, read_ratio=0.5, seed=41)

    def run(backend: str) -> tuple:
        best_dt, messages = float("inf"), 0
        for _ in range(2):
            system = AggregationSystem(tree, backend=backend)
            t0 = time.perf_counter()
            result = system.run(copy_sequence(wl))
            best_dt = min(best_dt, time.perf_counter() - t0)
            messages = result.total_messages
        return best_dt, messages

    flat_dt, flat_msgs = run("flat")
    ref_dt, ref_msgs = run("reference")
    if flat_msgs != ref_msgs:
        raise SystemExit(
            f"flat bench: backends disagree on messages ({flat_msgs} vs {ref_msgs})"
        )
    return {"throughput": length / flat_dt, "unit": "requests/sec",
            "n": n, "length": length, "messages": flat_msgs,
            "speedup_vs_reference": round(ref_dt / flat_dt, 2)}


def bench_messages(quick: bool) -> Dict[str, Any]:
    """Requests/sec (and exact message totals) across the four golden
    workloads of ``tests/test_golden.py``, run under RWW.  Best-of-3
    passes: like the other benches, a single pass is too exposed to
    scheduler contention bursts for a 25% regression gate."""
    from bench_mechanism_ops import _golden_scenarios

    from repro import AggregationSystem
    from repro.workloads.requests import copy_sequence

    scenarios = _golden_scenarios()
    totals: Dict[str, int] = {}
    best_dt, requests = float("inf"), 0
    for _ in range(3):
        requests = 0
        t0 = time.perf_counter()
        for name, (tree, wl) in scenarios.items():
            system = AggregationSystem(tree)
            result = system.run(copy_sequence(wl))
            totals[name] = result.total_messages
            requests += len(result.requests)
        best_dt = min(best_dt, time.perf_counter() - t0)
    return {"throughput": requests / best_dt, "unit": "requests/sec",
            "messages": totals}


def bench_churn(quick: bool) -> Dict[str, Any]:
    """Dynamic-engine churn ops/sec, mirroring ``bench_churn.run_full_churn``
    (every combine checked against the sequential-strictness oracle)."""
    from bench_churn import run_full_churn

    ops = 600 if quick else 2400
    t0 = time.perf_counter()
    system, counts, mismatches = run_full_churn(ops=ops, seed=8)
    dt = time.perf_counter() - t0
    if mismatches:
        raise SystemExit(f"churn bench: {mismatches} oracle mismatches")
    return {"throughput": ops / dt, "unit": "ops/sec",
            "ops": ops, "messages": system.stats.total,
            "fault_events": sum(counts.get(k, 0)
                                for k in ("join", "crash", "recover", "leave"))}


def bench_serve(quick: bool) -> Dict[str, Any]:
    """Live-deployment requests/sec over a real 7-process TCP tree,
    mirroring ``bench_serve.test_serve_throughput`` (merged traces
    re-verified; ``--quick`` drops the request count)."""
    import asyncio
    import tempfile

    from bench_serve import NODES, drive_cluster, percentile

    from repro.net import merge_run_dir, verify_merged

    requests = 30 if quick else 60
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as run_dir:
        latencies, wall, failed = asyncio.run(drive_cluster(run_dir, requests))
        if failed:
            raise SystemExit(f"serve bench: {failed} requests failed")
        events, _, synthesized = merge_run_dir(run_dir)
        verdict = verify_merged(events, n_nodes=NODES)
        if synthesized or not verdict["ok"]:
            raise SystemExit(f"serve bench: merged-trace verification failed: {verdict}")
    samples = [s for v in latencies.values() for s in v]
    return {"throughput": len(samples) / wall, "unit": "requests/sec",
            "nodes": NODES, "requests": len(samples),
            "p50_ms": round(percentile(samples, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(samples, 0.99) * 1e3, 3)}


def bench_explore(quick: bool) -> Dict[str, Any]:
    """Model-checker states visited per second on the pinned 3-node/4-op
    scope (derived POR independence, the `verify explore` default).  The
    state/transition counts ride along as exactness pins: a POR change
    that silently shrinks or inflates the explored space shows up here
    even when the throughput stays flat."""
    from repro.tree.generators import path_tree
    from repro.verify.explore import Explorer, default_script

    passes = 1 if quick else 3
    best_dt, result = float("inf"), None
    for _ in range(passes):
        t0 = time.perf_counter()
        result = Explorer(path_tree(3), default_script(3, 4)).run()
        best_dt = min(best_dt, time.perf_counter() - t0)
    assert result is not None
    if not result.ok:
        raise SystemExit("explore bench: pinned scope found violations")
    return {"throughput": result.states / best_dt, "unit": "states/sec",
            "states": result.states, "transitions": result.transitions,
            "reduction_ratio": round(result.reduction_ratio, 4),
            "independence": "derived"}


BENCHES = {
    "dispatch": bench_dispatch,
    "scalability": bench_scalability,
    "flat": bench_flat,
    "messages": bench_messages,
    "churn": bench_churn,
    "serve": bench_serve,
    "explore": bench_explore,
}


# --------------------------------------------------------------- trajectory
def load_trajectory(path: pathlib.Path) -> List[Dict[str, Any]]:
    if not path.exists():
        return []
    try:
        rows = json.loads(path.read_text())
    except ValueError:
        raise SystemExit(f"trajectory: {path} is corrupt; move it aside")
    if not isinstance(rows, list):
        raise SystemExit(f"trajectory: {path} is not a JSON list")
    return rows


def previous_comparable(rows: List[Dict[str, Any]], quick: bool) -> Optional[Dict[str, Any]]:
    """The latest earlier row recorded in the same mode (quick rows are not
    comparable to full rows — different workload sizes)."""
    for row in reversed(rows):
        if row.get("quick") == quick:
            return row
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes (the CI perf-smoke mode)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when a bench's throughput drops by more "
                             "than this fraction vs the previous row")
    parser.add_argument("--only", action="append", choices=sorted(BENCHES),
                        help="run a subset of benches (repeatable)")
    parser.add_argument("--out", type=pathlib.Path, default=TRAJECTORY_PATH,
                        help="trajectory JSON path")
    parser.add_argument("--no-append", action="store_true",
                        help="measure and compare but do not record the row")
    args = parser.parse_args(argv)

    names = args.only or sorted(BENCHES)
    benches: Dict[str, Any] = {}
    for name in names:
        t0 = time.perf_counter()
        benches[name] = BENCHES[name](args.quick)
        dt = time.perf_counter() - t0
        print(f"{name:<12} {benches[name]['throughput']:>12.0f} "
              f"{benches[name]['unit']:<14} ({dt:.2f}s)")

    rows = load_trajectory(args.out)
    prev = previous_comparable(rows, args.quick)
    row = {
        "sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "benches": benches,
    }

    regressions = []
    if prev is None:
        print("\nno previous comparable row — baseline recorded, no gate")
    else:
        print(f"\ndelta vs {prev['sha']} ({prev['timestamp']}):")
        for name, data in benches.items():
            old = prev.get("benches", {}).get(name)
            if old is None or not old.get("throughput"):
                print(f"  {name:<12} (new bench — no baseline)")
                continue
            delta = data["throughput"] / old["throughput"] - 1.0
            flag = ""
            if delta < -args.threshold:
                flag = f"  REGRESSION (> {args.threshold:.0%} drop)"
                regressions.append((name, delta))
            print(f"  {name:<12} {delta:+7.1%}{flag}")

    if not args.no_append:
        RESULTS_DIR.mkdir(exist_ok=True)
        rows.append(row)
        args.out.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"\nappended row for {row['sha']} to {args.out} "
              f"({len(rows)} rows)")

    if regressions:
        for name, delta in regressions:
            print(f"FAIL: {name} throughput {delta:+.1%} "
                  f"(threshold -{args.threshold:.0%})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
