"""MOTIV — adaptive vs static strategies (the paper's Section 1 motivation).

Sweeps the read ratio from write-dominated to read-dominated and compares
RWW against the static baselines (Astrolabe push-all, MDS-2 pull-always,
SDIMS-like root hierarchy, time-based leases).  The paper's qualitative
claim to reproduce: each static strategy wins only in its favored regime,
while adaptive lease-based aggregation stays near the best everywhere — and
clearly wins when the regime shifts mid-run (phase workload).
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem, binary_tree
from repro.baselines import (
    StaticLeaseBaseline,
    TimeLeaseBaseline,
    astrolabe_config,
    mds_config,
    up_tree_config,
)
from repro.util import format_table
from repro.workloads import alternating_phases, uniform_workload
from repro.workloads.requests import copy_sequence

LENGTH = 1000
READ_RATIOS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def make_algorithms(tree):
    return {
        "RWW": lambda wl: AggregationSystem(tree).run(copy_sequence(wl)).total_messages,
        "Astrolabe": lambda wl: StaticLeaseBaseline(tree, astrolabe_config(tree)).run(
            copy_sequence(wl)
        ).total_messages,
        "MDS-2": lambda wl: StaticLeaseBaseline(tree, mds_config(tree)).run(
            copy_sequence(wl)
        ).total_messages,
        "RootHier": lambda wl: StaticLeaseBaseline(tree, up_tree_config(tree, 0)).run(
            copy_sequence(wl)
        ).total_messages,
        "TTL-8": lambda wl: TimeLeaseBaseline(tree, ttl=8).run(
            copy_sequence(wl)
        ).total_messages,
    }


def run_sweep(tree):
    algos = make_algorithms(tree)
    rows = []
    for rr in READ_RATIOS:
        wl = uniform_workload(tree.n, LENGTH, read_ratio=rr, seed=21)
        costs = {name: fn(wl) for name, fn in algos.items()}
        rows.append((rr, *[costs[k] for k in ("RWW", "Astrolabe", "MDS-2", "RootHier", "TTL-8")]))
    phase_wl = alternating_phases(tree.n, n_phases=6, phase_length=LENGTH // 6, seed=22)
    costs = {name: fn(phase_wl) for name, fn in algos.items()}
    rows.append(("phase", *[costs[k] for k in ("RWW", "Astrolabe", "MDS-2", "RootHier", "TTL-8")]))
    return rows


@pytest.mark.benchmark(group="motiv")
def test_baselines_sweep(benchmark, emit, emit_json):
    tree = binary_tree(3)
    wl = uniform_workload(tree.n, LENGTH, read_ratio=0.5, seed=21)
    benchmark(
        lambda: StaticLeaseBaseline(tree, astrolabe_config(tree)).run(
            copy_sequence(wl)
        ).total_messages
    )
    rows = run_sweep(tree)
    by_rr = {r[0]: r[1:] for r in rows}
    # Shape checks: Astrolabe wins the pure-read regime, MDS the pure-write
    # regime; RWW beats both static extremes under phase shifts.
    rww, astro, mds, _, _ = by_rr[1.0]
    assert astro <= rww
    rww, astro, mds, _, _ = by_rr[0.0]
    assert mds <= rww
    rww, astro, mds, _, _ = by_rr["phase"]
    assert rww < astro and rww < mds
    # RWW stays within a small constant factor of the per-row best, up to
    # its one-time lease warm-up of at most 2 messages per ordered edge.
    warmup = 2 * 2 * (tree.n - 1)
    for rr, row in by_rr.items():
        best = min(row)
        assert row[0] <= 3.0 * best + warmup, f"RWW far from best at read ratio {rr}"
    text = format_table(
        ["read ratio", "RWW", "Astrolabe", "MDS-2", "RootHier", "TTL-8"],
        rows,
        title=(
            f"MOTIV — messages for {LENGTH} requests on a 15-node binary tree "
            "(static strategies win only their favored regime; RWW adapts):"
        ),
    )
    emit("baselines_sweep", text)
    algos = ("RWW", "Astrolabe", "MDS-2", "RootHier", "TTL-8")
    emit_json("baselines_sweep", {
        "benchmark": "baselines_sweep",
        "length": LENGTH,
        "tree": {"topology": "binary", "nodes": tree.n},
        "rows": [
            {"read_ratio": r[0], "messages": dict(zip(algos, r[1:]))}
            for r in rows
        ],
    })
