"""EXT-DYN — reconfiguration cost in dynamic trees (extension).

Measures what topology churn costs under the revocation protocol: the
per-join revocation bill as a function of how much lease state exists
(cold tree vs fully-leased tree), and steady-state throughput under mixed
request/churn workloads, with strict consistency checked throughout.
"""

from __future__ import annotations

import random

import pytest

from repro import path_tree, star_tree
from repro.core.dynamic import DynamicAggregationSystem
from repro.util import format_table
from repro.workloads import combine, write


def join_cost(depth_tree, warm: bool):
    """Revocation messages caused by one join at the end of a path."""
    system = DynamicAggregationSystem(depth_tree)
    if warm:
        system.execute(combine(0))  # lease the whole path toward node 0
    tail = depth_tree.n - 1
    before = system.stats.by_kind().get("revoke", 0)
    system.add_leaf(parent=tail)
    return system.stats.by_kind().get("revoke", 0) - before


def churn_run(seed: int, steps: int = 200):
    rng = random.Random(seed)
    system = DynamicAggregationSystem(path_tree(4))
    reference = {}
    joins = leaves = 0
    for _ in range(steps):
        x = rng.random()
        if x < 0.1 and system.tree.n < 12:
            system.add_leaf(rng.randrange(system.tree.n))
            joins += 1
        elif x < 0.2 and system.tree.n > 2:
            leaf_nodes = [u for u in system.tree.nodes() if system.tree.is_leaf(u)]
            victim = rng.choice(leaf_nodes)
            remap = system.remove_leaf(victim)
            reference.pop(victim, None)
            for old, new in remap.items():
                if old in reference:
                    reference[new] = reference.pop(old)
            leaves += 1
        elif x < 0.6:
            node = rng.randrange(system.tree.n)
            val = float(rng.randrange(100))
            system.execute(write(node, val))
            reference[node] = val
        else:
            node = rng.randrange(system.tree.n)
            got = system.execute(combine(node)).retval
            assert abs(got - sum(reference.values())) < 1e-6
    system.check_quiescent_invariants()
    return joins, leaves, system.stats.total, system.stats.by_kind().get("revoke", 0)


def run_tables():
    depth_rows = []
    for depth in (2, 4, 8, 16):
        tree = path_tree(depth + 1)
        depth_rows.append(
            (depth, join_cost(tree, warm=False), join_cost(tree, warm=True))
        )
    churn_rows = []
    for seed in (0, 1, 2):
        joins, removals, msgs, revokes = churn_run(seed)
        churn_rows.append((seed, joins, removals, msgs, revokes))
    return depth_rows, churn_rows


@pytest.mark.benchmark(group="ext-dyn")
def test_dynamic_reconfiguration(benchmark, emit, emit_json):
    benchmark.pedantic(lambda: churn_run(0, steps=60), rounds=3, iterations=1)
    depth_rows, churn_rows = run_tables()
    # Cold joins cost nothing; warm joins revoke exactly the lease chain
    # from the join point down to the reader (= path depth here).
    for depth, cold, warm in depth_rows:
        assert cold == 0
        assert warm == depth
    assert all(r[-1] > 0 for r in churn_rows)  # churn does exercise revocation
    text = "\n\n".join(
        [
            format_table(
                ["path depth", "revokes (cold join)", "revokes (leased join)"],
                depth_rows,
                title=(
                    "EXT-DYN — join cost vs existing lease state (joining at "
                    "the far end of a fully-leased path revokes the chain):"
                ),
            ),
            format_table(
                ["seed", "joins", "removals", "total messages", "revokes"],
                churn_rows,
                title="EXT-DYN — mixed churn runs (strict consistency asserted per combine):",
            ),
        ]
    )
    emit("ext_dynamic", text)
    emit_json("ext_dynamic", {
        "benchmark": "ext_dynamic",
        "join_cost": [
            {"path_depth": depth, "revokes_cold": cold, "revokes_leased": warm}
            for depth, cold, warm in depth_rows
        ],
        "churn_runs": [
            {"seed": seed, "joins": joins, "removals": removals,
             "messages": msgs, "revokes": revokes}
            for seed, joins, removals, msgs, revokes in churn_rows
        ],
    })
