"""EXT-RAND — randomized break policies vs RWW (extension).

The classic online-algorithms question the paper leaves open: does
randomization help?  :class:`~repro.core.randomized.RandomBreakPolicy`
breaks after each write with probability p (p = 1/2 tolerates 2 writes in
expectation, like RWW).  Measured against the *oblivious* adversary
ADV+N(1, 2) — the sequence that forces RWW to exactly 5/2 — the coin
flipper desynchronizes and achieves a strictly better expected ratio,
while on ordinary mixed workloads it tracks RWW closely.
"""

from __future__ import annotations

import pytest

from repro import AggregationSystem, binary_tree, two_node_tree
from repro.core.randomized import random_break_factory
from repro.offline import offline_lease_lower_bound
from repro.util import format_table
from repro.workloads import adv_sequence_strong, uniform_workload
from repro.workloads.requests import copy_sequence

PS = (0.25, 0.5, 0.75, 1.0)
SEEDS = range(8)


def adversarial_ratio(policy_factory):
    tree = two_node_tree()
    total = opt_total = 0
    wl = adv_sequence_strong(1, 2, rounds=150)
    for seed in SEEDS:
        system = AggregationSystem(tree, policy_factory=policy_factory(seed))
        total += system.run(copy_sequence(wl)).total_messages
        opt_total += offline_lease_lower_bound(tree, wl)
    return total / opt_total


def mixed_cost(policy_factory):
    tree = binary_tree(3)
    total = 0
    for seed in SEEDS:
        wl = uniform_workload(tree.n, 300, read_ratio=0.5, seed=seed)
        system = AggregationSystem(tree, policy_factory=policy_factory(seed))
        total += system.run(copy_sequence(wl)).total_messages
    return total / len(list(SEEDS))


def run_comparison():
    from repro.core.policies import RWWPolicy

    rows = []
    rww_factory = lambda seed: RWWPolicy
    rows.append(("RWW (deterministic)",
                 adversarial_ratio(rww_factory), mixed_cost(rww_factory)))
    for p in PS:
        factory = lambda seed, p=p: random_break_factory(p, base_seed=seed)
        rows.append((f"random-break p={p}",
                     adversarial_ratio(factory), mixed_cost(factory)))
    return rows


@pytest.mark.benchmark(group="ext-random")
def test_randomized_policies(benchmark, emit, emit_json):
    from repro.core.policies import RWWPolicy

    tree = binary_tree(3)
    wl = uniform_workload(tree.n, 300, read_ratio=0.5, seed=0)
    benchmark(
        lambda: AggregationSystem(
            tree, policy_factory=random_break_factory(0.5, base_seed=0)
        ).run(copy_sequence(wl)).total_messages
    )
    rows = run_comparison()
    by_name = {name: (adv, mixed) for name, adv, mixed in rows}
    rww_adv, rww_mixed = by_name["RWW (deterministic)"]
    assert rww_adv == pytest.approx(2.5, rel=0.02)
    half_adv, half_mixed = by_name["random-break p=0.5"]
    # The coin flipper beats RWW's forced ratio on the oblivious adversary...
    assert half_adv < rww_adv - 0.2
    # ...while staying within ~25% of RWW's cost on mixed workloads.
    assert half_mixed <= 1.25 * rww_mixed
    text = format_table(
        ["policy", "expected ratio on ADV+N(1,2)", "mean cost, mixed workload"],
        rows,
        title=(
            "EXT-RAND — randomized break policies (oblivious-adversary ratio "
            "and mixed-workload cost; 8 seeds each):"
        ),
    )
    emit("ext_random", text)
    emit_json("ext_random", {
        "benchmark": "ext_random",
        "seeds": len(list(SEEDS)),
        "rows": [
            {"policy": name, "adv_ratio": round(adv, 6),
             "mixed_cost": round(mixed, 2)}
            for name, adv, mixed in rows
        ],
    })
