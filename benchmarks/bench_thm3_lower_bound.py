"""THM3 — every (a, b)-algorithm is at least 5/2-competitive.

Runs two adversaries on the two-node tree against each (a, b)-algorithm:

* **ADV(a, b)** — the paper's proof-sketch pattern: ``a`` combines at one
  node then ``b`` writes at the other, repeated.  Forced ratio
  ``(2a + b + 1) / min(2a, b)``.
* **ADV+N(a, b)** — strengthened with one reader-side write per round (a
  Figure-2 noop for the attacked edge direction), handing the offline
  algorithm a cost-1 break.  Forced ratio ``(2a + b + 1) / min(2a, b, 3)``.

The plain pattern alone does **not** prove the theorem — at (a, b) = (2, 4)
it forces only 9/4 < 5/2 — but the strengthened adversary forces >= 5/2 for
every (a, b), with equality exactly at RWW = (1, 2).  (Reproduction note
recorded in EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest

from repro import ABPolicy, AggregationSystem, two_node_tree
from repro.offline import offline_lease_lower_bound
from repro.util import format_table
from repro.workloads import adv_sequence, adv_sequence_strong
from repro.workloads.requests import copy_sequence

ROUNDS = 300
GRID = [(a, b) for a in (1, 2, 3, 4) for b in (1, 2, 3, 4)]


def measure(a, b, workload):
    tree = two_node_tree()
    system = AggregationSystem(tree, policy_factory=lambda: ABPolicy(a, b))
    cost = system.run(copy_sequence(workload)).total_messages
    opt = offline_lease_lower_bound(tree, workload)
    return cost, opt, cost / opt


def run_grid():
    rows = []
    for a, b in GRID:
        _, _, plain = measure(a, b, adv_sequence(a, b, rounds=ROUNDS))
        cost, opt, strong = measure(a, b, adv_sequence_strong(a, b, rounds=ROUNDS))
        predicted = (2 * a + b + 1) / min(2 * a, b, 3)
        rows.append((a, b, plain, strong, predicted))
    return rows


@pytest.mark.benchmark(group="thm3")
def test_thm3_lower_bound_grid(benchmark, emit):
    wl = adv_sequence_strong(1, 2, rounds=ROUNDS)
    benchmark(lambda: measure(1, 2, wl))
    rows = run_grid()
    strong_ratios = {(a, b): s for a, b, _, s, _ in rows}
    # The strengthened adversary forces >= 5/2 everywhere...
    assert all(r >= 2.5 - 0.05 for r in strong_ratios.values())
    # ... with the minimum (equality) exactly at RWW = (1, 2).
    assert min(strong_ratios, key=strong_ratios.get) == (1, 2)
    assert strong_ratios[(1, 2)] == pytest.approx(2.5, rel=0.01)
    # Measured ratios track the closed form.
    for a, b, _, strong, predicted in rows:
        assert strong == pytest.approx(predicted, rel=0.02), (a, b)
    # Reproduction note: the plain proof-sketch adversary dips below 5/2
    # at (2, 4) — the noop strengthening is necessary.
    plain_24 = next(p for a, b, p, _, _ in rows if (a, b) == (2, 4))
    assert plain_24 == pytest.approx(2.25, rel=0.02)
    text = format_table(
        ["a", "b", "ratio ADV(a,b)", "ratio ADV+N(a,b)", "(2a+b+1)/min(2a,b,3)"],
        rows,
        title=(
            "Theorem 3 — adversarial lower bound for (a, b)-algorithms over "
            f"{ROUNDS} rounds (ADV+N forces >= 5/2 everywhere; min at RWW = (1, 2)):"
        ),
    )
    emit("thm3_lower_bound", text)
