"""RELIABILITY — recovery overhead vs fault rate under the reliable layer.

Sweeps drop/duplicate/reorder rates over a lossy wire healed by
:class:`~repro.sim.reliability.ReliableNetwork` and reports, per rate: the
paper's cost metric (goodput — identical to the fault-free run by
construction), the recovery overhead (retransmits, ACKs, suppressed
duplicates), hung/failed combines (zero expected), and consistency-checker
verdicts.  This is the empirical form of the robustness claim: the lease
mechanism's guarantees survive lossy channels once delivery is earned by a
recovery layer, at a cost that scales with the fault rate while the
competitive-ratio numbers stay comparable.
"""

from __future__ import annotations

import pytest

from repro import (
    ConcurrentAggregationSystem,
    ReliabilityConfig,
    ScheduledRequest,
    random_tree,
    reliable_concurrent_system,
)
from repro.consistency import check_causal_consistency, check_strict_consistency
from repro.sim.channel import constant_latency
from repro.sim.faults import FaultPlan
from repro.util import format_table
from repro.workloads import uniform_workload
from repro.workloads.requests import copy_sequence

CONFIG = ReliabilityConfig(
    base_timeout=6.0, backoff=1.5, max_timeout=20.0, max_retries=25,
    combine_deadline=500.0,
)

RATES = (0.0, 0.05, 0.1, 0.2)


def serial_schedule(workload, gap=600.0):
    return [
        ScheduledRequest(time=gap * i, request=q)
        for i, q in enumerate(copy_sequence(workload))
    ]


def run_one(rate: float, seed: int):
    tree = random_tree(8, 6)
    wl = uniform_workload(tree.n, 60, read_ratio=0.5, seed=seed)
    ref = ConcurrentAggregationSystem(
        tree, latency=constant_latency(1.0), ghost=False
    ).run(serial_schedule(wl))
    plan = FaultPlan(
        drop_prob=rate, duplicate_prob=rate / 2, reorder_prob=rate, seed=seed + 5
    )
    system = reliable_concurrent_system(
        tree, plan, config=CONFIG, latency=constant_latency(1.0),
        ghost=True, seed=seed,
    )
    result = system.run(serial_schedule(wl))
    system.check_quiescent_invariants()
    strict = check_strict_consistency(result.requests, tree.n)
    causal = check_causal_consistency(result.ghost_logs(), result.requests, tree.n)
    return ref, system, result, strict, causal


def run_sweep():
    rows = []
    for rate in RATES:
        for seed in (0, 1):
            ref, system, result, strict, causal = run_one(rate, seed)
            over = result.stats.overhead_by_kind()
            rows.append(
                (
                    rate,
                    seed,
                    system.network.faults.count(),
                    result.stats.goodput,
                    "yes" if result.stats.goodput == ref.stats.total else "NO",
                    over.get("retransmit", 0),
                    over.get("ack", 0),
                    over.get("duplicate", 0),
                    len(result.failed_requests()),
                    len(strict),
                    len(causal),
                )
            )
    return rows


@pytest.mark.benchmark(group="reliability")
def test_reliability_overhead_sweep(benchmark, emit, emit_json):
    benchmark(lambda: run_one(0.1, 0))
    rows = run_sweep()
    assert all(r[8] == 0 for r in rows), "combine failed/hung under reliability"
    assert all(r[9] == 0 for r in rows), "strict-consistency violation"
    assert all(r[10] == 0 for r in rows), "causal-consistency violation"
    assert all(r[4] == "yes" for r in rows), "goodput drifted from fault-free run"
    text = format_table(
        [
            "fault rate", "seed", "faults", "goodput", "goodput==ref",
            "retransmits", "acks", "dups", "failed", "strict viol", "causal viol",
        ],
        rows,
        title=(
            "Reliable delivery under chaos — goodput (paper's cost metric) stays "
            "fault-free-identical; recovery overhead scales with the fault rate:"
        ),
    )
    emit("reliability_sweep", text)
    emit_json("reliability_sweep", {
        "benchmark": "reliability_sweep",
        "rows": [
            {"fault_rate": r[0], "seed": r[1], "faults": r[2], "goodput": r[3],
             "goodput_matches_ref": r[4] == "yes", "retransmits": r[5],
             "acks": r[6], "dups": r[7], "failed": r[8],
             "strict_violations": r[9], "causal_violations": r[10]}
            for r in rows
        ],
    })
