"""EXT-GAME — exact competitive ratios by game solving (extension).

Beyond the paper: compute each per-edge policy's **exact** competitive
ratio against offline OPT over *all* adversarial request sequences, as a
maximum ratio cycle of the policy × OPT product graph with certified
rational output (see :mod:`repro.analysis.games`).

This closes Theorem 3 computationally: the paper's proof-sketch adversary
under-forces some (a, b) (e.g. only 9/4 against (2, 4)), but the game value
shows the true ratio of every (a, b)-automaton is ≥ 5/2, with equality
exactly at RWW = (1, 2).  It also shows time-based (TTL) leases and the
static extremes have *unbounded* ratios — pattern-driven breaking is
essential.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.games import (
    ab_automaton,
    always_lease_automaton,
    exact_competitive_ratio,
    never_lease_automaton,
    rww_automaton,
    ttl_automaton,
)
from repro.util import format_table

GRID = [(a, b) for a in (1, 2, 3, 4) for b in (1, 2, 3, 4)]


def compute_table():
    rows = []
    for a, b in GRID:
        r = exact_competitive_ratio(ab_automaton(a, b))
        rows.append((f"({a},{b})" + (" = RWW" if (a, b) == (1, 2) else ""),
                     str(r), float(r)))
    for auto in (ttl_automaton(2), ttl_automaton(8),
                 always_lease_automaton(), never_lease_automaton()):
        r = exact_competitive_ratio(auto)
        rows.append((auto.name, "unbounded" if r is None else str(r),
                     float("inf") if r is None else float(r)))
    return rows


@pytest.mark.benchmark(group="ext-game")
def test_exact_ratio_table(benchmark, emit, emit_json):
    benchmark(lambda: exact_competitive_ratio(rww_automaton()))
    rows = compute_table()
    by_name = {name.split(" ")[0]: val for name, val, _ in rows}
    assert by_name["(1,2)"] == "5/2"
    ab_values = {
        (a, b): Fraction(val) if "/" in val or val.isdigit() else None
        for (a, b), (name, val, _) in zip(GRID, rows)
    }
    assert all(v >= Fraction(5, 2) for v in ab_values.values())
    assert [k for k, v in ab_values.items() if v == Fraction(5, 2)] == [(1, 2)]
    assert by_name["ttl[2]"] == "unbounded"
    assert by_name["always-lease"] == "unbounded"
    assert by_name["never-lease"] == "unbounded"
    text = format_table(
        ["policy automaton", "exact competitive ratio", "as float"],
        rows,
        title=(
            "EXT-GAME — exact competitive ratios over ALL adversaries "
            "(max ratio cycle of the policy x OPT product graph):"
        ),
    )
    emit("ext_game", text)
    emit_json("ext_game", {
        "benchmark": "ext_game",
        "rows": [
            {"automaton": name, "exact_ratio": val,
             "as_float": None if fval == float("inf") else round(fval, 6)}
            for name, val, fval in rows
        ],
    })
