"""Shared benchmark helpers.

Every benchmark regenerates one paper artifact (figure/table/theorem) and
emits the paper-shaped table via :func:`emit`: printed to stdout (visible
with ``pytest -s`` and in benchmark logs) and persisted under
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.  Machine-readable
companions go through :func:`emit_json` (``results/<name>.json``,
deterministic key order) so CI can archive and diff them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def emit_json():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, data: Any) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"\n[json] wrote {path}")
        return path

    return _emit
