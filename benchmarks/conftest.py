"""Shared benchmark helpers.

Every benchmark regenerates one paper artifact (figure/table/theorem) and
emits the paper-shaped table via :func:`emit`: printed to stdout (visible
with ``pytest -s`` and in benchmark logs) and persisted under
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
