"""CHURN — membership churn and crash-fault hardening.

Drives thousands of join / crash / recover / leave events through the
dynamic engine (:class:`~repro.core.dynamic.DynamicAggregationSystem`),
interleaved with writes and combines, and checks consistency two ways:

* **causal, from traces** — the fixed-membership phase (joins, crashes,
  recoveries; no removals) records a full telemetry trace, and the offline
  happens-before checker (:func:`repro.verify.causal.check_trace`) must
  find zero violations.  Crash casualties are *declared losses* the
  checker discounts, so any remaining violation is a real protocol bug.
* **strict, against the oracle** — the full-churn phase additionally
  removes leaves (with id compaction/renames, which the trace checker's
  static write registry cannot attribute), so every combine is instead
  checked exactly against the sequential-strictness oracle: the sum of
  the live members' last written values.

Emits ``results/BENCH_churn.json`` (archived by the CI churn smoke job)
with event counts, message totals and both verdicts.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.core.dynamic import DynamicAggregationSystem
from repro.tree.generators import balanced_kary_tree
from repro.util import format_table
from repro.verify.causal import check_trace
from repro.workloads.requests import combine, write

SEED = 7
MAX_NODES = 24
TRACED_OPS = 1200   # fixed-membership phase (join/crash/recover)
FULL_OPS = 2400     # full-churn phase (adds leaves/renames)


def _pick(rng: random.Random, seq):
    return seq[rng.randrange(len(seq))]


def run_traced_churn(ops: int = TRACED_OPS, seed: int = SEED):
    """Join/crash/recover churn under tracing; returns (system, counts)."""
    system = DynamicAggregationSystem(balanced_kary_tree(2, 2), trace_enabled=True)
    rng = random.Random(seed)
    counts = {"join": 0, "crash": 0, "recover": 0, "write": 0, "combine": 0}
    for i in range(ops):
        live = sorted(system.live_nodes)
        up = [n for n in live if n not in system.crashed_nodes]
        roll = rng.random()
        if roll < 0.08 and len(live) < MAX_NODES:
            system.add_leaf(_pick(rng, up))
            counts["join"] += 1
        elif roll < 0.18 and len(up) > 2:
            system.crash_node(_pick(rng, up))
            counts["crash"] += 1
        elif roll < 0.45 and system.crashed_nodes:
            system.recover_node(_pick(rng, sorted(system.crashed_nodes)))
            counts["recover"] += 1
        elif roll < 0.78:
            system.execute(write(_pick(rng, up), float(i)))
            counts["write"] += 1
        elif not system.crashed_nodes:
            # Sequential combines need every member reachable; the
            # concurrent engine + lease TTLs cover the crashed case
            # (``repro chaos --churn``).
            system.execute(combine(_pick(rng, up)))
            counts["combine"] += 1
    # End with everyone up so the final quiescent state is checkable.
    for n in sorted(system.crashed_nodes):
        system.recover_node(n)
        counts["recover"] += 1
    system.runtime.check_quiescent_invariants()
    return system, counts


def run_full_churn(ops: int = FULL_OPS, seed: int = SEED + 1):
    """Full churn incl. leaf removals, every combine oracle-checked."""
    system = DynamicAggregationSystem(balanced_kary_tree(2, 2))
    rng = random.Random(seed)
    values: Dict[int, float] = {n: 0.0 for n in system.live_nodes}
    counts = {
        "join": 0, "crash": 0, "recover": 0, "leave": 0,
        "write": 0, "combine": 0, "renames": 0,
    }
    mismatches = 0
    for i in range(ops):
        live = sorted(system.live_nodes)
        up = [n for n in live if n not in system.crashed_nodes]
        roll = rng.random()
        if roll < 0.12 and len(live) < MAX_NODES:
            new = system.add_leaf(_pick(rng, up))
            values[new] = 0.0
            counts["join"] += 1
        elif roll < 0.22 and len(up) > 2:
            system.crash_node(_pick(rng, up))
            counts["crash"] += 1
        elif roll < 0.34 and system.crashed_nodes:
            system.recover_node(_pick(rng, sorted(system.crashed_nodes)))
            counts["recover"] += 1
        elif roll < 0.46 and len(live) > 3:
            # Dead or alive, a leaf may leave (a crashed leaf models a
            # machine that never came back).
            leaves = [n for n in live if len(system.tree.neighbors(n)) == 1]
            if not leaves:
                continue
            victim = _pick(rng, leaves)
            remap = system.remove_leaf(victim)
            del values[victim]
            for old, new in remap.items():
                values[new] = values.pop(old)
                counts["renames"] += 1
            counts["leave"] += 1
        elif roll < 0.80:
            target = _pick(rng, up)
            system.execute(write(target, float(i)))
            values[target] = float(i)
            counts["write"] += 1
        elif not system.crashed_nodes:
            result = system.execute(combine(_pick(rng, up)))
            counts["combine"] += 1
            if result.retval != sum(values.values()):
                mismatches += 1
    for n in sorted(system.crashed_nodes):
        system.recover_node(n)
        counts["recover"] += 1
    system.runtime.check_quiescent_invariants()
    return system, counts, mismatches


@pytest.mark.benchmark(group="churn")
def test_churn_hardening(benchmark, emit, emit_json):
    system, traced_counts = run_traced_churn()
    report = check_trace(system.trace.events(), n_nodes=len(system.live_nodes))
    assert report.ok, [str(v) for v in report.violations]

    full, full_counts, mismatches = benchmark.pedantic(
        run_full_churn, rounds=1, iterations=1
    )
    assert mismatches == 0, f"{mismatches} combines diverged from the oracle"
    fault_events = sum(
        traced_counts.get(k, 0) + full_counts.get(k, 0)
        for k in ("join", "crash", "recover", "leave")
    )
    assert fault_events > 1000, "churn volume regressed below spec"

    rows = [
        ("traced (causal-checked)",
         traced_counts["join"], traced_counts["crash"],
         traced_counts["recover"], 0,
         traced_counts["write"], traced_counts["combine"],
         f"causal ok ({report.declared_losses} declared losses)"),
        ("full (oracle-checked)",
         full_counts["join"], full_counts["crash"],
         full_counts["recover"], full_counts["leave"],
         full_counts["write"], full_counts["combine"],
         f"strict ok ({full_counts['renames']} renames)"),
    ]
    text = format_table(
        ["phase", "joins", "crashes", "recovers", "leaves", "writes",
         "combines", "verdict"],
        rows,
        title=(f"CHURN — {fault_events} membership/fault events, "
               "zero consistency violations:"),
    )
    emit("BENCH_churn", text)
    emit_json("BENCH_churn", {
        "seed": SEED,
        "fault_events": fault_events,
        "traced_phase": {
            "counts": traced_counts,
            "trace_events": report.events,
            "declared_losses": report.declared_losses,
            "causal_violations": len(report.violations),
            "messages": system.stats.total,
        },
        "full_phase": {
            "counts": full_counts,
            "oracle_mismatches": mismatches,
            "messages": full.stats.total,
        },
    })
